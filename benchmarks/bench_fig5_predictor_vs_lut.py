"""Figure 5 — MLP latency predictor vs the latency lookup table.

Left: the campaign-trained MLP predictor's validation RMSE approaches the
measurement-noise floor.  Right: the additive LUT over-predicts by a
consistent gap (paper: ≈11.48 ms) and keeps a residual RMSE (paper: 0.41 ms)
even after de-biasing.

The timed kernel is a single predictor inference ("takes less than one
millisecond … trivial computation overheads", §3.2).
"""

import numpy as np

from conftest import emit
from repro.experiments.reporting import render_table, save_json
from repro.hardware.lut import LatencyLUT
from repro.predictor.metrics import kendall_tau, rmse

NUM_EVAL = 600


def test_fig5_predictor_vs_lut(ctx, benchmark):
    rng = np.random.default_rng(50)
    archs = ctx.space.sample_many(NUM_EVAL, rng)
    measured = np.array([ctx.latency_model.measure(a, rng) for a in archs])

    mlp = np.array([ctx.latency_predictor.predict_arch(a) for a in archs])
    lut = LatencyLUT(ctx.latency_model, rng, trials=5)
    lut_raw = lut.predict_many(archs)
    gap = lut.debias(archs, measured)
    lut_debiased = lut.predict_many(archs)

    mlp_rmse = rmse(mlp, measured)
    raw_rmse = rmse(lut_raw, measured)
    debiased_rmse = rmse(lut_debiased, measured)

    rows = [
        ["MLP predictor (§3.2)", mlp_rmse, kendall_tau(mlp, measured), "0.04"],
        ["LUT raw", raw_rmse, kendall_tau(lut_raw, measured), "≈11.48 gap"],
        ["LUT de-biased", debiased_rmse, kendall_tau(lut_debiased, measured),
         "0.41"],
    ]
    emit("fig5_predictor_vs_lut", render_table(
        ["method", "RMSE ms", "Kendall τ", "paper value"],
        rows,
        title=f"Figure 5 — prediction quality on {NUM_EVAL} held-out archs "
              f"(LUT constant gap: {gap:.2f} ms, paper ≈11.48)"))
    save_json("fig5_predictor_vs_lut", {
        "mlp_rmse": mlp_rmse, "lut_raw_rmse": raw_rmse,
        "lut_debiased_rmse": debiased_rmse, "lut_gap_ms": gap,
        "campaign_valid_rmse": ctx.latency_predictor_rmse,
    })

    # Shape requirements: MLP ≪ raw LUT, MLP < de-biased LUT, gap ≈ paper's.
    assert mlp_rmse < raw_rmse / 20
    assert mlp_rmse < debiased_rmse
    assert 10.0 < gap < 13.0
    assert 0.2 < debiased_rmse < 0.8

    feature = archs[0].one_hot(ctx.space.num_operators).reshape(1, -1)
    benchmark(ctx.latency_predictor.predict, feature)
