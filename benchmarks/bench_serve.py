"""Serving-stack benchmark: boot modes and live load (BENCH_serve.json).

Builds a large archive (50k records by default), compacts it into
memory-mapped segments, and measures the two halves of the serving story:

* **cold boot** — opening the archive via full JSON-lines replay
  (``use_segments=False``, the pre-segment behaviour) versus the
  segment-backed mmap + tail-replay boot, asserting the two paths produce
  bit-identical query results (top-k, Pareto, nearest) before timing them;
* **live load** — a threaded load generator fires mixed concurrent
  ``/predict`` + ``/query`` traffic at a real HTTP server over the
  segment-backed archive, recording per-request latency (p50/p99 per
  endpoint) and aggregate QPS.

``--check`` asserts the acceptance thresholds: query parity always, no
failed requests, a modest QPS floor / p99 ceiling, and — at full size
only — a >= 5x segment-boot speedup over log replay.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --records 4000 \
        --requests 120 --check          # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
import urllib.request

import numpy as np

from repro.archive import query as queries
from repro.archive.service import ArchiveService, make_server
from repro.archive.store import ArchitectureArchive
from repro.predictor.analytic import AnalyticCostPredictor
from repro.search_space.space import SearchSpace

FULL_SIZE = 50_000          # boot-speedup threshold only applies here


def build_archive(path: str, space: SearchSpace, records: int) -> None:
    rng = np.random.default_rng(3)
    archive = ArchitectureArchive(path, space=space)
    chunk = 5_000
    written = 0
    while written < records:
        n = min(chunk, records - written)
        ops = rng.integers(0, space.num_operators, size=(n, space.num_layers))
        archive.add_population(
            ops, device="xavier",
            latency_ms=rng.uniform(5, 60, n),
            energy_mj=rng.uniform(20, 900, n),
            macs_m=rng.uniform(40, 600, n),
            score=rng.uniform(40, 82, n), engine="bench-serve", seed=3)
        written += n
    archive.compact()
    archive.close()


def reference_queries(index) -> list:
    """A fixed query battery whose results must not depend on boot mode."""
    out = []
    out.append(queries.describe_rows(
        index, queries.top_k(index, 50), "xavier"))
    out.append(queries.describe_rows(
        index, queries.top_k(index, 25, objective="latency_ms",
                             device="xavier",
                             budgets={"latency_ms": 30.0}), "xavier"))
    out.append(queries.describe_rows(
        index, queries.pareto_rows(index, device="xavier"), "xavier"))
    rows, distances = queries.hamming_neighbors(index, index.ops[0], 25)
    out.append([queries.describe_rows(index, rows),
                distances.tolist()])
    return out


def bench_boot(path: str, space: SearchSpace) -> dict:
    start = time.perf_counter()
    via_log = ArchitectureArchive(path, space=space, use_segments=False,
                                  read_only=True)
    log_s = time.perf_counter() - start
    assert via_log.boot["mode"] == "log-replay"

    start = time.perf_counter()
    via_segment = ArchitectureArchive(path, space=space, read_only=True)
    segment_s = time.perf_counter() - start
    assert via_segment.boot["mode"] == "segment"

    parity = (reference_queries(via_log.index())
              == reference_queries(via_segment.index()))
    assert parity, "segment boot diverged from JSON-lines replay"
    records = len(via_segment)
    via_log.close()
    via_segment.close()
    return {
        "records": records,
        "log_replay_boot_seconds": log_s,
        "segment_boot_seconds": segment_s,
        "boot_speedup": log_s / segment_s,
        "query_parity": parity,
    }


def percentile(samples, q: float) -> float:
    return float(np.percentile(np.asarray(samples), q)) if samples else 0.0


def bench_load(path: str, space: SearchSpace, requests_per_client: int,
               clients: int) -> dict:
    archive = ArchitectureArchive(path, space=space, read_only=True)
    predictor = AnalyticCostPredictor(space, "macs_m")
    service = ArchiveService(space, predictor, metric_name="macs_m",
                             device_name="xavier", archive=archive)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"

    latencies = {"predict": [], "query": []}
    failures = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def call(endpoint: str, payload: dict) -> float:
        body = json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            base + endpoint, body, {"Content-Type": "application/json"})
        start = time.perf_counter()
        with urllib.request.urlopen(req, timeout=60) as response:
            json.loads(response.read())
        return time.perf_counter() - start

    def client(worker: int) -> None:
        rng = np.random.default_rng(100 + worker)
        barrier.wait()
        for i in range(requests_per_client):
            try:
                if (worker + i) % 2 == 0:
                    ops = rng.integers(
                        0, space.num_operators, size=(8, space.num_layers))
                    seconds = call("/predict", {"archs": ops.tolist()})
                    kind = "predict"
                else:
                    seconds = call("/query", {
                        "k": 50, "limit": 20,
                        "offset": int(rng.integers(0, 30))})
                    kind = "query"
                with lock:
                    latencies[kind].append(seconds)
            except Exception as exc:
                with lock:
                    failures.append(repr(exc))

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start

    stats = service.batcher.stats()
    httpd.shutdown()
    httpd.server_close()
    service.close()
    thread.join(timeout=5)

    total = len(latencies["predict"]) + len(latencies["query"])
    return {
        "clients": clients,
        "requests": total,
        "failed_requests": len(failures),
        "wall_seconds": wall,
        "qps": total / wall,
        "predict_p50_ms": 1e3 * percentile(latencies["predict"], 50),
        "predict_p99_ms": 1e3 * percentile(latencies["predict"], 99),
        "query_p50_ms": 1e3 * percentile(latencies["query"], 50),
        "query_p99_ms": 1e3 * percentile(latencies["query"], 99),
        "predict_requests": stats["predict_requests"],
        "predict_batches": stats["predict_batches"],
        "batching_ratio": (stats["predict_requests"]
                           / max(1, stats["predict_batches"])),
    }


def run(records: int, requests_per_client: int, clients: int,
        check: bool) -> dict:
    space = SearchSpace()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "serve_bench.jsonl")
        build_archive(path, space, records)
        boot = bench_boot(path, space)
        load = bench_load(path, space, requests_per_client, clients)

    results = {"boot": boot, "load": load}
    if check:
        assert boot["query_parity"], "boot-mode query parity broken"
        assert load["failed_requests"] == 0, \
            f"{load['failed_requests']} requests failed under load"
        assert load["qps"] >= 25.0, f"QPS {load['qps']:.1f} < 25"
        assert load["predict_p99_ms"] <= 2000.0, \
            f"predict p99 {load['predict_p99_ms']:.0f}ms > 2000ms"
        assert load["query_p99_ms"] <= 2000.0, \
            f"query p99 {load['query_p99_ms']:.0f}ms > 2000ms"
        if boot["records"] >= FULL_SIZE:
            assert boot["boot_speedup"] >= 5.0, \
                f"segment boot speedup {boot['boot_speedup']:.1f}x < 5x"
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=FULL_SIZE,
                        help="archive size for the boot benchmark")
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per client thread")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent load-generator threads")
    parser.add_argument("--check", action="store_true",
                        help="assert the serving acceptance thresholds")
    args = parser.parse_args()

    results = run(args.records, args.requests, args.clients, args.check)

    from repro.experiments.reporting import render_table, save_json

    boot, load = results["boot"], results["load"]
    rows = [
        ["log-replay boot", f"{boot['log_replay_boot_seconds']:.3f}", "—"],
        ["segment boot", f"{boot['segment_boot_seconds']:.3f}",
         f"{boot['boot_speedup']:.1f}x"],
        ["/predict", f"p50 {load['predict_p50_ms']:.1f} ms",
         f"p99 {load['predict_p99_ms']:.1f} ms"],
        ["/query", f"p50 {load['query_p50_ms']:.1f} ms",
         f"p99 {load['query_p99_ms']:.1f} ms"],
        ["mixed load", f"{load['qps']:.1f} QPS",
         f"{load['failed_requests']} failed"],
    ]
    print(render_table(
        ["phase", "result", "detail"], rows,
        title=f"Serving stack — {boot['records']} archived records, "
              f"{load['clients']} concurrent clients"))
    path = save_json("BENCH_serve", results)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
