"""Table 3 — transferability to object detection (SSDLite surrogate).

Drops backbones into the detection evaluator: the manual MobileNetV2, a
fixed-λ FBNet search, an OFA-style evolution search, and the cached
LightNets (20/24/28 ms).  Shape requirements from the paper's Table 3:
detection quality tracks backbone quality, and LightNets reach comparable
or better AP at *lower* detection latency than the baselines.

The timed kernel is one detection evaluation.
"""

from conftest import emit
from repro.baselines.evolution import EvolutionConfig, EvolutionSearch
from repro.baselines.gradient import FBNetSearch, GradientNASConfig
from repro.baselines.scaling import ScalingBaseline
from repro.eval.detection import DetectionEvaluator
from repro.experiments.reporting import render_table, save_json
from repro.search_space.space import Architecture


def test_table3_detection_transfer(ctx, lightnets, benchmark):
    evaluator = DetectionEvaluator(ctx.space, ctx.latency_model, ctx.oracle)

    mnv2 = Architecture((ScalingBaseline.UNIFORM_OP,) * ctx.space.num_layers)
    fbnet = FBNetSearch(
        GradientNASConfig(space=ctx.space, epochs=30, steps_per_epoch=20,
                          latency_lambda=0.008, seed=0),
        ctx.oracle, ctx.latency_predictor).search().architecture
    evolution = EvolutionSearch(
        EvolutionConfig(space=ctx.space, target=26.0, cycles=250, seed=0),
        ctx.latency_predictor, ctx.oracle).search().architecture

    backbones = [
        ("MobileNetV2", mnv2),
        ("FBNet-Xavier", fbnet),
        ("OFA-Evo", evolution),
        ("LightNet-20ms", lightnets[20.0]),
        ("LightNet-24ms", lightnets[24.0]),
        ("LightNet-28ms", lightnets[28.0]),
    ]
    results = {name: evaluator.evaluate(arch, name=name)
               for name, arch in backbones}

    rows = [[r.name, r.ap, r.ap50, r.ap75, r.ap_small, r.ap_medium, r.ap_large,
             r.latency_ms] for r in results.values()]
    emit("table3_detection", render_table(
        ["backbone", "AP", "AP50", "AP75", "APS", "APM", "APL", "latency ms"],
        rows, title="Table 3 — SSDLite transfer on the COCO surrogate"))
    save_json("table3_detection", {n: r.as_dict() for n, r in results.items()})

    # APs in the paper's 19–23 band
    for r in results.values():
        assert 17.0 < r.ap < 25.0
    # bigger LightNet budget ⇒ better detector
    assert (results["LightNet-20ms"].ap < results["LightNet-24ms"].ap
            < results["LightNet-28ms"].ap)
    # LightNets beat the manual baseline
    assert results["LightNet-24ms"].ap > results["MobileNetV2"].ap
    # comparable AP to the strongest baseline at lower detection latency
    strongest_baseline = max(
        (results["FBNet-Xavier"], results["OFA-Evo"]), key=lambda r: r.ap)
    best_light = results["LightNet-28ms"]
    assert best_light.ap >= strongest_baseline.ap - 0.3
    assert best_light.latency_ms < strongest_baseline.latency_ms + 10.0

    benchmark(evaluator.evaluate, lightnets[24.0], "LightNet-24ms")
