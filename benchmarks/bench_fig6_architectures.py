"""Figure 6 — searched LightNets under different latency constraints.

The paper visualises the searched networks from 20 ms to 30 ms and observes
that, given a larger latency budget, the search "goes deeper and wider".
This bench prints the structural summary of each cached LightNet (operator
sequence, depth, mean kernel size, mean expansion ratio) and — because at
20–30 ms the full depth is affordable, so depth saturates at L — adds two
*tight* targets where the search must trade depth away, exposing the
depth-vs-budget trend.

The timed kernel is architecture derivation from α (Eq. 4).
"""

import numpy as np

from conftest import emit
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.reporting import render_table, save_json
from repro.search_space.space import Architecture

TIGHT_TARGETS = (8.0, 12.0)


def summarize(space, arch):
    kernels = [space.operators[k].kernel_size for k in arch.op_indices
               if not space.operators[k].is_skip]
    expansions = [space.operators[k].expansion for k in arch.op_indices
                  if not space.operators[k].is_skip]
    return {
        "depth": arch.depth(space.skip_index),
        "mean_kernel": float(np.mean(kernels)) if kernels else 0.0,
        "mean_expansion": float(np.mean(expansions)) if expansions else 0.0,
    }


def test_fig6_lightnet_structures(ctx, lightnets, benchmark):
    rows = []
    summaries = {}
    for target in TIGHT_TARGETS:
        config = LightNASConfig.paper(target, space=ctx.space, seed=1)
        result = LightNAS(config, predictor=ctx.latency_predictor).search()
        summaries[target] = summarize(ctx.space, result.architecture)
        summaries[target]["latency"] = ctx.latency_model.latency_ms(
            result.architecture)
    for target, arch in sorted(lightnets.items()):
        s = summarize(ctx.space, arch)
        s["latency"] = ctx.latency_model.latency_ms(arch)
        summaries[target] = s

    for target in sorted(summaries):
        s = summaries[target]
        rows.append([f"{target:.0f} ms", s["latency"], s["depth"],
                     s["mean_kernel"], s["mean_expansion"]])

    emit("fig6_architectures", render_table(
        ["target", "measured ms", "depth", "mean kernel", "mean expansion"],
        rows,
        title="Figure 6 — structure of searched LightNets vs latency budget"))
    save_json("fig6_architectures", {
        str(t): {**summaries[t],
                 "ops": list(lightnets[t].op_indices) if t in lightnets else None}
        for t in summaries
    })

    targets = sorted(summaries)
    widths = [summaries[t]["mean_expansion"] * summaries[t]["mean_kernel"]
              for t in targets]
    depths = [summaries[t]["depth"] for t in targets]
    # wider with larger budgets: width score increases from tightest to loosest
    assert widths[-1] > widths[0]
    # deeper with larger budgets: tight targets force skips, loose ones do not
    assert depths[0] < depths[-1]
    assert depths[-1] == ctx.space.num_layers

    alpha = np.random.default_rng(0).normal(size=(ctx.space.num_layers,
                                                  ctx.space.num_operators))
    benchmark(Architecture.from_alpha, alpha)
