"""Ablation — learned λ (one search) vs fixed-λ grid (many searches).

The core claim of the paper, quantified: to land within a tolerance of a
*specified* latency target,

* LightNAS needs exactly **one** run (λ is learned by gradient ascent);
* the fixed-λ engine (FBNet-style, Eq. 3) needs a grid sweep — we count how
  many grid points must be evaluated before one lands inside the tolerance,
  for each of several targets.

Also checks the augmented-Lagrangian damping: with μ = 0 (pure dual ascent)
the constraint error is no better than with the default μ.

The timed kernel is one λ ascent update.
"""

import numpy as np

from conftest import emit
from repro import nn
from repro.baselines.gradient import FBNetSearch, GradientNASConfig
from repro.core.lambda_opt import LagrangeMultiplier
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.reporting import render_table, save_json

TARGETS = (20.0, 26.0)
TOLERANCE_MS = 1.0
LAMBDA_GRID = (0.001, 0.002, 0.004, 0.008, 0.015, 0.03, 0.06, 0.12)


def test_ablation_learned_vs_fixed_lambda(ctx, benchmark):
    rows = []
    fixed_runs_needed = []
    for target in TARGETS:
        # learned λ: one run
        result = LightNAS(
            LightNASConfig.paper(target, space=ctx.space, seed=0,
                                 epochs=60, steps_per_epoch=40),
            predictor=ctx.latency_predictor).search()
        ours_error = abs(ctx.latency_model.latency_ms(result.architecture)
                         - target)

        # fixed λ: sweep the grid until something lands inside the tolerance
        runs = 0
        fixed_error = float("inf")
        for lam in LAMBDA_GRID:
            runs += 1
            config = GradientNASConfig(space=ctx.space, epochs=30,
                                       steps_per_epoch=20,
                                       latency_lambda=lam, seed=0)
            res = FBNetSearch(config, ctx.oracle, ctx.latency_predictor).search()
            error = abs(ctx.latency_model.latency_ms(res.architecture) - target)
            fixed_error = min(fixed_error, error)
            if error <= TOLERANCE_MS:
                break
        fixed_runs_needed.append(runs)
        rows.append([f"{target:.0f} ms", 1, f"{ours_error:.2f}",
                     runs, f"{fixed_error:.2f}"])

    emit("ablation_lambda", render_table(
        ["target", "LightNAS runs", "LightNAS |err| ms",
         "fixed-λ runs", "fixed-λ best |err| ms"],
        rows,
        title=f"Ablation — runs needed to land within {TOLERANCE_MS} ms "
              "of a specified target"))
    save_json("ablation_lambda", {
        "targets": list(TARGETS),
        "fixed_runs_needed": fixed_runs_needed,
        "rows": [[str(c) for c in row] for row in rows],
    })

    # LightNAS hits each target in one run; fixed λ needs a multi-run sweep
    for (_, ours_runs, ours_err, fixed_runs, _), target in zip(rows, TARGETS):
        assert ours_runs == 1
        assert float(ours_err) <= TOLERANCE_MS
    assert min(fixed_runs_needed) >= 3  # the §2.2 trial-and-error

    # μ-damping sanity: default μ is at least as accurate as pure dual ascent
    res_mu = LightNAS(
        LightNASConfig.paper(24.0, space=ctx.space, seed=3, epochs=50,
                             steps_per_epoch=30),
        predictor=ctx.latency_predictor).search()
    res_pure = LightNAS(
        LightNASConfig.paper(24.0, space=ctx.space, seed=3, epochs=50,
                             steps_per_epoch=30, penalty_mu=0.0),
        predictor=ctx.latency_predictor).search()
    err_mu = abs(ctx.latency_model.latency_ms(res_mu.architecture) - 24.0)
    err_pure = abs(ctx.latency_model.latency_ms(res_pure.architecture) - 24.0)
    assert err_mu <= err_pure + 0.5

    lam = LagrangeMultiplier(lr=0.01)

    def ascend():
        loss = nn.ops.reshape(lam.as_tensor(), ()) * 0.1
        loss.backward()
        lam.ascend()

    benchmark(ascend)
