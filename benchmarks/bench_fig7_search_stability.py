"""Figure 7 — search stability under various constraints.

The paper plots the search process for several targets, each averaged over
three runs, and observes that the engine always ends up at the given
constraint, exploring architectures *around* the target latency.  This bench
runs 3 seeds × 3 targets, prints the averaged trajectory tails, and asserts
per-run convergence.

The timed kernel is one full α/λ update step of the search engine.
"""

import numpy as np

from conftest import emit
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.reporting import ascii_series, render_table, save_json
from repro.runtime.parallel import FleetTask, RunFleet

TARGETS = (20.0, 24.0, 28.0)
SEEDS = (0, 1, 2)


def _stability_task(ctx, target: float, seed: int) -> FleetTask:
    # one independent (target, seed) search per task; the shared predictor
    # is captured pre-fork, only (final, trajectory) comes back
    def fn(task_ctx):
        config = LightNASConfig.paper(target, space=ctx.space, seed=seed,
                                      epochs=60, steps_per_epoch=40)
        result = LightNAS(config, predictor=ctx.latency_predictor).search()
        return {
            "final": ctx.latency_model.latency_ms(result.architecture),
            "trajectory": list(result.trajectory.predicted_metric),
        }

    return FleetTask(name=f"target_{target:g}_seed_{seed}", fn=fn,
                     header={"target": target, "seed": seed})


def test_fig7_stability_across_seeds(ctx, jobs, benchmark):
    fleet = RunFleet(jobs=jobs, seed=0)
    grid = [(target, seed) for target in TARGETS for seed in SEEDS]
    values = fleet.run([_stability_task(ctx, target, seed)
                        for target, seed in grid]).values()
    by_target = {target: [v for (t, _), v in zip(grid, values)
                          if t == target] for target in TARGETS}

    rows = []
    series = {}
    for target in TARGETS:
        finals = [v["final"] for v in by_target[target]]
        trajectories = [v["trajectory"] for v in by_target[target]]
        mean_traj = np.mean(np.array(trajectories), axis=0)
        series[target] = mean_traj.tolist()
        rows.append([f"{target:.0f} ms",
                     f"{np.mean(finals):.2f} ± {np.std(finals):.2f}",
                     max(abs(f - target) for f in finals)])

        # every individual run must land near its target
        for final in finals:
            assert abs(final - target) < 1.8, (target, finals)

    lines = [render_table(
        ["target", "final latency (3 runs)", "worst |error| ms"], rows,
        title="Figure 7 — search stability (3 seeds per target)")]
    for target in TARGETS:
        lines.append("")
        lines.append(ascii_series(
            series[target], label=f"mean predicted latency → {target:.0f} ms"))
    emit("fig7_search_stability", "\n".join(lines))
    save_json("fig7_search_stability", {str(t): series[t] for t in TARGETS})

    # the averaged trajectory tail sits near the target for every constraint
    for target in TARGETS:
        tail = np.array(series[target][-10:])
        assert np.all(np.abs(tail - target) < 2.0)

    # timed kernel: a single constrained α/λ step
    config = LightNASConfig.paper(24.0, space=ctx.space, seed=9, epochs=2,
                                  steps_per_epoch=1)
    engine = LightNAS(config, predictor=ctx.latency_predictor)

    from repro import nn
    from repro.core.gumbel import GumbelSampler, TemperatureSchedule
    from repro.core.lambda_opt import LagrangeMultiplier

    alpha = nn.Parameter(ctx.space.uniform_alpha())
    alpha_opt = nn.Adam([alpha], lr=1e-3)
    lam = LagrangeMultiplier(lr=0.01)
    sampler = GumbelSampler(TemperatureSchedule(5.0, 0.1, 10),
                            np.random.default_rng(0))

    def step():
        _, gates = sampler.sample_gates(alpha, 5)
        valid = engine.oracle.differentiable_loss(gates)
        loss, _ = engine.objective.loss(valid, gates, lam.as_tensor())
        alpha_opt.zero_grad()
        loss.backward()
        alpha_opt.step()
        lam.ascend()

    benchmark(step)
