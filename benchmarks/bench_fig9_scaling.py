"""Figure 9 — LightNets vs MobileNetV2 width/resolution scaling.

The alternative way to hit a latency target is to scale a fixed design.  The
paper scales MobileNetV2's width and input resolution to match each
LightNet's latency and finds the searched networks consistently more
accurate (all models under the 50-epoch quick protocol).

The timed kernel is one scaled-model evaluation.
"""

import numpy as np

from conftest import emit
from repro.baselines.scaling import ScalingBaseline
from repro.experiments.reporting import render_table, save_json

QUICK_EPOCHS = 50


def test_fig9_scaling_comparison(ctx, lightnets, benchmark):
    scaler = ScalingBaseline(device=ctx.device)

    rows = []
    wins = 0
    comparisons = []
    for target, arch in sorted(lightnets.items()):
        ours_latency = ctx.latency_model.latency_ms(arch)
        ours_top1 = ctx.oracle.evaluate(arch, epochs=QUICK_EPOCHS).top1
        width_model = scaler.fit_width_to_latency(ours_latency,
                                                  epochs=QUICK_EPOCHS)
        res_model = scaler.fit_resolution_to_latency(ours_latency,
                                                     epochs=QUICK_EPOCHS)
        best_scaled = max(width_model.top1, res_model.top1)
        wins += ours_top1 > best_scaled
        comparisons.append((ours_top1, best_scaled))
        rows.append([
            f"{target:.0f} ms", ours_top1,
            width_model.top1, f"w={width_model.width_mult:.2f}",
            res_model.top1, f"r={res_model.resolution}",
        ])

    emit("fig9_scaling", render_table(
        ["budget", "LightNet top-1", "width-scaled top-1", "width",
         "res-scaled top-1", "resolution"],
        rows,
        title=f"Figure 9 — LightNets vs MobileNetV2 scaling "
              f"({QUICK_EPOCHS}-epoch quick protocol)"))
    save_json("fig9_scaling", {
        "rows": [[str(c) for c in row] for row in rows],
        "wins": wins, "total": len(rows),
    })

    # LightNets dominate the scaling alternatives at (almost) every budget.
    assert wins >= len(rows) - 1
    mean_margin = float(np.mean([o - s for o, s in comparisons]))
    assert mean_margin > 0.2

    benchmark(scaler.reference, QUICK_EPOCHS)
