"""Run-fleet executor benchmark: speedup scaling at jobs ∈ {1, 2, 4, cores}.

The run-fleet executor's contract is twofold: fanning independent runs
across forked workers must be (1) **bit-identical** to the sequential run
and (2) actually faster on multi-core hosts.  This benchmark measures both
on the workloads the executor ships wired into:

* **sweep** — one LightNAS search per latency target (the gated workload);
* **stability** — a (targets × seeds) multi-seed campaign;
* **calibration** — per-device proxy-transfer calibration over a fleet;
* **campaign shards** — a sharded predictor measurement campaign.

Every workload is run at each jobs level and its results are compared
against the jobs=1 reference — parity is asserted unconditionally, not
just under ``--check``.

Honest efficiency accounting: wall-clock speedup is bounded by physical
cores, not by the jobs count, so the speedup gates are **core-aware**:

1. parity: every workload's jobs=N results equal the jobs=1 results;
2. ≥ 2.0× wall-clock speedup at 4 jobs on the sweep workload — enforced
   when the host has ≥ 4 cpus;
3. ≥ 1.3× at 2 jobs — enforced when the host has ≥ 2 cpus;
4. on a single-core host the speedup gates are recorded as skipped and a
   bounded-overhead gate applies instead (4-job wall ≤ 1.6× 1-job wall —
   forking, pickling and journal merging must stay cheap even when
   parallelism cannot pay).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --targets 4 \
        --epochs 30 --steps 20 --check     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.shared import fit_latency_predictor
from repro.fleet import ProxyTransfer, generate_fleet
from repro.hardware.latency import LatencyModel
from repro.predictor.dataset import collect_latency_dataset_sharded
from repro.runtime.parallel import FleetTask, RunFleet
from repro.search_space.macro import MacroConfig
from repro.search_space.space import SearchSpace

#: Tiny-space latency targets for the sweep workload (ms).
_SWEEP_TARGETS = (1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0, 3.2)


def _jobs_grid(cores: int) -> list:
    return sorted({1, 2, 4, max(1, cores)})


# ----------------------------------------------------------------------
# Workloads: each returns a fresh task list (tasks are rebuilt per jobs
# level so no state can leak between timed runs)
# ----------------------------------------------------------------------

def sweep_tasks(space, predictor, targets, epochs, steps):
    configs = [LightNASConfig.paper(target, space=space, seed=0,
                                    epochs=epochs, steps_per_epoch=steps)
               for target in targets]

    def make(config):
        def fn(ctx):
            result = LightNAS(config, predictor=predictor).search()
            return {
                "target": config.target,
                "arch": list(result.architecture.op_indices),
                "predicted": float(result.predicted_metric),
                "trajectory": list(result.trajectory.predicted_metric),
            }

        return FleetTask(name=f"target_{config.target:g}", fn=fn,
                         header={"target": config.target})

    return [make(config) for config in configs]


def stability_tasks(space, predictor, targets, seeds, epochs, steps):
    grid = [(target, seed) for target in targets for seed in seeds]

    def make(target, seed):
        def fn(ctx):
            config = LightNASConfig.paper(target, space=space, seed=seed,
                                          epochs=epochs,
                                          steps_per_epoch=steps)
            result = LightNAS(config, predictor=predictor).search()
            return {
                "target": target, "seed": seed,
                "arch": list(result.architecture.op_indices),
                "predicted": float(result.predicted_metric),
            }

        return FleetTask(name=f"target_{target:g}_seed_{seed}", fn=fn,
                         header={"target": target, "seed": seed})

    return [make(target, seed) for target, seed in grid]


def timed_fleet(make_tasks, jobs: int):
    fleet = RunFleet(jobs=jobs, seed=0)
    start = time.perf_counter()
    report = fleet.run(make_tasks())
    wall = time.perf_counter() - start
    return report.values(), wall, report.stats


def run_workload(name: str, make_tasks, jobs_grid) -> dict:
    """Time one workload across the jobs grid; assert parity vs jobs=1."""
    reference = None
    base_wall = None
    levels = {}
    for jobs in jobs_grid:
        values, wall, stats = timed_fleet(make_tasks, jobs)
        # canonicalise through JSON so tuples/lists compare structurally;
        # float values must round-trip bit-exactly for parity to hold
        canon = json.loads(json.dumps(values))
        if reference is None:
            reference, base_wall = canon, wall
        else:
            assert canon == reference, (
                f"{name}: jobs={jobs} results differ from jobs=1 — "
                f"determinism contract broken")
        levels[str(jobs)] = {
            "wall_s": round(wall, 4),
            "speedup": round(base_wall / wall, 4) if wall > 0 else 0.0,
            "efficiency": round(base_wall / wall / jobs, 4)
            if wall > 0 else 0.0,
            "utilization": stats.get("utilization", 0.0),
            "workers_spawned": stats.get("workers_spawned", 0),
        }
        print(f"  {name}: jobs={jobs} wall={wall:.2f}s "
              f"speedup={levels[str(jobs)]['speedup']:.2f}x")
    return {"tasks": len(reference), "parity": True, "jobs": levels}


def run(args) -> dict:
    cores = os.cpu_count() or 1
    jobs_grid = _jobs_grid(cores)
    space = SearchSpace(MacroConfig.tiny())
    latency_model = LatencyModel(space)
    predictor, _ = fit_latency_predictor(space, latency_model,
                                         num_samples=1500)
    targets = _SWEEP_TARGETS[:args.targets]
    seeds = tuple(range(args.seeds))

    print(f"host: {cores} cpu core(s); jobs grid {jobs_grid}")
    workloads = {}

    # --- sweep (the gated workload) ---------------------------------
    workloads["sweep"] = run_workload(
        "sweep",
        lambda: sweep_tasks(space, predictor, targets,
                            args.epochs, args.steps),
        jobs_grid)

    # --- stability ---------------------------------------------------
    workloads["stability"] = run_workload(
        "stability",
        lambda: stability_tasks(space, predictor, targets[:2], seeds,
                                max(10, args.epochs // 2),
                                max(10, args.steps // 2)),
        jobs_grid)

    # --- fleet calibration ------------------------------------------
    devices = (generate_fleet("phone", args.devices // 2)
               + generate_fleet("mcu", args.devices - args.devices // 2))
    calibration = {}
    reference_maps = None
    for jobs in (1, min(4, max(jobs_grid))):
        start = time.perf_counter()
        transfer = ProxyTransfer.calibrate(
            predictor, space, devices, num_samples=args.calibration,
            seed=0, proxy_device=latency_model.device.name,
            fleet=RunFleet(jobs=jobs, seed=0) if jobs > 1 else None)
        wall = time.perf_counter() - start
        payload = transfer.to_payload()
        if reference_maps is None:
            reference_maps = payload
        else:
            assert payload == reference_maps, (
                "calibration: fanned maps differ from sequential maps")
        calibration[str(jobs)] = {"wall_s": round(wall, 4)}
        print(f"  calibration: jobs={jobs} wall={wall:.2f}s "
              f"({len(devices)} devices)")
    calibration["devices"] = len(devices)
    calibration["parity"] = True
    workloads["calibration"] = calibration

    # --- sharded predictor campaign ---------------------------------
    campaign = {}
    reference_data = None
    for jobs in (1, min(4, max(jobs_grid))):
        start = time.perf_counter()
        data = collect_latency_dataset_sharded(
            latency_model, args.campaign, 0,
            shard_size=max(1, args.campaign // 8),
            fleet=RunFleet(jobs=jobs, seed=0) if jobs > 1 else None)
        wall = time.perf_counter() - start
        if reference_data is None:
            reference_data = data
        else:
            assert np.array_equal(data.features, reference_data.features)
            assert np.array_equal(data.targets, reference_data.targets)
        campaign[str(jobs)] = {"wall_s": round(wall, 4)}
        print(f"  campaign: jobs={jobs} wall={wall:.2f}s "
              f"({args.campaign} samples)")
    campaign["samples"] = args.campaign
    campaign["parity"] = True
    workloads["campaign_shards"] = campaign

    # --- core-aware gates -------------------------------------------
    sweep_levels = workloads["sweep"]["jobs"]
    speedup_4j = sweep_levels.get("4", {}).get("speedup", 0.0)
    speedup_2j = sweep_levels.get("2", {}).get("speedup", 0.0)
    gates = {
        "parity": {"required": True, "passed": True, "enforced": True},
        "speedup_4_jobs": {
            "required": 2.0, "measured": speedup_4j,
            "enforced": cores >= 4,
            "reason": None if cores >= 4 else
            f"host has {cores} core(s) — wall-clock speedup at 4 jobs is "
            f"physically bounded by the core count, gate skipped",
        },
        "speedup_2_jobs": {
            "required": 1.3, "measured": speedup_2j,
            "enforced": cores >= 2,
            "reason": None if cores >= 2 else
            f"host has {cores} core(s), gate skipped",
        },
        "single_core_overhead": {
            # jobs=4 wall may not exceed 1.6x jobs=1 wall: the executor's
            # fork/pickle/merge overhead must stay small even when
            # parallelism cannot pay
            "required": 1.6,
            "measured": round(sweep_levels["4"]["wall_s"]
                              / sweep_levels["1"]["wall_s"], 4)
            if "4" in sweep_levels and sweep_levels["1"]["wall_s"] > 0
            else 0.0,
            "enforced": cores < 2,
        },
    }

    if args.check:
        if gates["speedup_4_jobs"]["enforced"]:
            assert speedup_4j >= 2.0, (
                f"sweep speedup at 4 jobs is {speedup_4j:.2f}x on a "
                f"{cores}-core host, need >= 2.0x")
        if gates["speedup_2_jobs"]["enforced"]:
            assert speedup_2j >= 1.3, (
                f"sweep speedup at 2 jobs is {speedup_2j:.2f}x on a "
                f"{cores}-core host, need >= 1.3x")
        if gates["single_core_overhead"]["enforced"]:
            overhead = gates["single_core_overhead"]["measured"]
            assert 0 < overhead <= 1.6, (
                f"single-core fleet overhead {overhead:.2f}x > 1.6x — "
                f"the executor costs too much when it cannot parallelise")

    return {
        "cpu_count": cores,
        "jobs_grid": jobs_grid,
        "config": {"targets": len(targets), "epochs": args.epochs,
                   "steps": args.steps, "seeds": len(seeds),
                   "devices": len(devices), "campaign": args.campaign},
        "workloads": workloads,
        "gates": gates,
        "checks_passed": bool(args.check),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--targets", type=int, default=4,
                        help="sweep targets (max 8, default 4)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="stability seeds per target (default 2)")
    parser.add_argument("--epochs", type=int, default=60,
                        help="search epochs per run (default 60)")
    parser.add_argument("--steps", type=int, default=40,
                        help="steps per epoch (default 40)")
    parser.add_argument("--devices", type=int, default=8,
                        help="calibration fleet size (default 8)")
    parser.add_argument("--calibration", type=int, default=100,
                        help="calibration pairs per device")
    parser.add_argument("--campaign", type=int, default=4000,
                        help="sharded campaign size (default 4000)")
    parser.add_argument("--check", action="store_true",
                        help="assert the core-aware speedup/overhead gates")
    args = parser.parse_args()
    args.targets = min(args.targets, len(_SWEEP_TARGETS))

    results = run(args)

    from repro.experiments.reporting import render_table, save_json

    rows = []
    for name, workload in results["workloads"].items():
        levels = workload.get("jobs", workload)
        for jobs in sorted(int(k) for k in levels if k.isdigit()):
            info = levels[str(jobs)]
            rows.append([name, jobs, info["wall_s"],
                         info.get("speedup", "—"),
                         info.get("efficiency", "—"),
                         info.get("utilization", "—")])
    print(render_table(
        ["workload", "jobs", "wall s", "speedup", "efficiency",
         "utilization"],
        rows,
        title=f"run-fleet scaling — {results['cpu_count']} core(s), "
              f"parity asserted at every level"))
    for gate, info in results["gates"].items():
        state = ("enforced" if info.get("enforced") else "skipped")
        print(f"gate {gate}: {state}"
              + (f" — {info['reason']}" if info.get("reason") else ""))
    path = save_json("BENCH_parallel", results)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
