"""Figure 8 — generality to energy-critical tasks.

Left: the same MLP architecture fits energy measurements (noisier than
latency, because of the temperature drift the paper mentions).  Right: the
search converges under a 500 mJ energy constraint with the energy predictor
plugged in — no engine changes.

The timed kernel is one energy-model evaluation.
"""

import numpy as np

from conftest import emit
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.reporting import ascii_series, render_table, save_json
from repro.experiments.shared import fit_energy_predictor

TARGET_MJ = 500.0


def test_fig8_energy_predictor_and_search(ctx, benchmark):
    predictor, energy_rmse = fit_energy_predictor(ctx.space, ctx.energy_model)

    config = LightNASConfig.paper(TARGET_MJ, space=ctx.space, seed=0,
                                  metric_name="energy_mj")
    result = LightNAS(config, predictor=predictor).search()
    model_energy = ctx.energy_model.energy_mj(result.architecture)

    rows = [
        ["energy predictor RMSE (mJ)", f"{energy_rmse:.2f}",
         "noisier than latency fit"],
        ["latency predictor RMSE (ms)", f"{ctx.latency_predictor_rmse:.3f}",
         "for comparison"],
        ["search target (mJ)", f"{TARGET_MJ:.0f}", "paper's Fig. 8 Right"],
        ["searched energy (mJ)", f"{model_energy:.1f}", "model value"],
        ["final λ", f"{result.final_lambda:+.4f}", "learned, not tuned"],
    ]
    text = render_table(["quantity", "value", "note"], rows,
                        title="Figure 8 — energy-constrained LightNAS")
    text += "\n\n" + ascii_series(result.trajectory.predicted_metric,
                                  label="predicted energy (mJ) per epoch")
    emit("fig8_energy", text)
    save_json("fig8_energy", {
        "energy_rmse_mj": energy_rmse,
        "latency_rmse_ms": ctx.latency_predictor_rmse,
        "searched_energy_mj": model_energy,
        "trajectory": result.trajectory.predicted_metric,
    })

    # the energy fit is worse in relative terms (temperature drift) ...
    assert (energy_rmse / 450.0) > (ctx.latency_predictor_rmse / 24.0)
    # ... but the search still satisfies the energy constraint.  The energy
    # predictor's drift-induced error is exploited by the optimiser, so the
    # band here is wider than the latency one (predicted convergence is
    # tight; model-value error tracks the predictor RMSE).
    assert abs(model_energy - TARGET_MJ) / TARGET_MJ < 0.12
    # and converged: the *predicted* trajectory tail sits at the target
    tail = result.trajectory.predicted_metric[-8:]
    assert all(abs(m - TARGET_MJ) / TARGET_MJ < 0.08 for m in tail)

    rng = np.random.default_rng(0)
    arch = ctx.space.sample(rng)
    benchmark(ctx.energy_model.energy_mj, arch)
