"""Table 1 — comparison with previous state-of-the-art NAS approaches.

Regenerates the feature/cost matrix: differentiability, latency
optimisation, ability to hit a *specified* latency, search complexity
(active paths per layer), and search cost — both the paper-reported GPU
hours and the cost accounting of what our engines actually executed.

The timed kernel is the cost-accounting call.
"""

from conftest import emit
from repro.baselines.gradient import (
    DARTSSearch,
    FBNetSearch,
    GradientNASConfig,
    ProxylessSearch,
)
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.eval import cost
from repro.experiments.reporting import render_table, save_json

FEATURES = {
    # method: (differentiable, latency-opt, specified-latency, paths/layer)
    "darts": (True, False, False, 7),
    "mnasnet-rl": (False, True, True, 1),
    "ofa-evolution": (False, True, True, 1),
    "proxylessnas": (True, True, False, 2),
    "fbnet": (True, True, False, 7),
    "lightnas": (True, True, True, 1),
}


def test_table1_method_matrix(ctx, benchmark):
    # Short probe runs to read each engine's actual paths-per-step.
    probe_cfg = GradientNASConfig(space=ctx.space, epochs=2, steps_per_epoch=2,
                                  seed=0)
    probes = {
        "darts": DARTSSearch(probe_cfg, ctx.oracle).search(),
        "fbnet": FBNetSearch(probe_cfg, ctx.oracle).search(),
        "proxylessnas": ProxylessSearch(probe_cfg, ctx.oracle).search(),
        "lightnas": LightNAS(
            LightNASConfig.paper(24.0, space=ctx.space, seed=0, epochs=2,
                                 steps_per_epoch=2),
            predictor=ctx.latency_predictor).search(),
    }
    L = ctx.space.num_layers
    for name, expected_paths in (("darts", 7), ("fbnet", 7),
                                 ("proxylessnas", 2), ("lightnas", 1)):
        assert probes[name].search_paths_per_step == expected_paths * L

    rows = []
    for method, (diff, lat, spec, paths) in FEATURES.items():
        total = cost.total_design_cost(method)
        rows.append([
            method,
            "yes" if diff else "no",
            "yes" if lat else "no",
            "yes" if spec else "no",
            f"O({paths})",
            total.explicit_gpu_hours,
            total.runs_needed,
            total.total_gpu_hours,
        ])
    emit("table1_method_comparison", render_table(
        ["method", "differentiable", "latency opt", "specified latency",
         "paths/layer", "GPU-h/run", "runs to hit T", "total GPU-h"],
        rows, title="Table 1 — comparison with previous NAS approaches"))
    save_json("table1_method_comparison", {"rows": [list(map(str, r))
                                                    for r in rows]})

    # LightNAS: single-path, one run, cheapest total design cost.
    lightnas_total = cost.total_design_cost("lightnas").total_gpu_hours
    for method in FEATURES:
        if method != "lightnas":
            assert cost.total_design_cost(method).total_gpu_hours > lightnas_total

    # simulated accounting reproduces the 10 GPU-hour anchor for a full run
    full_run = cost.simulated_gpu_hours("lightnas", 90 * 50, L)
    assert abs(full_run - 10.0) < 0.01

    benchmark(cost.total_design_cost, "lightnas")
