"""Performance baseline for compiled step plans (BENCH_step.json).

Measures the trace-once/replay-many step compiler against the eager tape
engine on the tiny supernet — the bi-level search's inner loop — for the
three step families the LightNAS engine compiles:

* ``w``-step: single-path weight training (forward + backward + SGD),
* ``alpha``-step shape: same network, gradient also w.r.t. the gate tensor,
* ``warmup`` eval: forward-only validation (grad-free plan).

For each family the benchmark reports steady-state per-step wall time
(best of ``--repeat`` runs) and the number of tracked
:class:`~repro.nn.tensor.Tensor` allocations per step.  A replayed plan
runs the whole step through preallocated arena buffers, so its
allocation count must collapse to ~zero.

The step compiler removes *per-op Python overhead* — tape construction,
closure dispatch, fresh allocations — while unfused numpy kernel work is
shared with eager.  The default batch size (2) measures the
overhead-bound regime where that removal dominates.  The
``batch_scaling`` section covers the BLAS-bound tail: every family at
batches 8 and 16, each compiled twice — with fused replay kernels
(conv/BN folding, shared depthwise-conv workspaces, packed elementwise
chains, stacked 1x1 paths) and with fusion disabled — so the JSON
reports honestly how much of the large-batch speedup comes from fusion
rather than from replay alone.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_step_replay.py
    PYTHONPATH=src python benchmarks/bench_step_replay.py --batch-size 16

``--check`` asserts the acceptance thresholds: at the default batch the
replayed w-step is >= 2x faster than eager steady state and tracked
per-step allocations drop by >= 10x; at batch 16 the *fused* replayed
w-step is >= 1.5x faster than eager.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.plan import StepProgram
from repro.proxy.dataset import SyntheticTask
from repro.proxy.supernet import SuperNet
from repro.search_space.macro import MacroConfig
from repro.search_space.space import SearchSpace


def _build(batch_size: int, dtype: str):
    space = SearchSpace(MacroConfig.tiny())
    with nn.dtype_scope(dtype):
        net = SuperNet(space, np.random.default_rng(0))
        optimizer = nn.SGD(net.parameters(), lr=0.05, momentum=0.9)
    task = SyntheticTask(resolution=space.macro.input_resolution,
                         train_size=128, valid_size=64, seed=0)
    batches = list(task.batches(task.train, batch_size))
    arch = space.sample(np.random.default_rng(7))
    gates = arch.one_hot(space.num_operators)
    sel = tuple(int(k) for k in np.argmax(gates, axis=1))
    return space, net, optimizer, batches, gates, sel


def _measure_pair(eager_step, eager_batches, plan_step, plan_batches,
                  steps: int, repeat: int):
    """Steady-state per-step seconds (best of ``repeat``) + allocations.

    Step 0 (the trace/warm-up step) is excluded on both sides.  The
    eager and replayed loops are measured in *alternating* rounds so
    slow drift in machine load lands on both sides of the speedup ratio
    instead of skewing whichever loop ran later; best-of-``repeat``
    additionally guards against scheduler noise within a round.
    """
    eager_step(eager_batches[0])  # warm up
    plan_step(plan_batches[0])  # trace + compile
    rounds = max(1, repeat)
    best = [float("inf"), float("inf")]
    allocs = [0.0, 0.0]
    for _ in range(rounds):
        for idx, (step, batches) in enumerate(
                ((eager_step, eager_batches), (plan_step, plan_batches))):
            before = nn.tensor_allocations()
            start = time.perf_counter()
            for i in range(steps):
                step(batches[(i + 1) % len(batches)])
            best[idx] = min(best[idx], (time.perf_counter() - start) / steps)
            allocs[idx] += (nn.tensor_allocations() - before) / steps
    return best[0], allocs[0] / rounds, best[1], allocs[1] / rounds


def bench_family(family: str, steps: int, batch_size: int,
                 dtype: str, repeat: int = 3, fused: bool = True) -> dict:
    """Benchmark one step family; ``fused=False`` compiles the plan with
    kernel fusion disabled (same schedule, unfused kernels) so the JSON
    can report an honest fused-vs-unfused replay breakdown."""
    with nn.fusion(fused):
        return _bench_family(family, steps, batch_size, dtype, repeat)


def _bench_family(family: str, steps: int, batch_size: int,
                  dtype: str, repeat: int) -> dict:
    grad = family != "warmup"

    def eager_step_factory():
        space, net, opt, batches, gates, _ = _build(batch_size, dtype)
        net.train(grad)

        def eager_step(batch):
            with nn.dtype_scope(dtype):
                if grad:
                    logits = net.forward_single_path(
                        Tensor(batch.images),
                        Tensor(gates, requires_grad=(family == "alpha")))
                    loss = F.cross_entropy(logits, batch.labels)
                    opt.zero_grad()
                    loss.backward()
                    opt.step()
                else:
                    with nn.no_grad():
                        logits = net.forward_single_path(
                            Tensor(batch.images), Tensor(gates))
                        F.cross_entropy(logits, batch.labels)
        return eager_step, batches

    def plan_step_factory():
        space, net, opt, batches, gates, sel = _build(batch_size, dtype)
        net.train(grad)
        program = StepProgram(family, compile_threshold=1)
        num_classes = space.macro.num_classes
        gates_param = nn.Parameter(gates.copy(), name="gates")

        def fn(ts):
            if family == "alpha":
                gate_t = gates_param
            else:
                gate_t = Tensor(gates)
            if grad:
                logits = net.forward_single_path(ts["images"], gate_t)
                return {"loss": F.cross_entropy(logits,
                                                targets=ts["targets"])}
            with nn.no_grad():
                logits = net.forward_single_path(ts["images"], gate_t)
                return {"loss": F.cross_entropy(logits,
                                                targets=ts["targets"])}

        def plan_step(batch):
            with nn.dtype_scope(dtype):
                targets = F.one_hot(batch.labels, num_classes)
                if grad:
                    opt.zero_grad()
                    gates_param.zero_grad()
                program.run((family, sel, batch.images.shape),
                            {"images": batch.images, "targets": targets},
                            fn, grad=grad)
                if grad:
                    opt.step()
        return plan_step, batches, program

    eager_step, eager_batches = eager_step_factory()
    plan_step, plan_batches, program = plan_step_factory()
    eager_s, eager_allocs, plan_s, plan_allocs = _measure_pair(
        eager_step, eager_batches, plan_step, plan_batches, steps, repeat)

    stats = program.stats()
    return {
        "eager_step_ms": round(eager_s * 1e3, 3),
        "replay_step_ms": round(plan_s * 1e3, 3),
        "speedup": round(eager_s / plan_s, 2),
        "eager_allocs_per_step": round(eager_allocs, 1),
        "replay_allocs_per_step": round(plan_allocs, 1),
        "alloc_drop": round(eager_allocs / max(plan_allocs, 1e-9), 1)
        if plan_allocs else float(eager_allocs),
        "plans_compiled": stats["plans_compiled"],
        "replays": stats["replays"],
        "arena_bytes": stats["arena_bytes"],
        "kernels_fused": stats["kernels_fused"],
        "fusion_rejected": stats["fusion_rejected"],
    }


def _scaling_entry(family: str, steps: int, batch_size: int, dtype: str,
                   repeat: int) -> dict:
    """Fused vs unfused replay for one (family, batch size) point."""
    keys = ("eager_step_ms", "replay_step_ms", "speedup")
    fused = bench_family(family, steps, batch_size, dtype, repeat, fused=True)
    unfused = bench_family(family, steps, batch_size, dtype, repeat,
                           fused=False)
    return {
        "fused": {**{k: fused[k] for k in keys},
                  "kernels_fused": fused["kernels_fused"],
                  "fusion_rejected": fused["fusion_rejected"]},
        "unfused": {k: unfused[k] for k in keys},
    }


def run(steps: int, batch_size: int, dtype: str, check: bool,
        repeat: int = 3) -> dict:
    results = {
        "config": {"steps": steps, "batch_size": batch_size, "dtype": dtype,
                   "repeat": repeat},
        "w_step": bench_family("w", steps, batch_size, dtype, repeat),
        "alpha_step": bench_family("alpha", steps, batch_size, dtype, repeat),
        "warmup_eval": bench_family("warmup", steps, batch_size, dtype,
                                    repeat),
        # the batch-2 speedup is overhead-bound; larger batches shift the
        # step toward BLAS time, where only *fused* kernels (shared conv
        # workspaces, packed elementwise chains, stacked 1x1 paths) keep
        # replay ahead of eager — record both sides honestly, per family
        "batch_scaling": {
            str(bs): {
                family: _scaling_entry(family, steps, bs, dtype, repeat)
                for family in ("w", "alpha", "warmup")
            }
            for bs in (8, 16)
        },
    }
    if check:
        w = results["w_step"]
        assert w["speedup"] >= 2.0, (
            f"replayed w-step only {w['speedup']:.2f}x faster than eager "
            f"(acceptance floor is 2x)")
        eager_allocs = w["eager_allocs_per_step"]
        replay_allocs = max(w["replay_allocs_per_step"], 0.0)
        assert eager_allocs >= 10 * max(replay_allocs, 1e-9) or \
            replay_allocs == 0.0, (
            f"per-step tracked allocations only dropped from "
            f"{eager_allocs} to {replay_allocs} (need >= 10x)")
        w16 = results["batch_scaling"]["16"]["w"]["fused"]
        assert w16["speedup"] >= 1.5, (
            f"fused replayed w-step at batch 16 only {w16['speedup']:.2f}x "
            f"faster than eager (acceptance floor is 1.5x)")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=16,
                        help="steady-state steps measured per family")
    parser.add_argument("--batch-size", type=int, default=2,
                        help="default 2: the overhead-bound regime the "
                             "step compiler targets")
    parser.add_argument("--repeat", type=int, default=3,
                        help="wall-time is the best of this many runs")
    parser.add_argument("--dtype", choices=("float64", "float32"),
                        default="float64")
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance thresholds")
    args = parser.parse_args()

    results = run(args.steps, args.batch_size, args.dtype, args.check,
                  args.repeat)

    from repro.experiments.reporting import render_table, save_json

    rows = []
    for name in ("w_step", "alpha_step", "warmup_eval"):
        info = results[name]
        rows.append([
            name, info["eager_step_ms"], info["replay_step_ms"],
            f"x{info['speedup']:.2f}", info["eager_allocs_per_step"],
            info["replay_allocs_per_step"],
        ])
    print(render_table(
        ["step family", "eager (ms)", "replay (ms)", "speedup",
         "allocs eager", "allocs replay"],
        rows, title=f"compiled step plans — tiny supernet, "
                    f"batch {args.batch_size}, {args.dtype}"))
    scaling_rows = [
        [f"{family} @ batch {bs}",
         entry["fused"]["eager_step_ms"],
         entry["fused"]["replay_step_ms"],
         f"x{entry['fused']['speedup']:.2f}",
         entry["unfused"]["replay_step_ms"],
         f"x{entry['unfused']['speedup']:.2f}"]
        for bs, families in results["batch_scaling"].items()
        for family, entry in families.items()
    ]
    print()
    print(render_table(
        ["batch scaling", "eager (ms)", "fused (ms)", "speedup",
         "unfused (ms)", "speedup"],
        scaling_rows, title="fused vs unfused replay by batch size"))
    path = save_json("BENCH_step", results)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
