"""Ablation — Gumbel temperature annealing (τ: 5 → 0).

The paper anneals τ from 5 towards 0.  This ablation compares three
schedules at a fixed target: the paper's anneal, a frozen-hot τ = 5 (always
exploring), and a frozen-cold τ = 0.1 (greedy from the start).  The annealed
schedule should match the target at least as tightly as either extreme —
the explore-then-commit behaviour the schedule exists to provide.

The timed kernel is one Gumbel gate sample.
"""

import numpy as np

from conftest import emit
from repro import nn
from repro.core.gumbel import GumbelSampler, TemperatureSchedule
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.reporting import render_table, save_json

TARGET = 24.0
SEEDS = (0, 1, 2)


def run_with_schedule(ctx, tau_initial, tau_floor, seed):
    config = LightNASConfig.paper(TARGET, space=ctx.space, seed=seed,
                                  epochs=50, steps_per_epoch=30,
                                  tau_initial=tau_initial, tau_floor=tau_floor)
    result = LightNAS(config, predictor=ctx.latency_predictor).search()
    error = abs(ctx.latency_model.latency_ms(result.architecture) - TARGET)
    top1 = ctx.oracle.evaluate(result.architecture).top1
    return error, top1


def test_ablation_tau_schedule(ctx, benchmark):
    schedules = {
        "annealed 5→0.1 (paper)": (5.0, 0.1),
        "frozen hot τ=5": (5.0, 4.999),
        "frozen cold τ=0.1": (0.10001, 0.1),
    }
    rows = []
    summary = {}
    for name, (t0, tf) in schedules.items():
        errors, tops = [], []
        for seed in SEEDS:
            error, top1 = run_with_schedule(ctx, t0, tf, seed)
            errors.append(error)
            tops.append(top1)
        summary[name] = (float(np.mean(errors)), float(np.mean(tops)))
        rows.append([name, np.mean(errors), np.max(errors), np.mean(tops)])

    emit("ablation_tau", render_table(
        ["schedule", "mean |err| ms", "worst |err| ms", "mean top-1 %"],
        rows, title=f"Ablation — τ schedule at T = {TARGET} ms (3 seeds)"))
    save_json("ablation_tau", {k: list(v) for k, v in summary.items()})

    annealed_err, annealed_top1 = summary["annealed 5→0.1 (paper)"]
    # annealing satisfies the constraint
    assert annealed_err < 1.0
    # and is no worse than either frozen extreme on constraint satisfaction
    for name, (err, _) in summary.items():
        if name != "annealed 5→0.1 (paper)":
            assert annealed_err <= err + 0.35

    sampler = GumbelSampler(TemperatureSchedule(5.0, 0.1, 50),
                            np.random.default_rng(0))
    alpha = nn.Tensor(ctx.space.uniform_alpha())
    benchmark(sampler.sample_gates, alpha, 25)
