"""Table 4 — ablation of the Squeeze-and-Excitation module.

Applies SE to the last nine layers of each cached LightNet and reports the
accuracy/FLOPs/latency deltas.  The paper's shape: SE buys +0.4–0.9 top-1
for a small FLOPs increase and +0.9–2.1 ms latency.

The timed kernel is one with-SE evaluation row.
"""

from conftest import emit
from repro.eval.imagenet import ImageNetEvaluator
from repro.experiments.reporting import render_table, save_json

SE_LAYERS = 9


def test_table4_se_ablation(ctx, lightnets, benchmark):
    evaluator = ImageNetEvaluator(ctx.space, ctx.latency_model, ctx.oracle)

    rows = []
    records = {}
    for target, arch in sorted(lightnets.items()):
        base = evaluator.evaluate(arch, name=f"LightNet-{target:.0f}ms")
        se = evaluator.evaluate(arch, name=f"LightNet-{target:.0f}ms-SE",
                                with_se_last=SE_LAYERS)
        records[target] = (base, se)
        rows.append([
            se.name,
            f"{se.top1:.1f} (+{se.top1 - base.top1:.1f})",
            f"{se.top5:.1f} (+{se.top5 - base.top5:.1f})",
            f"{se.macs_m:.0f} (+{se.macs_m - base.macs_m:.0f})",
            f"{se.latency_ms:.1f} (+{se.latency_ms - base.latency_ms:.1f})",
        ])

    emit("table4_se_ablation", render_table(
        ["architecture", "top-1 %", "top-5 %", "MACs M", "latency ms"],
        rows, title=f"Table 4 — SE module on the last {SE_LAYERS} layers"))
    save_json("table4_se_ablation", {
        str(t): {"base": records[t][0].as_dict(), "se": records[t][1].as_dict()}
        for t in records
    })

    for target, (base, se) in records.items():
        # accuracy improves by the paper's +0.4–0.9-ish band
        assert 0.2 < se.top1 - base.top1 < 1.2
        assert se.top5 > base.top5
        # small FLOPs increase (paper: +2–4 M)
        assert 0 < se.macs_m - base.macs_m < 10
        # latency increases by roughly 1–2.5 ms
        assert 0.3 < se.latency_ms - base.latency_ms < 3.0

    benchmark(evaluator.evaluate, lightnets[24.0], "LightNet-24ms-SE",
              "differentiable", SE_LAYERS)
