"""Warm-archive benchmark for the evaluation cache (BENCH_archive.json).

Runs the same seeded evolution search three times —

* **cold**: no cache, every genotype hits the predictor / oracle,
* **populate**: cached run that flushes its evaluations into an archive,
* **warm**: fresh process-equivalent rerun preloaded from that archive,

— and records wall times plus the warm run's cache hit rate.  The warm
result must be bit-identical to the cold one (that is the archive
subsystem's acceptance criterion), which ``--check`` additionally asserts
together with a non-trivial hit rate.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_archive.py
    PYTHONPATH=src python benchmarks/bench_archive.py --cycles 12 \
        --population 8 --check          # CI smoke
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import numpy as np

from repro.archive.cache import EvalCache
from repro.archive.store import ArchitectureArchive
from repro.baselines.evolution import EvolutionConfig, EvolutionSearch
from repro.predictor.dataset import collect_latency_dataset
from repro.predictor.mlp import MLPPredictor
from repro.proxy.accuracy_model import AccuracyOracle
from repro.hardware.latency import LatencyModel
from repro.search_space.macro import MacroConfig
from repro.search_space.space import SearchSpace


def fit_tiny_predictor(space: SearchSpace) -> MLPPredictor:
    rng = np.random.default_rng(11)
    data = collect_latency_dataset(LatencyModel(space), 600, rng)
    train, _ = data.split(0.8, rng)
    predictor = MLPPredictor(space, hidden=(64, 32), seed=0)
    predictor.fit(train, epochs=120, batch_size=128, lr=3e-3,
                  weight_decay=0.0)
    return predictor


def timed_search(config, predictor, oracle, cache=None):
    engine = EvolutionSearch(config, predictor, oracle, cache=cache)
    start = time.perf_counter()
    result = engine.search()
    return result, time.perf_counter() - start


def run(cycles: int, population: int, check: bool) -> dict:
    space = SearchSpace(MacroConfig.tiny())
    predictor = fit_tiny_predictor(space)
    oracle = AccuracyOracle(space)
    config = EvolutionConfig(space=space, target=4.0,
                             population_size=population,
                             tournament_size=max(2, population // 2),
                             cycles=cycles, seed=17)

    cold, cold_s = timed_search(config, predictor, oracle)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "archive.jsonl")
        with ArchitectureArchive(path, space=space) as archive:
            cache = EvalCache(predictor, oracle, archive=archive)
            populate, populate_s = timed_search(config, predictor, oracle,
                                                cache=cache)
        with ArchitectureArchive(path, space=space) as archive:
            warm_cache = EvalCache(predictor, oracle, archive=archive)
            warm, warm_s = timed_search(config, predictor, oracle,
                                        cache=warm_cache)
            counters = warm_cache.counters()
            archived = len(archive)

    identical = (warm.architecture == cold.architecture
                 and warm.predicted_metric == cold.predicted_metric
                 and warm.num_search_steps == cold.num_search_steps)
    assert identical, "warm rerun diverged from the cold run"

    results = {
        "cycles": cycles,
        "population_size": population,
        "archived_genotypes": archived,
        "cold_wall_seconds": cold_s,
        "populate_wall_seconds": populate_s,
        "warm_wall_seconds": warm_s,
        "warm_speedup_vs_cold": cold_s / warm_s,
        "warm_cache_hit_rate": counters["cache_hit_rate"],
        "warm_fitness_misses": counters["fitness_misses"],
        "bit_identical": identical,
    }

    if check:
        assert counters["cache_hit_rate"] > 0, "warm run never hit the cache"
        assert counters["fitness_misses"] == 0, \
            "warm run re-ran the oracle for already-archived genotypes"

    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=150,
                        help="evolution cycles per run")
    parser.add_argument("--population", type=int, default=24,
                        help="evolution population size")
    parser.add_argument("--check", action="store_true",
                        help="assert bit-identity and a non-zero hit rate")
    args = parser.parse_args()

    results = run(args.cycles, args.population, args.check)

    from repro.experiments.reporting import render_table, save_json

    rows = [
        ["cold (no cache)", f"{results['cold_wall_seconds']:.3f}", "—"],
        ["populate (cache + flush)",
         f"{results['populate_wall_seconds']:.3f}", "—"],
        ["warm (preloaded archive)", f"{results['warm_wall_seconds']:.3f}",
         f"{100 * results['warm_cache_hit_rate']:.1f}%"],
    ]
    print(render_table(
        ["run", "wall (s)", "cache hit rate"], rows,
        title=f"Warm-archive evolution — {results['archived_genotypes']} "
              f"genotypes archived, bit-identical result"))
    path = save_json("BENCH_archive", results)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
