"""Ablation — layer-wise search vs cell-based (tiled) search (§3.1).

The paper chooses a layer-wise space over DARTS-style cell search because
"enabling the layer diversity helps to strike the right balance between
accuracy and efficiency".  This ablation runs the same constrained search
engine over (a) the full layer-wise space and (b) tiled cells of size 1, 2
and 4, at the same latency budget — and measures what the tiling costs.

The timed kernel is one differentiable cell→full gate expansion.
"""

import numpy as np

from conftest import emit
from repro import nn
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.reporting import render_table, save_json
from repro.search_space.cell import CellConstrainedSearch, CellSearchConfig, CellSpace

TARGET = 24.0
CELL_SIZES = (1, 2, 4)


def test_ablation_cell_vs_layerwise(ctx, benchmark):
    rows = []
    cell_top1 = {}
    for cell_size in CELL_SIZES:
        config = CellSearchConfig(cell_size=cell_size, target=TARGET,
                                  epochs=60, steps_per_epoch=40, seed=0)
        arch, predicted = CellConstrainedSearch(
            ctx.space, config, ctx.latency_predictor, ctx.oracle).search()
        top1 = ctx.oracle.evaluate(arch).top1
        cell_top1[cell_size] = top1
        rows.append([f"cell (C={cell_size})", f"{7 ** cell_size:g}",
                     ctx.latency_model.latency_ms(arch), top1])

    layer_config = LightNASConfig.paper(TARGET, space=ctx.space, seed=0,
                                        epochs=60, steps_per_epoch=40)
    layer_result = LightNAS(layer_config,
                            predictor=ctx.latency_predictor).search()
    layer_top1 = ctx.oracle.evaluate(layer_result.architecture).top1
    rows.append(["layer-wise (paper)", f"{ctx.space.size:.3g}",
                 ctx.latency_model.latency_ms(layer_result.architecture),
                 layer_top1])

    emit("ablation_cellspace", render_table(
        ["search space", "|A|", "latency ms", "top-1 %"],
        rows, title=f"Ablation — layer diversity at T = {TARGET} ms"))
    save_json("ablation_cellspace", {
        "cell_top1": {str(k): v for k, v in cell_top1.items()},
        "layerwise_top1": layer_top1,
    })

    # layer diversity wins at matched budget, and more cell freedom helps
    assert layer_top1 > max(cell_top1.values())
    assert cell_top1[4] >= cell_top1[1] - 0.2

    cell = CellSpace(ctx.space, 4)
    gates = nn.Tensor(np.full((4, ctx.space.num_operators),
                              1.0 / ctx.space.num_operators))
    benchmark(cell.expand_gates, gates)
