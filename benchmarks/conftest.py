"""Shared fixtures for the benchmark suite.

``ctx`` loads the full-space experiment context (the fitted 10k-campaign
latency predictor is cached on disk, so only the first-ever run pays the
campaign).  ``lightnets`` caches one LightNAS search per Table-2 target, so
the many benchmarks that consume searched architectures (Tables 2–4,
Figures 6 and 9) do not re-run identical searches.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.lightnas import LightNAS, LightNASConfig
from repro.experiments.reporting import results_dir
from repro.experiments.shared import full_context
from repro.search_space.space import Architecture

TABLE2_TARGETS = (20.0, 22.0, 24.0, 26.0, 28.0, 30.0)
SEARCH_SEED = 1


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=1,
        help="fan the multi-run benchmark loops (Fig. 3 λ grid, Fig. 7 "
             "seed grid) across N forked worker processes; recorded "
             "results are bit-identical to --jobs 1")


@pytest.fixture(scope="session")
def jobs(request):
    """Worker count for RunFleet-backed benchmark loops (default 1)."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session")
def ctx():
    return full_context()


@pytest.fixture(scope="session")
def lightnets(ctx):
    """One searched architecture per Table-2 latency target (disk-cached)."""
    cache_file = os.path.join(results_dir(), "cache",
                              f"lightnets_seed{SEARCH_SEED}.json")
    if os.path.exists(cache_file):
        with open(cache_file) as handle:
            payload = json.load(handle)
        return {float(k): Architecture(tuple(v)) for k, v in payload.items()}

    searched = {}
    for target in TABLE2_TARGETS:
        config = LightNASConfig.paper(target, space=ctx.space, seed=SEARCH_SEED)
        result = LightNAS(config, predictor=ctx.latency_predictor).search()
        searched[target] = result.architecture
    os.makedirs(os.path.dirname(cache_file), exist_ok=True)
    with open(cache_file, "w") as handle:
        json.dump({str(k): list(v.op_indices) for k, v in searched.items()},
                  handle)
    return searched


def emit(name: str, text: str) -> None:
    """Print a benchmark table and persist it under benchmarks/results/."""
    print("\n" + text)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
