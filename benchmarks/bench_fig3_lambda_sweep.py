"""Figure 3 — the manual λ sweep that motivates LightNAS.

Runs the FBNet engine (fixed-coefficient latency penalty, Eq. 3) over a grid
of λ values and reports, per λ: the searched architecture's measured latency
and its quick-evaluation (50-epoch) accuracy.  The paper's observations to
reproduce:

* λ controls the accuracy/latency trade-off monotonically (noise aside);
* hitting a *specific* latency requires trial-and-error over λ —
  neighbouring targets need λ values close together on a log scale;
* beyond a threshold, the search collapses toward all-SkipConnect.

The timed kernel is one FBNet relaxation + objective evaluation step.
"""

import numpy as np

from conftest import emit
from repro.baselines.gradient import FBNetSearch, GradientNASConfig
from repro.experiments.reporting import render_table, save_json
from repro.runtime.parallel import FleetTask, RunFleet

LAMBDA_GRID = (0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.3, 1.0)


def _lambda_task(ctx, lam: float) -> FleetTask:
    # the fitted predictor and cost tables live in ctx, captured pre-fork;
    # the worker sends back only one small row dict
    def fn(task_ctx):
        config = GradientNASConfig(space=ctx.space, epochs=30,
                                   steps_per_epoch=20, latency_lambda=lam,
                                   seed=0)
        result = FBNetSearch(config, ctx.oracle,
                             ctx.latency_predictor).search()
        return {
            "latency": ctx.latency_model.latency_ms(result.architecture),
            "top1": ctx.oracle.evaluate(result.architecture, epochs=50).top1,
            "depth": result.architecture.depth(ctx.space.skip_index),
        }

    return FleetTask(name=f"lambda_{lam:g}", fn=fn, header={"lambda": lam})


def test_fig3_fbnet_lambda_sweep(ctx, jobs, benchmark):
    fleet = RunFleet(jobs=jobs, seed=0)
    values = fleet.run([_lambda_task(ctx, lam)
                        for lam in LAMBDA_GRID]).values()
    rows = []
    latencies = []
    depths = []
    for lam, value in zip(LAMBDA_GRID, values):
        latencies.append(value["latency"])
        depths.append(value["depth"])
        rows.append([f"{lam:g}", value["latency"], value["top1"],
                     value["depth"]])

    emit("fig3_lambda_sweep", render_table(
        ["λ (fixed)", "latency ms", "top-1 % (50 ep)", "depth (non-skip)"],
        rows,
        title="Figure 3 — FBNet search results under different fixed λ"))
    save_json("fig3_lambda_sweep", {
        "lambda": list(LAMBDA_GRID), "latency_ms": latencies,
        "depth": depths,
    })

    # latency decreases (weakly) as λ grows across the grid
    assert latencies[0] > latencies[-1]
    corr = np.corrcoef(np.log10(np.array(LAMBDA_GRID[1:])),
                       np.array(latencies[1:]))[0, 1]
    assert corr < -0.7
    # large λ collapses the network toward SkipConnect
    assert depths[-1] < depths[0]
    assert depths[-1] <= ctx.space.num_layers - 5

    # timed kernel: one relaxation + penalised loss evaluation
    engine = FBNetSearch(
        GradientNASConfig(space=ctx.space, latency_lambda=0.01, seed=0),
        ctx.oracle, ctx.latency_predictor)
    from repro import nn

    alpha = nn.Tensor(ctx.space.uniform_alpha())

    def step():
        weights = engine.relax(alpha, 0)
        loss = engine.oracle.differentiable_loss(weights)
        return float((loss + engine._latency_tensor(weights) * 0.01).data)

    benchmark(step)
