"""Ablation — single-path STE vs multi-path relaxation (§3.3).

Quantifies the two §3.3 claims on a real supernet (tiny geometry, real
tensors):

* **memory**: multi-path executes K× the operator instances per forward
  (the "memory bottleneck" of DARTS/SNAS/FBNet);
* **compute**: the wall-clock of a multi-path forward is several times a
  single-path forward — this is what lets LightNAS use larger batches.

The timed kernel is the single-path supernet forward.
"""

import time

import numpy as np

from conftest import emit
from repro import nn
from repro.experiments.reporting import render_table, save_json
from repro.proxy.supernet import SuperNet
from repro.search_space.macro import MacroConfig
from repro.search_space.space import SearchSpace


def test_ablation_single_vs_multi_path(benchmark):
    space = SearchSpace(MacroConfig.tiny(num_searchable_layers=6))
    supernet = SuperNet(space, np.random.default_rng(0))
    r = space.macro.input_resolution
    x = nn.Tensor(np.random.default_rng(1).normal(size=(8, 3, r, r)))
    arch = space.sample(np.random.default_rng(2))
    gates = nn.Tensor(arch.one_hot(space.num_operators))
    uniform = nn.Tensor(np.full((space.num_layers, space.num_operators),
                                1.0 / space.num_operators))

    def timed(fn, *args, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    single_time = timed(supernet.forward_single_path, x, gates)
    single_paths = supernet.last_active_paths
    multi_time = timed(supernet.forward_weighted, x, uniform)
    multi_paths = supernet.last_active_paths

    rows = [
        ["single-path (LightNAS)", single_paths, single_time * 1e3, 1.0],
        ["multi-path (DARTS/FBNet)", multi_paths, multi_time * 1e3,
         multi_time / single_time],
    ]
    emit("ablation_singlepath", render_table(
        ["execution mode", "active operators", "forward ms", "relative cost"],
        rows, title="Ablation — single-path vs multi-path supernet forward"))
    save_json("ablation_singlepath", {
        "single_paths": single_paths, "multi_paths": multi_paths,
        "single_ms": single_time * 1e3, "multi_ms": multi_time * 1e3,
    })

    assert multi_paths == space.num_operators * single_paths
    assert multi_time > 2.5 * single_time  # K=7 paths ⇒ ≫ 1× compute/memory

    benchmark(supernet.forward_single_path, x, gates)
