"""Performance baseline for the nn engine's conv kernels (BENCH_nn.json).

Micro-benchmarks the three conv2d regimes — depthwise, pointwise 1×1 and
the dense generic path — forward+backward, with the specialized kernels on
(``ops.fast_kernels(True)``) versus everything forced through the generic
im2col engine.  A macro benchmark then times a seeded tiny-supernet
training epoch (the bi-level search's dominant cost) under generic vs fast
kernels and under float64 vs float32 compute, so the headline number is
end-to-end epoch time, not a kernel in isolation.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_nn_engine.py
    PYTHONPATH=src python benchmarks/bench_nn_engine.py --steps 4 --repeat 2

``--check`` additionally asserts the acceptance thresholds: >= 3x on the
depthwise fwd+bwd micro-benchmark and a measurable (> 1x) reduction in
seeded supernet epoch time.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import nn
from repro.nn import Tensor, ops
from repro.nn import functional as F
from repro.proxy.dataset import SyntheticTask
from repro.proxy.supernet import SuperNet
from repro.search_space.macro import MacroConfig
from repro.search_space.space import SearchSpace


def _best_of(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Micro: one conv2d forward+backward per regime
# ----------------------------------------------------------------------

MICRO_CASES = {
    # name: (n, c_in, c_out, h, k, stride, groups) — sized like the hot
    # layers of the tiny supernet's expanded mbconv blocks
    "depthwise_k3_s1": (16, 48, 48, 16, 3, 1, 48),
    "depthwise_k5_s2": (16, 72, 72, 8, 5, 2, 72),
    "pointwise_1x1": (16, 48, 96, 16, 1, 1, 1),
    "generic_k3_s1": (16, 16, 32, 16, 3, 1, 1),
}


def _conv_fwd_bwd(x, w, stride, padding, groups, fast):
    with ops.fast_kernels(fast):
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        out = ops.conv2d(xt, wt, stride=stride, padding=padding,
                         groups=groups)
        out.sum().backward()
    return out.data, xt.grad, wt.grad


def bench_micro(repeat: int) -> dict:
    rng = np.random.default_rng(0)
    results = {}
    for name, (n, c_in, c_out, h, k, stride, groups) in MICRO_CASES.items():
        x = rng.normal(size=(n, c_in, h, h))
        w = rng.normal(size=(c_out, c_in // groups, k, k))
        padding = k // 2

        fast = _conv_fwd_bwd(x, w, stride, padding, groups, fast=True)
        slow = _conv_fwd_bwd(x, w, stride, padding, groups, fast=False)
        for f, s in zip(fast, slow):
            assert np.allclose(f, s, rtol=1e-10, atol=1e-12), \
                f"{name}: fast kernel diverged from the generic path"

        generic_s = _best_of(
            lambda: _conv_fwd_bwd(x, w, stride, padding, groups, False),
            repeat)
        fast_s = _best_of(
            lambda: _conv_fwd_bwd(x, w, stride, padding, groups, True),
            repeat)
        results[name] = {
            "shape": f"n{n} c{c_in}->{c_out} h{h} k{k} s{stride} g{groups}",
            "generic_ms": round(generic_s * 1e3, 3),
            "fast_ms": round(fast_s * 1e3, 3),
            "speedup": round(generic_s / fast_s, 2),
        }
    return results


# ----------------------------------------------------------------------
# Macro: one seeded supernet training epoch (the search's dominant cost)
# ----------------------------------------------------------------------

def supernet_epoch(steps: int, batch_size: int, fast: bool,
                   dtype: str) -> float:
    """Wall time of ``steps`` single-path train steps on the tiny supernet."""
    space = SearchSpace(MacroConfig.tiny())
    with nn.dtype_scope(dtype):
        net = SuperNet(space, np.random.default_rng(0))
        optimizer = nn.SGD(net.parameters(), lr=0.05, momentum=0.9)
        task = SyntheticTask(resolution=space.macro.input_resolution,
                             train_size=128, valid_size=64, seed=0)
        rng = np.random.default_rng(7)
        batches = list(task.batches(task.train, batch_size))
        with ops.fast_kernels(fast):
            start = time.perf_counter()
            for step in range(steps):
                batch = batches[step % len(batches)]
                arch = space.sample(rng)
                gates = Tensor(arch.one_hot(space.num_operators))
                logits = net.forward_single_path(Tensor(batch.images), gates)
                loss = F.cross_entropy(logits, batch.labels)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            return time.perf_counter() - start


def bench_macro(steps: int, batch_size: int) -> dict:
    generic_64 = supernet_epoch(steps, batch_size, fast=False, dtype="float64")
    fast_64 = supernet_epoch(steps, batch_size, fast=True, dtype="float64")
    fast_32 = supernet_epoch(steps, batch_size, fast=True, dtype="float32")
    return {
        "steps": steps,
        "batch_size": batch_size,
        "generic_float64_s": round(generic_64, 4),
        "fast_float64_s": round(fast_64, 4),
        "fast_float32_s": round(fast_32, 4),
        "fast_kernel_speedup": round(generic_64 / fast_64, 2),
        "float32_extra_speedup": round(fast_64 / fast_32, 2),
        "total_speedup": round(generic_64 / fast_32, 2),
    }


def run(steps: int, batch_size: int, repeat: int, check: bool) -> dict:
    results = {
        "micro_conv_fwd_bwd": bench_micro(repeat),
        "macro_supernet_epoch": bench_macro(steps, batch_size),
    }
    if check:
        # best depthwise case: the generic path's absolute time is bimodal
        # (BLAS dispatch), so individual shapes fluctuate run to run
        dw = max(info["speedup"]
                 for name, info in results["micro_conv_fwd_bwd"].items()
                 if name.startswith("depthwise"))
        epoch = results["macro_supernet_epoch"]["fast_kernel_speedup"]
        assert dw >= 3.0, f"depthwise fwd+bwd speedup {dw:.2f}x < 3x"
        assert epoch > 1.0, \
            f"supernet epoch not faster with fast kernels ({epoch:.2f}x)"
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=16,
                        help="train steps per macro epoch measurement")
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of repeats for the micro benchmarks")
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance speedup thresholds")
    args = parser.parse_args()

    results = run(args.steps, args.batch_size, args.repeat, args.check)

    from repro.experiments.reporting import render_table, save_json

    rows = [
        [name, info["shape"], info["generic_ms"], info["fast_ms"],
         f"x{info['speedup']:.2f}"]
        for name, info in results["micro_conv_fwd_bwd"].items()
    ]
    print(render_table(
        ["conv regime", "shape", "generic (ms)", "fast (ms)", "speedup"],
        rows, title="conv2d forward+backward — generic im2col vs fast kernels"))
    macro = results["macro_supernet_epoch"]
    print(render_table(
        ["engine", "epoch (s)", "vs generic float64"],
        [["generic float64", macro["generic_float64_s"], "x1.00"],
         ["fast float64", macro["fast_float64_s"],
          f"x{macro['fast_kernel_speedup']:.2f}"],
         ["fast float32", macro["fast_float32_s"],
          f"x{macro['total_speedup']:.2f}"]],
        title=f"tiny supernet train epoch ({macro['steps']} steps, "
              f"batch {macro['batch_size']})"))
    path = save_json("BENCH_nn", results)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
