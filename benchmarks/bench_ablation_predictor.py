"""Ablation — latency-predictor accuracy vs campaign size and capacity.

§3.2 fixes the recipe at 10,000 samples and a 128-64-1 MLP.  This ablation
sweeps the campaign size (500 → 8,000) and the hidden widths, reporting
held-out RMSE and rank correlation.  Data dominates: RMSE drops steeply
with campaign size (with diminishing returns).  Capacity does not: the
latency function over one-hot encodings is compact enough that every width
variant ranks architectures nearly perfectly, and at a fixed training
budget *smaller* MLPs can even fit tighter — evidence the paper's 128-64-1
choice is generous rather than binding.

The timed kernel is one epoch of predictor training on a small campaign.
"""

import numpy as np

from conftest import emit
from repro.experiments.reporting import render_table, save_json
from repro.predictor.dataset import collect_latency_dataset
from repro.predictor.metrics import kendall_tau
from repro.predictor.mlp import MLPPredictor

CAMPAIGN_SIZES = (500, 2000, 8000)
HIDDEN_VARIANTS = ((32, 16), (128, 64), (256, 128))


def test_ablation_predictor_scaling(ctx, benchmark):
    rng = np.random.default_rng(77)
    full = collect_latency_dataset(ctx.latency_model, max(CAMPAIGN_SIZES) + 2000,
                                   rng)
    holdout_features = full.features[-2000:]
    holdout_targets = full.targets[-2000:]

    def evaluate(predictor):
        pred = predictor.predict(holdout_features)
        rmse = float(np.sqrt(np.mean((pred - holdout_targets) ** 2)))
        tau = kendall_tau(pred, holdout_targets)
        return rmse, tau

    rows = []
    size_rmses = []
    for size in CAMPAIGN_SIZES:
        subset = type(full)(features=full.features[:size],
                            targets=full.targets[:size],
                            archs=full.archs[:size])
        predictor = MLPPredictor(ctx.space, seed=0)
        predictor.fit(subset, epochs=200, batch_size=256, lr=3e-3,
                      weight_decay=0.0)
        rmse, tau = evaluate(predictor)
        size_rmses.append(rmse)
        rows.append([f"{size} samples", "(128, 64)", rmse, tau])

    hidden_rmses = []
    for hidden in HIDDEN_VARIANTS:
        subset = type(full)(features=full.features[:4000],
                            targets=full.targets[:4000],
                            archs=full.archs[:4000])
        predictor = MLPPredictor(ctx.space, hidden=hidden, seed=0)
        predictor.fit(subset, epochs=200, batch_size=256, lr=3e-3,
                      weight_decay=0.0)
        rmse, tau = evaluate(predictor)
        hidden_rmses.append(rmse)
        rows.append(["4000 samples", str(hidden), rmse, tau])

    emit("ablation_predictor", render_table(
        ["campaign", "hidden widths", "RMSE ms", "Kendall τ"],
        rows, title="Ablation — predictor accuracy vs data and capacity"))
    save_json("ablation_predictor", {
        "campaign_sizes": list(CAMPAIGN_SIZES), "size_rmses": size_rmses,
        "hidden_variants": [str(h) for h in HIDDEN_VARIANTS],
        "hidden_rmses": hidden_rmses,
    })

    # more data monotonically helps, with diminishing returns
    assert size_rmses[0] > size_rmses[1] > size_rmses[2]
    assert (size_rmses[0] - size_rmses[1]) > (size_rmses[1] - size_rmses[2])
    # capacity is not the bottleneck: every width variant is search-grade
    # (sub-0.7 ms RMSE at 4k samples, far below the 11+ ms LUT error), and
    # width does not buy accuracy the way data does
    assert max(hidden_rmses) < 0.7
    assert min(hidden_rmses) < 0.2
    assert max(hidden_rmses) - min(hidden_rmses) < size_rmses[0] - size_rmses[2]

    small = type(full)(features=full.features[:500], targets=full.targets[:500],
                       archs=full.archs[:500])
    predictor = MLPPredictor(ctx.space, seed=1)
    benchmark.pedantic(
        lambda: predictor.fit(small, epochs=1, batch_size=256, lr=1e-3),
        rounds=3, iterations=1)
