"""Performance baseline for the population-scale hot paths (BENCH_perf.json).

Times the three operations every large experiment funnels through —

* population latency evaluation (`LatencyModel.latency_many`),
* the predictor measurement-campaign collection (`collect_latency_dataset`),
* batched `MLPPredictor.predict` scoring,

— against faithful reimplementations of the pre-cost-table scalar loops
(per-architecture Python iteration, per-call roofline re-derivation).  The
results are persisted as ``benchmarks/results/BENCH_perf.json`` so future
PRs have a perf trajectory to regress against.

Run standalone (no fitted campaign predictor needed)::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py
    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py --pop-n 200 \
        --campaign-n 100 --predict-n 200        # CI smoke

``--check`` additionally asserts the acceptance thresholds (>= 50x on
population latency eval, >= 5x on campaign collection); only meaningful at
the default population sizes.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.hardware.latency import LatencyModel
from repro.predictor.dataset import PredictorDataset, collect_latency_dataset
from repro.predictor.mlp import MLPPredictor
from repro.search_space.space import Architecture, SearchSpace


def _best_of(fn, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Pre-PR scalar reference implementations (per-architecture Python loops,
# rooflines re-derived on every call — the historical hot path).
# ----------------------------------------------------------------------
def scalar_latency_ms(model: LatencyModel, arch: Architecture) -> float:
    total = model._fixed_ms + model.device.network_overhead_ms
    for geom, op_index in zip(model._geoms, arch.op_indices):
        total += model.op_latency_ms(model.space.operators[op_index], geom)
    total -= model.device.fusion_saving_ms * model._fusion_pairs(arch)
    return max(total, 0.1)


def scalar_measure(model: LatencyModel, arch: Architecture,
                   rng: np.random.Generator) -> float:
    true = scalar_latency_ms(model, arch)
    noise = rng.normal(0.0, model.device.latency_noise_ms)
    noise += true * rng.normal(0.0, model.device.latency_noise_rel)
    return max(true + noise, 0.01)


def scalar_campaign(model: LatencyModel, count: int,
                    rng: np.random.Generator) -> PredictorDataset:
    space = model.space
    archs = [space.sample(rng) for _ in range(count)]
    targets = np.array([scalar_measure(model, a, rng) for a in archs])
    features = np.stack(
        [a.one_hot(space.num_operators).reshape(-1) for a in archs])
    return PredictorDataset(features, targets, archs)


# ----------------------------------------------------------------------
def bench_population_latency(model: LatencyModel, count: int) -> dict:
    space = model.space
    ops = space.sample_indices(count, np.random.default_rng(0))
    archs = space.indices_to_archs(ops)

    scalar_s = _best_of(
        lambda: [scalar_latency_ms(model, a) for a in archs], repeat=1)
    vector_s = _best_of(lambda: model.latency_many(ops))

    scalar_out = np.array([scalar_latency_ms(model, a) for a in archs])
    assert np.array_equal(scalar_out, model.latency_many(ops)), \
        "vectorized population latency diverged from the scalar path"

    return {
        "num_archs": count,
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vector_s,
        "scalar_archs_per_sec": count / scalar_s,
        "vectorized_archs_per_sec": count / vector_s,
        "speedup": scalar_s / vector_s,
    }


def bench_campaign_collection(model: LatencyModel, count: int) -> dict:
    scalar_s = _best_of(
        lambda: scalar_campaign(model, count, np.random.default_rng(42)),
        repeat=1)
    vector_s = _best_of(
        lambda: collect_latency_dataset(model, count, np.random.default_rng(42)))

    old = scalar_campaign(model, count, np.random.default_rng(42))
    new = collect_latency_dataset(model, count, np.random.default_rng(42))
    assert np.array_equal(old.targets, new.targets), \
        "vectorized campaign changed seeded measurement targets"

    return {
        "num_archs": count,
        "scalar_wall_seconds": scalar_s,
        "vectorized_wall_seconds": vector_s,
        "speedup": scalar_s / vector_s,
    }


def bench_predictor_predict(space: SearchSpace, count: int) -> dict:
    # Throughput does not depend on fit quality, so an initialised (unfitted)
    # predictor measures the same GEMM path without a campaign.
    predictor = MLPPredictor(space, seed=0)
    predictor._refresh_fast_weights()
    ops = space.sample_indices(count, np.random.default_rng(1))
    archs = space.indices_to_archs(ops)
    features = space.encode_many(ops)

    scalar_s = _best_of(
        lambda: [predictor.predict_arch(a) for a in archs], repeat=1)
    batched_s = _best_of(lambda: predictor.predict(features))
    end_to_end_s = _best_of(lambda: predictor.predict_population(ops))

    return {
        "num_archs": count,
        "per_arch_seconds": scalar_s,
        "batched_seconds": batched_s,
        "encode_plus_batched_seconds": end_to_end_s,
        "per_arch_archs_per_sec": count / scalar_s,
        "batched_archs_per_sec": count / batched_s,
        "speedup": scalar_s / batched_s,
    }


def run(pop_n: int, campaign_n: int, predict_n: int, check: bool) -> dict:
    space = SearchSpace()
    model = LatencyModel(space)

    results = {
        "population_latency_eval": bench_population_latency(model, pop_n),
        "campaign_collection": bench_campaign_collection(model, campaign_n),
        "predictor_predict": bench_predictor_predict(space, predict_n),
    }

    if check:
        pop = results["population_latency_eval"]["speedup"]
        camp = results["campaign_collection"]["speedup"]
        assert pop >= 50.0, f"population latency speedup {pop:.1f}x < 50x"
        assert camp >= 5.0, f"campaign collection speedup {camp:.1f}x < 5x"

    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pop-n", type=int, default=10_000,
                        help="architectures in the population-latency benchmark")
    parser.add_argument("--campaign-n", type=int, default=10_000,
                        help="architectures in the campaign-collection benchmark")
    parser.add_argument("--predict-n", type=int, default=10_000,
                        help="architectures in the predictor-throughput benchmark")
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance speedup thresholds")
    args = parser.parse_args()

    results = run(args.pop_n, args.campaign_n, args.predict_n, args.check)

    from repro.experiments.reporting import render_table, save_json

    rows = [
        ["population latency eval",
         results["population_latency_eval"]["num_archs"],
         f"{results['population_latency_eval']['scalar_seconds']:.3f}",
         f"{results['population_latency_eval']['vectorized_seconds']:.4f}",
         f"x{results['population_latency_eval']['speedup']:.0f}"],
        ["campaign collection",
         results["campaign_collection"]["num_archs"],
         f"{results['campaign_collection']['scalar_wall_seconds']:.3f}",
         f"{results['campaign_collection']['vectorized_wall_seconds']:.4f}",
         f"x{results['campaign_collection']['speedup']:.0f}"],
        ["MLPPredictor.predict",
         results["predictor_predict"]["num_archs"],
         f"{results['predictor_predict']['per_arch_seconds']:.3f}",
         f"{results['predictor_predict']['batched_seconds']:.4f}",
         f"x{results['predictor_predict']['speedup']:.0f}"],
    ]
    print(render_table(
        ["hot path", "N", "scalar (s)", "vectorized (s)", "speedup"], rows,
        title="Population-scale hot paths — scalar loop vs batch APIs"))
    path = save_json("BENCH_perf", results)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
