"""Device-fleet benchmark: proxy transfer vs per-device MLP campaigns.

The fleet subsystem's claim ("One Proxy Device Is Enough", PAPERS.md) is
that retargeting the search to a new device needs a ~100-pair monotone
calibration map, not the paper's fresh multi-thousand-measurement campaign
+ MLP per device.  This benchmark quantifies that claim on a generated
N-device fleet (all four families):

* **calibration sweep** — transfer accuracy (RMSE + Kendall-τ vs the
  target device's noise-free roofline truth) as the calibration set grows;
* **per-device MLP baseline** — for a subset of devices, a full
  campaign-protocol MLP (thousands of measured pairs) fit from scratch,
  timed, and scored on the same held-out evaluation set;
* **retarget throughput** — one archive sweep fanned out to every device.

``--check`` asserts the acceptance gates:

1. the fleet has >= 10 devices and every device gets a constraint report,
2. transfer Kendall-τ is within 0.05 of the per-device MLP's τ on every
   compared device,
3. the calibration set is >= 50x smaller than the MLP campaign,
4. the transfer map preserves the proxy predictor's ranking exactly
   (τ_transfer == τ_proxy, the strict-monotonicity contract).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --calibration 40 \
        --mlp-samples 2000 --mlp-devices 2 --eval 300 --check   # CI smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.experiments.shared import fit_latency_predictor
from repro.fleet import (
    ProxyTransfer,
    evaluate_transfer,
    generate_fleet,
    retarget_index,
)
from repro.hardware.latency import LatencyModel
from repro.predictor.dataset import collect_latency_dataset
from repro.predictor.metrics import kendall_tau, rmse
from repro.predictor.mlp import MLPPredictor
from repro.search_space.space import SearchSpace

_FAMILIES = ("phone", "mcu", "server-cpu", "edge-gpu")


def build_fleet(per_family: int):
    fleet = []
    for family in _FAMILIES:
        fleet.extend(generate_fleet(family, per_family))
    return fleet


def fit_device_mlp(space, device, num_samples: int, epochs: int,
                   seed: int = 7):
    """The retargeting cost the transfer maps avoid: a fresh measurement
    campaign + MLP fit on ONE target device (campaign protocol at reduced
    size — enough to reach its asymptotic rank accuracy regime)."""
    rng = np.random.default_rng([seed, 3])
    model = LatencyModel(space, device)
    start = time.perf_counter()
    data = collect_latency_dataset(model, num_samples, rng)
    train, _ = data.split(0.9, rng)
    predictor = MLPPredictor(space, seed=seed)
    predictor.fit(train, epochs=epochs, batch_size=512, lr=3e-3,
                  weight_decay=0.0)
    return predictor, time.perf_counter() - start


def run(args) -> dict:
    space = SearchSpace()
    fleet = build_fleet(args.per_family)
    proxy_model = LatencyModel(space)
    proxy = proxy_model.device

    start = time.perf_counter()
    predictor, proxy_rmse = fit_latency_predictor(space, proxy_model)
    proxy_seconds = time.perf_counter() - start

    # --- calibration-size sweep -------------------------------------
    sweep = []
    sizes = sorted(set([max(10, args.calibration // 4),
                        max(20, args.calibration // 2), args.calibration]))
    for size in sizes:
        start = time.perf_counter()
        transfer = ProxyTransfer.calibrate(
            predictor, space, fleet, num_samples=size, seed=0,
            proxy_device=proxy.name)
        calibrate_s = time.perf_counter() - start
        rows = evaluate_transfer(transfer, predictor, space, fleet,
                                 num_eval=args.eval)
        sweep.append({
            "calibration_size": size,
            "calibrate_wall_seconds": calibrate_s,
            "kendall_tau_min": min(r["kendall_tau"] for r in rows),
            "kendall_tau_mean": float(np.mean([r["kendall_tau"]
                                               for r in rows])),
            "devices": rows,
        })
    final = sweep[-1]
    transfer = ProxyTransfer.calibrate(
        predictor, space, fleet, num_samples=args.calibration, seed=0,
        proxy_device=proxy.name)

    # --- per-device MLP baseline ------------------------------------
    # one comparison device per family, round-robin, to bound wall time
    compared = [fleet[i * args.per_family % len(fleet)]
                for i in range(min(args.mlp_devices, len(fleet)))]
    eval_rng = np.random.default_rng([1234, 2])
    eval_ops = space.sample_indices(args.eval, eval_rng)
    proxy_values = predictor.predict_population(eval_ops)
    comparisons = []
    for device in compared:
        truth = LatencyModel(space, device).latency_many(eval_ops)
        mlp, mlp_seconds = fit_device_mlp(space, device, args.mlp_samples,
                                          args.mlp_epochs)
        mlp_values = mlp.predict_population(eval_ops)
        transferred = transfer.transfer_many(device.name, proxy_values)
        comparisons.append({
            "device": device.name,
            "transfer_kendall_tau": kendall_tau(transferred, truth),
            "transfer_rmse_ms": rmse(transferred, truth),
            "proxy_kendall_tau": kendall_tau(proxy_values, truth),
            "mlp_kendall_tau": kendall_tau(mlp_values, truth),
            "mlp_rmse_ms": rmse(mlp_values, truth),
            "mlp_wall_seconds": mlp_seconds,
            "mlp_samples": args.mlp_samples,
            "calibration_samples": args.calibration,
            "data_ratio": args.mlp_samples / args.calibration,
        })

    # --- retarget throughput ----------------------------------------
    class _Index:
        """Archive-shaped view of a sampled population (ops/score/keys)."""
        def __init__(self, ops, score):
            self.ops, self.score = ops, score
            self.keys = [",".join(map(str, row)) for row in ops.tolist()]

        def __len__(self):
            return len(self.ops)

    sweep_rng = np.random.default_rng(99)
    archive_ops = space.sample_indices(args.archive_size, sweep_rng)
    index = _Index(archive_ops,
                   sweep_rng.uniform(60, 76, size=len(archive_ops)))
    start = time.perf_counter()
    report = retarget_index(index, transfer, predictor,
                            target_ms=args.target)
    retarget_s = time.perf_counter() - start

    results = {
        "proxy_device": proxy.name,
        "proxy_predictor_rmse_ms": proxy_rmse,
        "proxy_predictor_wall_seconds": proxy_seconds,
        "num_devices": len(fleet),
        "calibration_sweep": sweep,
        "transfer_kendall_tau_min": final["kendall_tau_min"],
        "transfer_kendall_tau_mean": final["kendall_tau_mean"],
        "mlp_comparison": comparisons,
        "retarget": {
            "archive_size": len(index),
            "num_devices": report["num_devices"],
            "target_ms": report["target_ms"],
            "wall_seconds": retarget_s,
            "device_evals_per_second":
                len(index) * report["num_devices"] / max(retarget_s, 1e-9),
            "satisfied_frac_by_device": {
                r["device"]: r["satisfied_frac"]
                for r in report["devices"]},
        },
    }

    if args.check:
        assert len(fleet) >= 10, \
            f"fleet has {len(fleet)} devices, need >= 10"
        assert report["num_devices"] == len(fleet)
        assert all("satisfied_frac" in r and "pareto_size" in r
                   for r in report["devices"]), \
            "missing per-device constraint/Pareto reports"
        for row in final["devices"]:
            assert abs(row["kendall_tau"] - row["proxy_kendall_tau"]) \
                < 1e-12, (
                f"{row['device']}: transfer map degraded the proxy ranking "
                f"({row['kendall_tau']} != {row['proxy_kendall_tau']})")
        for comp in comparisons:
            assert comp["data_ratio"] >= 50, (
                f"{comp['device']}: calibration uses only "
                f"{comp['data_ratio']:.0f}x less data, need >= 50x")
            gap = comp["mlp_kendall_tau"] - comp["transfer_kendall_tau"]
            assert gap <= 0.05, (
                f"{comp['device']}: transfer tau "
                f"{comp['transfer_kendall_tau']:.3f} trails the per-device "
                f"MLP ({comp['mlp_kendall_tau']:.3f}) by {gap:.3f} > 0.05")
        results["checks_passed"] = True

    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--per-family", type=int, default=3,
                        help="fleet members per family (4 families)")
    parser.add_argument("--calibration", type=int, default=100,
                        help="calibration pairs per device")
    parser.add_argument("--eval", type=int, default=500,
                        help="held-out evaluation architectures")
    parser.add_argument("--mlp-devices", type=int, default=4,
                        help="devices given a full per-device MLP baseline")
    parser.add_argument("--mlp-samples", type=int, default=5000,
                        help="measurement campaign size per baseline MLP")
    parser.add_argument("--mlp-epochs", type=int, default=150,
                        help="baseline MLP training epochs")
    parser.add_argument("--archive-size", type=int, default=2000,
                        help="archive sweep size for retarget throughput")
    parser.add_argument("--target", type=float, default=25.0,
                        help="per-device latency budget (ms)")
    parser.add_argument("--check", action="store_true",
                        help="assert the fleet acceptance gates")
    args = parser.parse_args()

    results = run(args)

    from repro.experiments.reporting import render_table, save_json

    rows = [[c["device"], f"{c['transfer_kendall_tau']:.3f}",
             f"{c['mlp_kendall_tau']:.3f}",
             f"{c['data_ratio']:.0f}x", f"{c['mlp_wall_seconds']:.1f}"]
            for c in results["mlp_comparison"]]
    print(render_table(
        ["device", "transfer τ", "per-device MLP τ", "less data",
         "MLP fit (s)"],
        rows,
        title=f"proxy transfer ({results['mlp_comparison'][0]['calibration_samples']} pairs) "
              f"vs per-device campaigns — "
              f"{results['num_devices']} devices, "
              f"fleet τ min {results['transfer_kendall_tau_min']:.3f}"))
    throughput = results["retarget"]
    print(f"\nretarget sweep: {throughput['archive_size']} archs x "
          f"{throughput['num_devices']} devices in "
          f"{throughput['wall_seconds']:.2f}s "
          f"({throughput['device_evals_per_second']:.0f} device-evals/s)")
    path = save_json("BENCH_fleet", results)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
