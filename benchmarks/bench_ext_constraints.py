"""Extension — constraint generality beyond the paper's experiments.

The paper closes §3.5 claiming LightNAS "can be effortlessly plugged into
various scenarios, in which we only need to replace the latency predictor
with the predictor of the target scenario".  This bench exercises that claim
past Figure 8's energy swap:

* a **MACs-constrained** search using the exact analytic predictor (the
  mobile setting's "multi-adds under 600M" as a first-class constraint);
* a **joint latency + MACs** search with per-constraint inequality duals
  (the multi-constraint extension).

The timed kernel is one analytic-predictor inference (exact and cheap).
"""

import numpy as np

from conftest import emit
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.core.multi_objective import (
    Constraint,
    MultiConstraintConfig,
    MultiConstraintLightNAS,
)
from repro.experiments.reporting import render_table, save_json
from repro.hardware.flops import count_macs
from repro.predictor.analytic import AnalyticCostPredictor

MACS_TARGETS = (350.0, 420.0, 480.0)
JOINT = (26.0, 420.0)  # latency ms, MACs M


def test_ext_constraint_generality(ctx, benchmark):
    macs_predictor = AnalyticCostPredictor(ctx.space, "macs_m")
    rows = []

    achieved = []
    for target in MACS_TARGETS:
        config = LightNASConfig.paper(target, space=ctx.space, seed=0,
                                      metric_name="macs_m")
        result = LightNAS(config, predictor=macs_predictor).search()
        macs = count_macs(ctx.space, result.architecture) / 1e6
        top1 = ctx.oracle.evaluate(result.architecture).top1
        achieved.append(macs)
        rows.append([f"MACs = {target:g} M", f"{macs:.1f} M MACs", top1,
                     ctx.latency_model.latency_ms(result.architecture)])

    joint_config = MultiConstraintConfig(
        space=ctx.space,
        constraints=[
            Constraint("latency_ms", ctx.latency_predictor, JOINT[0]),
            Constraint("macs_m", macs_predictor, JOINT[1]),
        ],
        epochs=70, steps_per_epoch=40, seed=0)
    joint_result, joint_metrics = MultiConstraintLightNAS(
        joint_config, ctx.oracle).search()
    joint_top1 = ctx.oracle.evaluate(joint_result.architecture).top1
    rows.append([
        f"latency ≤ {JOINT[0]:g} ms AND MACs ≤ {JOINT[1]:g} M",
        f"{joint_metrics['latency_ms']:.2f} ms / "
        f"{joint_metrics['macs_m']:.1f} M",
        joint_top1,
        ctx.latency_model.latency_ms(joint_result.architecture),
    ])

    emit("ext_constraints", render_table(
        ["constraint", "achieved", "top-1 %", "measured ms"],
        rows, title="Extension — constraint generality (exact MACs, joint budgets)"))
    save_json("ext_constraints", {
        "macs_targets": list(MACS_TARGETS), "macs_achieved": achieved,
        "joint": {"targets": list(JOINT), "metrics": joint_metrics,
                  "top1": joint_top1},
    })

    # MACs searches: exact predictor ⇒ tight convergence, monotone accuracy
    for target, macs in zip(MACS_TARGETS, achieved):
        assert abs(macs - target) / target < 0.06
    tops = [row[2] for row in rows[:3]]
    assert tops[-1] > tops[0]
    # joint search respects both ceilings and saturates at least one
    assert joint_metrics["latency_ms"] <= JOINT[0] * 1.02
    assert joint_metrics["macs_m"] <= JOINT[1] * 1.02
    slack = min(1 - joint_metrics["latency_ms"] / JOINT[0],
                1 - joint_metrics["macs_m"] / JOINT[1])
    assert slack < 0.08

    rng = np.random.default_rng(0)
    arch = ctx.space.sample(rng)
    benchmark(macs_predictor.predict_arch, arch)
