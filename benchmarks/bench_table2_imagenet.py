"""Table 2 — comparison with state-of-the-art architectures on ImageNet.

Regenerates the paper's headline table on the simulated substrate: cached
LightNets at 20–30 ms against every baseline family we implement —

* the manual MobileNetV2 reference,
* FBNet with a fixed-λ grid (the best architecture the grid produces near
  each latency tier — charged for the full sweep, §2.2),
* ProxylessNAS (two-path, fixed λ),
* OFA-style constrained evolution per target,
* MnasNet-style RL at the 24 ms tier,
* random search per target.

Shape assertions: LightNets satisfy their constraints, accuracy grows with
the budget, and at each tier the LightNet matches or beats every baseline
of comparable latency while paying an order of magnitude less total design
cost.

The timed kernel is one Table-2 row evaluation.
"""

import numpy as np

from conftest import emit
from repro.baselines.evolution import EvolutionConfig, EvolutionSearch
from repro.baselines.gradient import (FBNetSearch, GradientNASConfig,
                                      ProxylessSearch)
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.baselines.rl_search import RLSearch, RLSearchConfig
from repro.baselines.scaling import ScalingBaseline
from repro.eval import cost
from repro.eval.imagenet import ImageNetEvaluator
from repro.experiments.reporting import render_table, save_json

FBNET_LAMBDA_GRID = (0.004, 0.008, 0.015, 0.03)


def test_table2_imagenet_comparison(ctx, lightnets, benchmark):
    evaluator = ImageNetEvaluator(ctx.space, ctx.latency_model, ctx.oracle)
    rows = []

    def add(arch, name, method, gpu_hours):
        row = evaluator.evaluate(arch, name=name, method=method,
                                 search_cost_gpu_hours=round(gpu_hours, 1))
        rows.append(row)
        return row

    # Manual reference
    uniform = ScalingBaseline.UNIFORM_OP
    from repro.search_space.space import Architecture

    mnv2 = Architecture((uniform,) * ctx.space.num_layers)
    add(mnv2, "MobileNetV2", "manual", 0.0)

    # FBNet λ grid — charged for the whole sweep (implicit cost, §2.2)
    fbnet_rows = []
    fbnet_steps = 0
    for lam in FBNET_LAMBDA_GRID:
        config = GradientNASConfig(space=ctx.space, epochs=30,
                                   steps_per_epoch=20, latency_lambda=lam,
                                   seed=0)
        res = FBNetSearch(config, ctx.oracle, ctx.latency_predictor).search()
        fbnet_steps += res.num_search_steps
        fbnet_rows.append(res.architecture)
    fbnet_sweep_hours = cost.simulated_gpu_hours(
        "fbnet", fbnet_steps, 7 * ctx.space.num_layers)
    for i, arch in enumerate(fbnet_rows):
        add(arch, f"FBNet(λ={FBNET_LAMBDA_GRID[i]:g})", "differentiable",
            fbnet_sweep_hours)

    # ProxylessNAS, one fixed λ (two-path)
    proxyless = ProxylessSearch(
        GradientNASConfig(space=ctx.space, epochs=30, steps_per_epoch=20,
                          latency_lambda=0.01, seed=0),
        ctx.oracle, ctx.latency_predictor).search()
    add(proxyless.architecture, "ProxylessNAS", "differentiable",
        cost.simulated_gpu_hours("proxylessnas", proxyless.num_search_steps,
                                 proxyless.search_paths_per_step) * 10)

    # RL at the 24 ms tier (every sampled candidate is trained → huge cost)
    rl = RLSearch(RLSearchConfig(space=ctx.space, target=24.0, iterations=120,
                                 batch_archs=4, seed=0),
                  ctx.latency_model, ctx.oracle).search()
    add(rl.architecture, "MnasNet-RL-24ms", "reinforcement",
        cost.simulated_gpu_hours("mnasnet-rl", 0, 0,
                                 trained_samples=rl.num_search_steps))

    # Per-target: evolution, random, and our LightNets
    lightnet_hours = cost.simulated_gpu_hours("lightnas", 90 * 50,
                                              ctx.space.num_layers)
    per_target = {}
    for target, arch in sorted(lightnets.items()):
        evo = EvolutionSearch(
            EvolutionConfig(space=ctx.space, target=target, cycles=250,
                            seed=0),
            ctx.latency_predictor, ctx.oracle).search()
        evo_row = add(evo.architecture, f"OFA-Evo-{target:.0f}ms", "evolution",
                      cost.OFA_AMORTISED_GPU_HOURS)
        rand = RandomSearch(
            RandomSearchConfig(space=ctx.space, target=target,
                               num_samples=400, seed=0),
            ctx.latency_predictor, ctx.oracle).search()
        rand_row = add(rand.architecture, f"Random-{target:.0f}ms", "random",
                       cost.simulated_gpu_hours("random", 400, 1))
        light_row = add(arch, f"LightNet-{target:.0f}ms", "differentiable",
                        lightnet_hours)
        per_target[target] = (light_row, evo_row, rand_row)

    # Pareto summary: which methods define the accuracy/latency frontier?
    from repro.eval.pareto import FrontPoint, front_gap, pareto_front

    points = [FrontPoint(r.latency_ms, r.top1, r.name) for r in rows]
    front = pareto_front(points)
    front_names = {p.name for p in front}

    rows.sort(key=lambda r: r.latency_ms)
    table = render_table(
        ["architecture", "method", "top-1 %", "top-5 %", "latency ms",
         "MACs M", "GPU-h total"],
        [[r.name, r.method, r.top1, r.top5, r.latency_ms, r.macs_m,
          r.search_cost_gpu_hours] for r in rows],
        title="Table 2 — comparison on (simulated) ImageNet, batch-8 Xavier")
    table += "\nPareto frontier: " + ", ".join(sorted(front_names))
    emit("table2_imagenet", table)
    save_json("table2_imagenet", {"rows": [r.as_dict() for r in rows]})

    # --- shape assertions ------------------------------------------------
    light = {t: pt[0] for t, pt in per_target.items()}
    targets = sorted(light)
    # constraints satisfied
    for t in targets:
        assert abs(light[t].latency_ms - t) < 1.5
    # accuracy grows with the budget (monotone within jitter tolerance)
    tops = [light[t].top1 for t in targets]
    assert tops[-1] > tops[0]
    assert all(b >= a - 0.25 for a, b in zip(tops, tops[1:]))
    # beats the manual baseline by a clear margin at comparable latency
    mnv2_row = rows[[r.name for r in rows].index("MobileNetV2")]
    assert light[20.0].top1 > mnv2_row.top1
    # per tier: at least matches evolution and beats random search
    for t in targets:
        light_row, evo_row, rand_row = per_target[t]
        assert light_row.top1 > rand_row.top1 - 0.1
        assert light_row.top1 > evo_row.top1 - 0.4
    # LightNets sit on (or within 0.3 top-1 of) the overall Pareto frontier
    for t in targets:
        point = FrontPoint(per_target[t][0].latency_ms, per_target[t][0].top1,
                           per_target[t][0].name)
        assert front_gap(point, front) < 0.3, point
    # total design cost: clearly below every search baseline (the two-path
    # ProxylessNAS is the closest at ~2.7×; FBNet sweeps, evolution's
    # amortised supernet and RL's per-sample training are 4–240×)
    for r in rows:
        if r.method in ("differentiable", "evolution", "reinforcement") and \
                not r.name.startswith("LightNet"):
            assert r.search_cost_gpu_hours > 2 * lightnet_hours

    benchmark(evaluator.evaluate, light[24.0].name and lightnets[24.0],
              "LightNet-24ms")
