"""Figure 2 — FLOPs is an inaccurate proxy for latency and energy.

Regenerates the scatter of the paper's motivational figure on the simulated
Xavier: 1,000 random architectures, their multi-add counts, and measured
latency/energy — all three computed with the population-scale batch APIs
(one op-index matrix in, one metric vector out).

The timed kernel is the batched population latency evaluation itself — the
operation the figure's x-axis is built from.
"""

import numpy as np

from conftest import emit
from repro.experiments.reporting import render_table, save_json
from repro.hardware.flops import count_macs_many

NUM_ARCHS = 1000


def test_fig2_flops_vs_latency_and_energy(ctx, benchmark):
    rng = np.random.default_rng(2)
    ops = ctx.space.sample_indices(NUM_ARCHS, rng)

    latencies = ctx.latency_model.latency_many(ops)
    energies = ctx.energy_model.energy_many(ops)
    macs = count_macs_many(ctx.space, ops) / 1e6

    lat_corr = float(np.corrcoef(macs, latencies)[0, 1])
    en_corr = float(np.corrcoef(macs, energies)[0, 1])

    def spread_at_fixed(values, width):
        center = float(np.median(values))
        band = np.abs(values - center) < width
        return float(macs[band].max() / macs[band].min()), int(band.sum())

    lat_spread, lat_n = spread_at_fixed(latencies, 0.5)
    en_spread, en_n = spread_at_fixed(energies, 8.0)

    rows = [
        ["latency (ms)", f"{latencies.min():.1f}–{latencies.max():.1f}",
         lat_corr, f"×{lat_spread:.2f} over {lat_n} archs"],
        ["energy (mJ)", f"{energies.min():.0f}–{energies.max():.0f}",
         en_corr, f"×{en_spread:.2f} over {en_n} archs"],
    ]
    emit("fig2_flops_vs_latency", render_table(
        ["metric", "range", "corr w/ MACs", "MACs spread at fixed metric"],
        rows,
        title=f"Figure 2 — FLOPs vs measured metrics ({NUM_ARCHS} random archs, "
              f"MACs {macs.min():.0f}–{macs.max():.0f} M)"))
    save_json("fig2_flops_vs_latency", {
        "macs_m": macs.tolist(), "latency_ms": latencies.tolist(),
        "energy_mj": energies.tolist(),
        "corr_latency": lat_corr, "corr_energy": en_corr,
    })

    # Paper's claim: the proxy is informative but clearly imperfect, and
    # same-latency architectures differ widely in FLOPs.
    assert 0.4 < lat_corr < 0.95
    assert 0.4 < en_corr < 0.98
    assert lat_spread > 1.15

    benchmark(ctx.latency_model.latency_many, ops)
