"""Model zoo: reference architectures and weight serialisation.

``LIGHTNETS`` pins the LightNets searched by this reproduction's own
pipeline (full-space surrogate mode, seed 1, the cached 10k-campaign
predictor) — the architectures behind the Table-2/3/4 and Figure-6/9
benchmarks.  Pinning them here makes results citable and lets downstream
users evaluate or fine-tune the searched networks without re-running the
search.

Reference baselines (the uniform MobileNetV2 stack and the extreme corner
points) are defined alongside, and :func:`save_weights` /
:func:`load_weights` round-trip any :class:`repro.nn.Module` through an
``.npz`` file.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from . import nn
from .search_space.operators import SKIP_INDEX
from .search_space.space import Architecture, SearchSpace

__all__ = [
    "LIGHTNETS",
    "MOBILENET_V2",
    "SMALLEST",
    "LARGEST",
    "ALL_SKIP",
    "lightnet",
    "save_weights",
    "load_weights",
]

#: LightNets searched at each Table-2 latency target (ms → architecture).
#: Provenance: LightNAS surrogate mode, seed 1, paper hyper-parameters,
#: simulated Xavier MAXN batch 8; measured latencies 20.05 / 21.82 / 23.83 /
#: 26.30 / 28.35 / 29.99 ms.
LIGHTNETS: Dict[float, Architecture] = {
    20.0: Architecture((2, 0, 0, 0, 4, 4, 4, 4, 5, 1, 3, 1, 1, 1, 1, 1, 5, 1, 3, 1, 3)),
    22.0: Architecture((2, 1, 0, 1, 4, 4, 4, 4, 5, 1, 3, 1, 3, 1, 1, 1, 5, 1, 3, 1, 3)),
    24.0: Architecture((1, 1, 1, 1, 5, 4, 4, 4, 5, 1, 3, 1, 3, 1, 1, 1, 5, 5, 3, 3, 3)),
    26.0: Architecture((1, 1, 1, 1, 5, 5, 5, 4, 5, 1, 3, 1, 3, 1, 1, 1, 5, 5, 3, 5, 5)),
    28.0: Architecture((4, 1, 1, 1, 5, 5, 5, 5, 5, 1, 1, 3, 3, 1, 1, 1, 5, 5, 3, 5, 3)),
    30.0: Architecture((4, 1, 1, 2, 5, 5, 5, 5, 5, 5, 3, 3, 3, 1, 1, 1, 5, 5, 3, 5, 5)),
}

#: The manual baseline: MobileNetV2 stacks ``mbconv_k3_e6`` uniformly.
MOBILENET_V2 = Architecture((1,) * 21)

#: Corner points of the space (useful for calibration and bounds checks).
SMALLEST = Architecture((0,) * 21)   # all mbconv_k3_e3
LARGEST = Architecture((5,) * 21)    # all mbconv_k7_e6
ALL_SKIP = Architecture((SKIP_INDEX,) * 21)


def lightnet(target_ms: float) -> Architecture:
    """The reference LightNet for a Table-2 target (20/22/24/26/28/30 ms)."""
    try:
        return LIGHTNETS[float(target_ms)]
    except KeyError:
        raise KeyError(
            f"no reference LightNet for {target_ms} ms; "
            f"available targets: {sorted(LIGHTNETS)}"
        ) from None


def save_weights(module: nn.Module, path: str) -> None:
    """Persist a module's parameters and buffers to ``path`` (.npz)."""
    np.savez(path, **module.state_dict())


def load_weights(module: nn.Module, path: str) -> None:
    """Load parameters saved by :func:`save_weights` (strict shapes/keys)."""
    data = np.load(path)
    module.load_state_dict({key: data[key] for key in data.files})
