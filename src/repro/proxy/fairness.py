"""Strict-fairness supernet training (FairNAS, the paper's reference [11]).

LightNAS §3.3 argues its single-path mechanism "forces the search process to
strictly satisfy the equality principle [11], i.e., the supernet and the
searched sub-network should be trained in the same manner".  FairNAS's
*strict fairness* goes one step further for the weight-training phase: in
every round, each layer's K candidate operators must receive **exactly one**
gradient update each.  This is achieved by sampling K single-path models per
round whose per-layer choices form a permutation of the K candidates, and
accumulating their gradients into one optimizer step.

:class:`StrictFairnessTrainer` implements that protocol on our
:class:`~repro.proxy.supernet.SuperNet`; it is used by the warmup/weight
phase when unbiased operator strength estimates matter (e.g. before α
updates begin), and by tests that verify the fairness invariant exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .. import nn
from ..nn import functional as F
from ..search_space.space import Architecture
from .dataset import SyntheticTask
from .supernet import SuperNet

__all__ = ["FairnessReport", "StrictFairnessTrainer"]


@dataclass
class FairnessReport:
    """Bookkeeping of one training run's operator updates."""

    #: update_counts[l][k]: gradient updates received by operator k of layer l
    update_counts: np.ndarray
    rounds: int
    mean_loss: float

    @property
    def is_strictly_fair(self) -> bool:
        """True iff every operator of every layer got equally many updates."""
        return bool(np.all(self.update_counts == self.update_counts[0, 0]))


class StrictFairnessTrainer:
    """FairNAS strict-fairness weight training for a supernet.

    Parameters
    ----------
    supernet:
        The weight-sharing supernet to train.
    task:
        Proxy classification task supplying minibatches.
    optimizer:
        Optimizer over the supernet's parameters; stepped once per *round*
        (i.e. once per K accumulated single-path backward passes).
    rng:
        Permutation/batch sampling source.
    """

    def __init__(self, supernet: SuperNet, task: SyntheticTask,
                 optimizer: nn.Optimizer, rng: np.random.Generator) -> None:
        self.supernet = supernet
        self.task = task
        self.optimizer = optimizer
        self.rng = rng
        self.space = supernet.space

    # ------------------------------------------------------------------
    def sample_fair_round(self) -> List[Architecture]:
        """K single-path models whose layer choices tile all K candidates.

        Per layer, an independent random permutation of ``range(K)`` is
        drawn; model *i* uses the i-th element of each layer's permutation.
        Hence across the K models each candidate of each layer appears
        exactly once — FairNAS's strict-fairness condition.
        """
        K = self.space.num_operators
        permutations = [self.rng.permutation(K) for _ in range(self.space.num_layers)]
        return [
            Architecture(tuple(int(perm[i]) for perm in permutations))
            for i in range(K)
        ]

    def train_round(self, batch_size: int) -> float:
        """One strict-fairness round: K accumulated paths, one step."""
        self.optimizer.zero_grad()
        total_loss = 0.0
        for arch in self.sample_fair_round():
            batch = self.task.sample_batch(self.task.train, batch_size)
            logits = self.supernet.forward_arch(nn.Tensor(batch.images), arch)
            loss = F.cross_entropy(logits, batch.labels)
            loss.backward()  # gradients accumulate across the K paths
            total_loss += loss.item()
        self.optimizer.step()
        return total_loss / self.space.num_operators

    def train(self, rounds: int, batch_size: int = 16) -> FairnessReport:
        """Run ``rounds`` strict-fairness rounds and report update counts."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        counts = np.zeros((self.space.num_layers, self.space.num_operators),
                          dtype=np.int64)
        losses = []
        for _ in range(rounds):
            # counts are implied by construction; verified via the sample
            archs = self.sample_fair_round()
            self.optimizer.zero_grad()
            round_loss = 0.0
            for arch in archs:
                for layer, k in enumerate(arch.op_indices):
                    counts[layer, k] += 1
                batch = self.task.sample_batch(self.task.train, batch_size)
                logits = self.supernet.forward_arch(nn.Tensor(batch.images), arch)
                loss = F.cross_entropy(logits, batch.labels)
                loss.backward()
                round_loss += loss.item()
            self.optimizer.step()
            losses.append(round_loss / self.space.num_operators)
        return FairnessReport(update_counts=counts, rounds=rounds,
                              mean_loss=float(np.mean(losses)))
