"""ImageNet-accuracy oracle — the stand-in for "train 360 epochs on ImageNet".

This reproduction runs on one CPU core without ImageNet, so the *evaluation*
step of the paper (retrain each searched architecture from scratch for 360
epochs on 4 GPUs) is replaced by a calibrated analytic oracle.  What the
benchmarks need from this substitution is the *geometry* of Table 2 / Figures
3 & 9, namely:

* accuracy is monotone and saturating in network capacity,
* capacity value is (mostly) resolution-independent while latency cost is
  strongly resolution-dependent — the structural fact that makes searched,
  layer-diverse networks beat uniform MobileNetV2-style stacks at matched
  latency (the paper's layer-diversity argument, Figure 6),
* SkipConnect contributes nothing (so an all-skip collapse scores terribly,
  Figure 3), SE modules add a small bonus (Table 4), quick 50-epoch training
  scores ≈7 points below the full 360-epoch protocol (Figures 3 & 9), and
  width/resolution scaling multiplies capacity sub-linearly (Figure 9).

The logistic capacity→top-1 map is anchored so that the uniform
all-``mbconv_k3_e6`` network (our MobileNetV2 analogue) and the strongest
in-space networks land in the paper's 72–77 % top-1 band, and the top-5 map
``top5 = 59.9 + 0.432·top1`` interpolates the paper's (72.0, 91.0) and
(76.4, 92.9) pairs.

A deterministic per-architecture jitter (hash-seeded, ±0.15) models
retraining variance without breaking reproducibility.  The oracle also
exposes a differentiable pathway (:meth:`AccuracyOracle.value_matrix` plus
:meth:`AccuracyOracle.differentiable_loss`) so the search engines can use it
as a drop-in ``L_valid`` in fast "surrogate" mode.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..search_space.space import Architecture, SearchSpace

__all__ = ["AccuracyOracle", "EvalResult"]


@dataclass(frozen=True)
class EvalResult:
    """Oracle evaluation of one architecture."""

    top1: float
    top5: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.top1 <= 100.0 and 0.0 <= self.top5 <= 100.0):
            raise ValueError("accuracies must be percentages")


class AccuracyOracle:
    """Capacity-based ImageNet accuracy surrogate.

    Parameters
    ----------
    space:
        Search space whose layer geometry defines per-layer capacity values.
    width_mult / resolution:
        Scaling factors of the macro relative to the reference mobile
        setting (width 1.0, 224 px); used by the Figure-9 scaling baseline.
    seed:
        Folded into the per-architecture jitter.
    """

    #: logistic anchor: top1 = FLOOR + RANGE / (1 + exp(-(S - mid)/scale)).
    #: MID/SCALE are calibrated for the paper's 21-layer space and scale
    #: linearly with the number of searchable layers, so scaled-down test
    #: spaces keep a live accuracy gradient instead of saturating.
    FLOOR = 55.0
    RANGE = 22.5
    MID = 22.0
    SCALE = 2.2
    REFERENCE_LAYERS = 21

    #: per-layer capacity: base 1.0 per non-skip op, plus kernel/expansion
    #: bonuses that depend on where the layer sits.  Large kernels pay off at
    #: high spatial resolution (there is context to aggregate) while large
    #: expansion ratios pay off in the deep, many-channel stages — this is
    #: the structural reason "layer diversity helps to strike the right
    #: balance" (§3.1 / Figure 6): a uniform stack (MobileNetV2) necessarily
    #: misallocates, which is what searched networks exploit in Table 2 and
    #: Figure 9.  The high/low split is at the geometric-mean resolution of
    #: the searchable layers.
    KERNEL_BONUS_HIGHRES = 0.12   # per kernel step (3→5→7) at high resolution
    KERNEL_BONUS_LOWRES = 0.03
    EXPANSION_BONUS_HIGHRES = 0.10  # expansion 6 over 3, early layers
    EXPANSION_BONUS_LOWRES = 0.30   # expansion 6 over 3, deep layers

    #: protocol / module adjustments
    QUICK_TRAIN_PENALTY = 7.0   # 50-epoch protocol vs full 360-epoch
    SE_BONUS = 0.45             # Squeeze-and-Excitation on the last 9 layers
    DIVERSITY_BONUS = 0.30      # scaled by the operator-histogram entropy
    JITTER = 0.15               # deterministic retraining variance (± bound)

    TOP5_INTERCEPT = 59.9
    TOP5_SLOPE = 0.432

    def __init__(
        self,
        space: SearchSpace,
        width_mult: float = 1.0,
        resolution: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if width_mult <= 0:
            raise ValueError("width_mult must be positive")
        self.space = space
        self.width_mult = width_mult
        self.resolution = resolution or space.macro.input_resolution
        self.seed = seed
        # Sub-linear returns on width/resolution scaling: reallocating the
        # same latency budget across operators (what NAS does) buys more
        # capacity than uniformly inflating a fixed design (Figure 9).
        self._scale = width_mult ** 0.15 * (self.resolution / 224.0) ** 0.25
        depth_ratio = space.num_layers / self.REFERENCE_LAYERS
        self._logistic_mid = self.MID * depth_ratio
        self._logistic_scale = self.SCALE * depth_ratio

    # ------------------------------------------------------------------
    # Capacity model
    # ------------------------------------------------------------------
    def value_matrix(self) -> np.ndarray:
        """Per-(layer, operator) capacity contribution, shape ``(L, K)``."""
        geoms = self.space.layer_geometries()
        resolutions = np.array([g.in_resolution for g in geoms], dtype=np.float64)
        threshold = float(np.sqrt(resolutions.max() * resolutions.min()))
        table = np.zeros((self.space.num_layers, self.space.num_operators))
        for l, res in enumerate(resolutions):
            high = res >= threshold
            kernel_bonus = self.KERNEL_BONUS_HIGHRES if high else self.KERNEL_BONUS_LOWRES
            expansion_bonus = (
                self.EXPANSION_BONUS_HIGHRES if high else self.EXPANSION_BONUS_LOWRES
            )
            for k, spec in enumerate(self.space.operators):
                if spec.is_skip:
                    continue
                kernel_steps = (spec.kernel_size - 3) / 2
                expansion_step = 1.0 if spec.expansion >= 6 else 0.0
                table[l, k] = (
                    1.0 + kernel_bonus * kernel_steps + expansion_bonus * expansion_step
                )
        return table

    def capacity(self, arch: Architecture) -> float:
        """Scalar capacity score S of an architecture."""
        self.space.validate(arch)
        table = self.value_matrix()
        return float(
            table[np.arange(self.space.num_layers), list(arch.op_indices)].sum()
            * self._scale
        )

    def _diversity(self, arch: Architecture) -> float:
        """Normalised entropy of the operator histogram, in [0, 1]."""
        counts = np.bincount(arch.op_indices, minlength=self.space.num_operators)
        probs = counts[counts > 0] / counts.sum()
        if len(probs) <= 1:
            return 0.0
        return float(-(probs * np.log(probs)).sum() / np.log(self.space.num_operators))

    def _jitter(self, arch: Architecture) -> float:
        """Deterministic retraining-variance jitter in [-JITTER, JITTER]."""
        digest = hashlib.md5(
            (str(arch.op_indices) + f":{self.seed}").encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "little") / 2 ** 64
        return (2.0 * unit - 1.0) * self.JITTER

    # ------------------------------------------------------------------
    # Evaluation API
    # ------------------------------------------------------------------
    def top1_from_capacity(self, capacity: float) -> float:
        """The logistic capacity → top-1 map (no bonuses, no jitter)."""
        return self.FLOOR + self.RANGE / (
            1.0 + np.exp(-(capacity - self._logistic_mid) / self._logistic_scale))

    def evaluate(
        self,
        arch: Architecture,
        epochs: int = 360,
        with_se: bool = False,
    ) -> EvalResult:
        """Top-1/top-5 "as if retrained from scratch" (Table-2 protocol).

        ``epochs=50`` applies the quick-evaluation penalty used by the
        motivational and scaling experiments (Figures 3 and 9);
        ``with_se=True`` adds the Table-4 SE bonus.
        """
        top1 = self.top1_from_capacity(self.capacity(arch))
        top1 += self.DIVERSITY_BONUS * self._diversity(arch)
        if with_se:
            top1 += self.SE_BONUS
        if epochs < 360:
            top1 -= self.QUICK_TRAIN_PENALTY * (360 - epochs) / 310.0
        top1 += self._jitter(arch)
        top1 = float(np.clip(top1, 0.1, 99.0))
        top5 = float(np.clip(self.TOP5_INTERCEPT + self.TOP5_SLOPE * top1, top1, 99.9))
        return EvalResult(top1=top1, top5=top5)

    # ------------------------------------------------------------------
    # Differentiable pathway (surrogate L_valid for fast search)
    # ------------------------------------------------------------------
    def differentiable_loss(self, p_bar: nn.Tensor) -> nn.Tensor:
        """A differentiable validation loss over the gate matrix ``P̄``.

        ``p_bar`` is the (L, K) binarised-with-STE gate matrix of Eq. (9);
        the loss decreases as the expected capacity ``Σ P̄·V`` increases,
        through the same saturating logistic as :meth:`evaluate`, so its
        gradient prefers exactly the operators the oracle rewards.  Returned
        on a scale comparable to a cross-entropy loss (≈0–2) so that the
        λ-weighted latency term of Eq. (10) interacts with it the same way
        it interacts with a real validation loss.
        """
        table = nn.Tensor(self.value_matrix() * self._scale)
        capacity = (p_bar * table).sum()
        z = (capacity - self._logistic_mid) * (1.0 / self._logistic_scale)
        # top1/100 ∈ (0.55, 0.775); loss = 1 − top1/100 ∈ (0.225, 0.45)
        top1_frac = (
            self.FLOOR / 100.0
            + (self.RANGE / 100.0) / (nn.ops.exp(-z) + 1.0)
        )
        return (1.0 - top1_frac) * 4.0
