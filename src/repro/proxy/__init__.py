"""`repro.proxy` — the accuracy substrate (replaces ImageNet training).

A seeded synthetic classification task for *real* bi-level supernet
training, the weight-sharing :class:`SuperNet` with single-path and
multi-path execution modes, and the calibrated :class:`AccuracyOracle` that
stands in for the paper's 360-epoch ImageNet retraining protocol.
"""

from .accuracy_model import AccuracyOracle, EvalResult
from .dataset import Batch, SyntheticTask
from .fairness import FairnessReport, StrictFairnessTrainer
from .supernet import SuperNet, build_standalone

__all__ = [
    "AccuracyOracle",
    "EvalResult",
    "Batch",
    "SyntheticTask",
    "SuperNet",
    "FairnessReport",
    "StrictFairnessTrainer",
    "build_standalone",
]
