"""The over-parameterised supernet (Figure 4) and stand-alone networks.

:class:`SuperNet` instantiates, for every searchable layer, all ``K``
candidate operators, and supports the two execution regimes the paper
contrasts:

* :meth:`SuperNet.forward_single_path` — LightNAS §3.3: a gate matrix
  ``P̄ ∈ {0,1}^{L×K}`` (from :func:`repro.nn.functional.hard_binarize_ste`)
  selects one operator per layer; only that operator is executed, so memory
  and compute are that of a single path.  Gradients flow into the active
  operator's weights *and* into the gate entry (straight-through), which is
  what Eq. (12) differentiates.
* :meth:`SuperNet.forward_weighted` — the multi-path regime of
  DARTS/SNAS/FBNet (Eq. 1): every operator of every layer runs and outputs
  are blended by the relaxation weights.  ``last_active_paths`` records how
  many operator instances executed, which the Table-1 / memory-ablation
  benchmarks use to quantify the multi-path memory bottleneck.

:func:`build_standalone` materialises a discrete architecture as a plain
network for stand-alone retraining — by construction it is the exact
sub-network of the supernet (the "equality principle").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..search_space.macro import MacroConfig
from ..search_space.operators import build_operator
from ..search_space.space import Architecture, SearchSpace

__all__ = ["SuperNet", "build_standalone"]


class _Backbone(nn.Module):
    """Shared fixed parts: stem, fixed first bottleneck, head, classifier."""

    def __init__(self, macro: MacroConfig, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        super().__init__()
        self.stem = nn.Sequential(
            nn.Conv2d(3, macro.stem_channels, 3, rng, stride=2, padding=1),
            nn.BatchNorm2d(macro.stem_channels),
            nn.ReLU6(),
        )
        # Fixed first bottleneck (MobileNetV2 convention: expansion 1).
        self.first = nn.Sequential(
            nn.Conv2d(macro.stem_channels, macro.stem_channels, 3, rng, padding=1,
                      groups=macro.stem_channels),
            nn.BatchNorm2d(macro.stem_channels),
            nn.ReLU6(),
            nn.Conv2d(macro.stem_channels, macro.first_layer_channels, 1, rng),
            nn.BatchNorm2d(macro.first_layer_channels),
        )
        last_channels = macro.stages[-1][0]
        self.head = nn.Sequential(
            nn.Conv2d(last_channels, macro.head_channels, 1, rng),
            nn.BatchNorm2d(macro.head_channels),
            nn.ReLU6(),
        )
        self.pool = nn.GlobalAvgPool()
        self.dropout = nn.Dropout(dropout, rng) if dropout > 0 else None
        self.classifier = nn.Linear(macro.head_channels, macro.num_classes, rng)

    def enter(self, x: nn.Tensor) -> nn.Tensor:
        return self.first(self.stem(x))

    def exit(self, x: nn.Tensor) -> nn.Tensor:
        out = self.pool(self.head(x))
        if self.dropout is not None:
            out = self.dropout(out)
        return self.classifier(out)


class SuperNet(nn.Module):
    """Weight-sharing supernet over a :class:`SearchSpace`.

    Parameters
    ----------
    space:
        Search space defining layer geometry and the operator vocabulary.
    rng:
        Weight-initialisation generator.
    dropout:
        Classifier dropout (the retraining protocol uses 0.2; search 0).
    """

    def __init__(self, space: SearchSpace, rng: np.random.Generator,
                 dropout: float = 0.0) -> None:
        super().__init__()
        self.space = space
        self.backbone = _Backbone(space.macro, rng, dropout=dropout)
        self.choice_blocks: List[nn.Sequential] = []
        for l, geom in enumerate(space.layer_geometries()):
            candidates = nn.Sequential(
                *[
                    build_operator(spec, geom.in_channels, geom.out_channels,
                                   geom.stride, rng)
                    for spec in space.operators
                ]
            )
            self._modules[f"layer{l}"] = candidates
            self.choice_blocks.append(candidates)
        #: operator executions in the most recent forward (memory proxy)
        self.last_active_paths = 0

    # ------------------------------------------------------------------
    def forward_single_path(self, x: nn.Tensor, gates: nn.Tensor) -> nn.Tensor:
        """Single-path forward under a hard one-hot gate matrix (Eq. 8–9).

        Only the argmax operator of each layer executes; multiplying by the
        (value 1.0) gate entry keeps the gate on the tape so its
        straight-through gradient reaches the architecture parameters.
        """
        if gates.shape != (self.space.num_layers, self.space.num_operators):
            raise ValueError(
                f"gates shape {gates.shape} does not match space "
                f"({self.space.num_layers}, {self.space.num_operators})"
            )
        active = 0
        h = self.backbone.enter(x)
        selections = np.argmax(gates.data, axis=1)
        for l, block in enumerate(self.choice_blocks):
            k = int(selections[l])
            gate = gates[l, k]  # scalar tensor, value 1.0, on the tape
            h = block[k](h) * gate
            active += 1
        self.last_active_paths = active
        return self.backbone.exit(h)

    def forward_weighted(self, x: nn.Tensor, weights: nn.Tensor,
                         threshold: float = 0.0) -> nn.Tensor:
        """Multi-path forward: blend every candidate by ``weights`` (Eq. 1).

        ``threshold`` optionally skips candidates whose weight is below it
        (FBNet keeps all; ProxylessNAS samples two — callers pass masked
        weights instead).  A candidate with *zero* weight contributes
        nothing to the blend regardless of the threshold, so it is never
        executed — this is what makes masked-weight callers (which zero
        out pruned candidates and pass ``threshold=-1``) pay only for the
        paths they keep.  Records executed paths in ``last_active_paths``.
        """
        if weights.shape != (self.space.num_layers, self.space.num_operators):
            raise ValueError("weights shape does not match the space")
        active = 0
        h = self.backbone.enter(x)
        for l, block in enumerate(self.choice_blocks):
            acc = None
            for k in range(self.space.num_operators):
                if weights.data[l, k] <= threshold or weights.data[l, k] == 0.0:
                    continue
                term = block[k](h) * weights[l, k]
                acc = term if acc is None else acc + term
                active += 1
            if acc is None:
                raise ValueError(f"no active candidate at layer {l}")
            h = acc
        self.last_active_paths = active
        return self.backbone.exit(h)

    def forward_arch(self, x: nn.Tensor, arch: Architecture) -> nn.Tensor:
        """Discrete forward of one architecture (no gate gradients)."""
        self.space.validate(arch)
        h = self.backbone.enter(x)
        for block, k in zip(self.choice_blocks, arch.op_indices):
            h = block[k](h)
        self.last_active_paths = len(self.choice_blocks)
        return self.backbone.exit(h)

    # ------------------------------------------------------------------
    def path_parameters(self, arch: Architecture) -> List[nn.Parameter]:
        """Parameters of one path (backbone + chosen operators)."""
        params = list(self.backbone.parameters())
        for block, k in zip(self.choice_blocks, arch.op_indices):
            params.extend(block[k].parameters())
        return params


def build_standalone(
    space: SearchSpace,
    arch: Architecture,
    rng: np.random.Generator,
    dropout: float = 0.2,
    with_se_last: int = 0,
) -> nn.Module:
    """Materialise ``arch`` as a stand-alone trainable network.

    ``with_se_last`` adds Squeeze-and-Excitation to the last *n* searchable
    layers (Table-4 protocol: the last nine).
    """
    space.validate(arch)

    class Standalone(nn.Module):
        def __init__(self) -> None:
            super().__init__()
            self.backbone = _Backbone(space.macro, rng, dropout=dropout)
            self.blocks = nn.Sequential()
            geoms = space.layer_geometries()
            se_start = len(geoms) - with_se_last
            for i, (geom, k) in enumerate(zip(geoms, arch.op_indices)):
                op = build_operator(
                    space.operators[k], geom.in_channels, geom.out_channels,
                    geom.stride, rng, with_se=i >= se_start,
                )
                self.blocks._modules[str(i)] = op
                self.blocks.layers.append(op)

        def forward(self, x: nn.Tensor) -> nn.Tensor:
            return self.backbone.exit(self.blocks(self.backbone.enter(x)))

    return Standalone()
