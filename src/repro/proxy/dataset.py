"""Synthetic classification task — the proxy for the paper's ImageNet-100.

The paper searches on 100 randomly-sampled ImageNet categories.  Offline and
CPU-bound, we substitute a seeded synthetic dataset with the properties the
bi-level search loop actually exercises:

* each class is a smooth random template (low-frequency pattern) rendered at
  a random shift with additive noise, so the task is learnable but not
  trivial, and a higher-capacity sub-network achieves a lower validation
  loss — the signal that drives the ``L_valid`` term of Eq. (10);
* train/validation folds are disjoint draws of the same distribution,
  mirroring the weight-update/architecture-update split of bi-level NAS.

Images are NCHW float arrays normalised to roughly zero mean / unit scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["SyntheticTask", "Batch"]


@dataclass(frozen=True)
class Batch:
    """One minibatch of images and integer labels."""

    images: np.ndarray  # (N, C, H, W)
    labels: np.ndarray  # (N,)

    def __len__(self) -> int:
        return len(self.labels)


class SyntheticTask:
    """Seeded synthetic image-classification task.

    Parameters
    ----------
    num_classes:
        Number of categories (the paper samples 100 from ImageNet; the fast
        proxy default is 10).
    resolution:
        Square image size; must match the macro config the supernet uses.
    channels:
        Image channels (3, like RGB).
    train_size / valid_size:
        Fold sizes.
    noise:
        Additive Gaussian noise amplitude; higher is harder.
    seed:
        Everything (templates, shifts, noise, batch order) derives from it.
    """

    def __init__(
        self,
        num_classes: int = 10,
        resolution: int = 16,
        channels: int = 3,
        train_size: int = 512,
        valid_size: int = 256,
        noise: float = 0.35,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least 2 classes")
        if resolution < 4:
            raise ValueError("resolution must be at least 4")
        self.num_classes = num_classes
        self.resolution = resolution
        self.channels = channels
        self.noise = noise
        rng = np.random.default_rng(seed)
        self._templates = self._make_templates(rng)
        self.train = self._render_fold(train_size, rng)
        self.valid = self._render_fold(valid_size, rng)
        self._batch_rng = np.random.default_rng(seed + 1)

    # ------------------------------------------------------------------
    def _make_templates(self, rng: np.random.Generator) -> np.ndarray:
        """Smooth per-class templates: low-frequency random Fourier fields."""
        r = self.resolution
        yy, xx = np.meshgrid(np.arange(r), np.arange(r), indexing="ij")
        templates = np.zeros((self.num_classes, self.channels, r, r))
        for c in range(self.num_classes):
            for ch in range(self.channels):
                field = np.zeros((r, r))
                for _ in range(4):
                    fy, fx = rng.uniform(0.5, 2.5, size=2)
                    phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
                    amp = rng.uniform(0.4, 1.0)
                    field += amp * np.sin(2 * np.pi * fy * yy / r + phase_y) * np.cos(
                        2 * np.pi * fx * xx / r + phase_x
                    )
                templates[c, ch] = field / np.abs(field).max()
        return templates

    def _render_fold(self, size: int, rng: np.random.Generator) -> Batch:
        labels = rng.integers(self.num_classes, size=size)
        images = np.empty((size, self.channels, self.resolution, self.resolution))
        for i, label in enumerate(labels):
            shift_y, shift_x = rng.integers(-2, 3, size=2)
            img = np.roll(self._templates[label], (shift_y, shift_x), axis=(1, 2))
            images[i] = img + rng.normal(0.0, self.noise, size=img.shape)
        return Batch(images=images, labels=labels.astype(np.int64))

    # ------------------------------------------------------------------
    def batches(self, fold: Batch, batch_size: int, shuffle: bool = True
                ) -> Iterator[Batch]:
        """Iterate minibatches over a fold."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = (
            self._batch_rng.permutation(len(fold)) if shuffle else np.arange(len(fold))
        )
        for start in range(0, len(fold), batch_size):
            idx = order[start : start + batch_size]
            yield Batch(images=fold.images[idx], labels=fold.labels[idx])

    def sample_batch(self, fold: Batch, batch_size: int) -> Batch:
        """Draw one random minibatch from a fold."""
        idx = self._batch_rng.integers(len(fold), size=batch_size)
        return Batch(images=fold.images[idx], labels=fold.labels[idx])
