"""Retarget one archive sweep (or one search) to an N-device fleet.

The paper's promise is "you only search once"; this module extends it to
"you only search once *per fleet*": given an archive of evaluated
architectures and a calibrated :class:`~repro.fleet.transfer.ProxyTransfer`,
:func:`retarget_index` answers, for every target device, *which archived
architectures satisfy the latency budget there and which sit on that
device's cost/score Pareto front* — one proxy-predictor forward over the
archive, then one O(N log K) interpolation per device.

``write_back=True`` appends the per-device predicted latencies to the
archive under the standard ``latency_ms`` cost key, so fleet devices ride
the exact same per-device cost dicts as measured ones — ``repro query
--device phone-03 --pareto`` and the ``/query`` / ``/pareto`` service
endpoints work on fleet devices with no new code paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..eval.pareto import pareto_mask
from ..hardware.device import DeviceProfile
from ..hardware.latency import LatencyModel
from ..search_space.space import SearchSpace
from .transfer import ProxyTransfer

__all__ = ["retarget_index", "retarget_archive", "device_report",
           "evaluate_transfer"]


def device_report(device: str, latencies: np.ndarray, target_ms: float,
                  score: Optional[np.ndarray] = None,
                  keys: Optional[Sequence[str]] = None) -> dict:
    """Per-device constraint-satisfaction + Pareto summary (JSON-ready)."""
    latencies = np.asarray(latencies, dtype=np.float64)
    satisfied = np.isfinite(latencies) & (latencies <= target_ms)
    report = {
        "device": device,
        "count": int(len(latencies)),
        "target_ms": float(target_ms),
        "satisfied": int(satisfied.sum()),
        "satisfied_frac": float(satisfied.mean()) if len(latencies) else 0.0,
        "latency_ms": {
            "min": float(np.min(latencies)) if len(latencies) else None,
            "median": float(np.median(latencies)) if len(latencies) else None,
            "max": float(np.max(latencies)) if len(latencies) else None,
        },
    }
    if score is not None:
        score = np.asarray(score, dtype=np.float64)
        valid = np.nonzero(np.isfinite(score) & np.isfinite(latencies))[0]
        if valid.size:
            front = valid[pareto_mask(latencies[valid], score[valid])]
            front = front[np.argsort(latencies[front], kind="stable")]
            report["pareto_size"] = int(len(front))
            report["pareto_rows"] = front.tolist()
            if keys is not None:
                report["pareto_keys"] = [keys[r] for r in front.tolist()]
            feasible = valid[satisfied[valid]]
            if feasible.size:
                best = feasible[int(np.argmax(score[feasible]))]
                report["best_feasible"] = {
                    "row": int(best),
                    "score": float(score[best]),
                    "latency_ms": float(latencies[best]),
                    **({"key": keys[int(best)]} if keys is not None else {}),
                }
        else:
            report["pareto_size"] = 0
            report["pareto_rows"] = []
    return report


def retarget_index(index, transfer: ProxyTransfer, proxy_predictor,
                   target_ms: float,
                   devices: Optional[Sequence[str]] = None) -> dict:
    """Sweep an :class:`~repro.archive.store.ArchiveIndex` across a fleet.

    One ``predict_population`` over the archived genotypes, then one
    monotone-map interpolation per device.  Returns ``{"devices": [...
    per-device reports ...], "proxy": {...}}``; per-device predicted
    latencies ride along under ``"latency_ms_by_device"`` for callers that
    want to write them back.
    """
    names = list(devices) if devices is not None else transfer.devices
    if not names:
        raise ValueError("no devices to retarget to")
    proxy_values = proxy_predictor.predict_population(index.ops)
    score = index.score
    by_device: Dict[str, np.ndarray] = {}
    reports: List[dict] = []
    for name in names:
        latencies = transfer.transfer_many(name, proxy_values)
        by_device[name] = latencies
        reports.append(device_report(name, latencies, target_ms,
                                     score=score, keys=list(index.keys)))
    return {
        "target_ms": float(target_ms),
        "archive_size": int(len(index)),
        "num_devices": len(names),
        "proxy": {
            "device": transfer.proxy_device,
            "calibration_seed": transfer.calibration_seed,
            "predicted_min_ms": float(proxy_values.min()),
            "predicted_max_ms": float(proxy_values.max()),
        },
        "devices": reports,
        "latency_ms_by_device": by_device,
    }


def retarget_archive(archive, transfer: ProxyTransfer, proxy_predictor,
                     target_ms: float, *,
                     devices: Optional[Sequence[str]] = None,
                     write_back: bool = False) -> dict:
    """Retarget a whole archive; optionally persist per-device latencies.

    With ``write_back`` the predicted latency of every archived genotype is
    appended per device under the standard ``latency_ms`` key, making fleet
    devices first-class citizens of the existing query/serve stack.
    """
    index = archive.index()
    report = retarget_index(index, transfer, proxy_predictor, target_ms,
                            devices=devices)
    by_device = report.pop("latency_ms_by_device")
    if write_back:
        for name, latencies in by_device.items():
            archive.add_population(index.ops, device=name,
                                   latency_ms=latencies,
                                   engine="fleet-retarget")
        report["written_devices"] = sorted(by_device)
    return report


def evaluate_transfer(transfer: ProxyTransfer, proxy_predictor,
                      space: SearchSpace,
                      devices: Sequence[DeviceProfile], *,
                      num_eval: int = 500, seed: int = 1234) -> List[dict]:
    """Transfer accuracy against ground truth on a held-out evaluation set.

    For each device: RMSE and Kendall-τ of the transferred proxy
    predictions against the device's *noise-free* roofline latency on
    ``num_eval`` freshly sampled architectures (disjoint RNG stream from
    calibration).  This is the honesty check benchmarked against per-device
    MLPs in ``benchmarks/bench_fleet.py``.
    """
    from ..predictor.metrics import kendall_tau, rmse

    rng = np.random.default_rng([seed, 2])
    ops = space.sample_indices(num_eval, rng)
    proxy_values = proxy_predictor.predict_population(ops)
    rows = []
    for device in devices:
        truth = LatencyModel(space, device).latency_many(ops)
        transferred = transfer.transfer_many(device.name, proxy_values)
        rows.append({
            "device": device.name,
            "rmse_ms": rmse(transferred, truth),
            "kendall_tau": kendall_tau(transferred, truth),
            "proxy_kendall_tau": kendall_tau(proxy_values, truth),
            "truth_span_ms": [float(truth.min()), float(truth.max())],
        })
    return rows
