"""Parametric simulated hardware families → reproducible device fleets.

The paper measures one device (a Jetson AGX Xavier); ROADMAP item 1 asks
for a *fleet* — many plausible deployment targets whose roofline constants
differ the way real hardware classes differ.  A :class:`FamilySpec` is a
distribution over :class:`~repro.hardware.device.DeviceProfile` parameters;
sampling it yields named, seeded, reproducible devices:

* ``phone-03``       — mobile SoC accelerators (batch 1, modest bandwidth),
* ``mcu-07``         — microcontrollers (100×+ slower, CPU-friendly
  depthwise, near-zero launch overhead),
* ``server-cpu-01``  — many-core server CPUs (batch 8, high bandwidth),
* ``edge-gpu-04``    — Jetson-class embedded GPUs around the proxy device.

**Parameterization.**  Each member draws an absolute ``speed`` scale (its
whole-network latency relative to the proxy device — spanning decades
across families) plus bounded *ratio* perturbations of the roofline
balance: compute vs memory traffic, per-kernel launch/isolation overhead,
fusion savings, and the dense-vs-depthwise efficiency gap.  Absolute speed
is rank-neutral; the balance ratios are what re-rank architectures across
devices.  Keeping them within small factors of the proxy's balance while
absolute constants span orders of magnitude encodes the empirical premise
of "One Proxy Device Is Enough" (PAPERS.md): real devices disagree wildly
on *how fast* but only mildly on *which architecture is faster*, which is
exactly what makes a monotone proxy→target map sufficient.  The raw
:class:`DeviceProfile` constants (MACs/ms, bytes/ms, ms overheads) are
derived from the draws, so generated profiles plug into every existing
latency/energy model unchanged.

Member ``i`` of a family is generated from a generator seeded by
``(seed, i, family)``, so ``phone-03`` denotes the *same* device no matter
how many fleet members are instantiated, in which order, or by which
process — archives, services and calibration files can refer to fleet
devices by name alone.  A non-default seed is spelled into the name
(``phone-03@s7``), keeping names content-addressed.

Importing :mod:`repro.fleet` registers :func:`fleet_device` as a
:func:`~repro.hardware.device.resolve_device` resolver, so every CLI /
service / archive path that resolves devices accepts fleet names with no
further wiring.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..hardware.device import (
    DeviceProfile,
    XAVIER_MAXN,
    register_resolver,
)

__all__ = ["FamilySpec", "FLEET_FAMILIES", "DEFAULT_FLEET_SEED",
           "generate_device", "generate_fleet", "fleet_device",
           "fleet_name", "parse_fleet_name", "register_family"]

#: Canonical seed of the unsuffixed names (``phone-03`` ≡ ``phone-03@s0``).
DEFAULT_FLEET_SEED = 0

#: The reference device all ratio draws perturb around.
PROXY = XAVIER_MAXN

_NAME_RE = re.compile(r"^(?P<family>[a-z][a-z0-9-]*?)-(?P<index>\d{1,4})"
                      r"(?:@s(?P<seed>\d+))?$")

#: Draw names in their fixed consumption order.  ``log`` ranges are drawn
#: as ``exp(U(log lo, log hi))``, ``lin`` ranges as ``U(lo, hi)``.
_LOG_DRAWS = ("speed", "compute_ratio", "memory_ratio", "overhead_ratio",
              "fusion_ratio", "depthwise_ratio", "network_overhead_ms",
              "static_power_w", "energy_per_gmac_mj", "energy_per_gb_mj")
_LIN_DRAWS = ("utilization_half_channels", "isolated_per_launch",
              "latency_noise_ms", "latency_noise_rel")


@dataclass(frozen=True)
class FamilySpec:
    """A distribution over device-model parameters (see module docstring).

    Ranges
    ------
    speed:
        Whole-network latency scale relative to the proxy device
        (log-uniform; decades across families).
    compute_ratio / memory_ratio / overhead_ratio / fusion_ratio:
        Log-uniform perturbations of the roofline balance: the weight of
        the compute term, memory-traffic term, per-kernel launch overhead,
        and fusion saving relative to the proxy's balance at this speed.
    depthwise_ratio:
        Multiplier on the proxy's depthwise-vs-dense efficiency gap
        (``> 1`` = depthwise-friendlier than a Xavier, as on CPUs).
    utilization_half_channels / network_overhead_ms / noise / energy:
        Absolute constants (network overhead and measurement noise are
        rank-neutral; energy constants feed the energy model only).
    isolated_per_launch:
        Isolated-measurement overhead as a multiple of the launch overhead
        (what poisons additive LUTs on this device).
    """

    name: str
    description: str
    batch_size: int
    speed: Tuple[float, float]
    compute_ratio: Tuple[float, float] = (0.8, 1.25)
    memory_ratio: Tuple[float, float] = (0.7, 1.5)
    overhead_ratio: Tuple[float, float] = (0.6, 1.6)
    fusion_ratio: Tuple[float, float] = (0.7, 1.4)
    depthwise_ratio: Tuple[float, float] = (0.8, 1.3)
    utilization_half_channels: Tuple[float, float] = (15.0, 35.0)
    isolated_per_launch: Tuple[float, float] = (5.0, 15.0)
    network_overhead_ms: Tuple[float, float] = (0.5, 3.0)
    latency_noise_ms: Tuple[float, float] = (0.02, 0.08)
    latency_noise_rel: Tuple[float, float] = (0.0, 0.01)
    static_power_w: Tuple[float, float] = (4.0, 12.0)
    energy_per_gmac_mj: Tuple[float, float] = (40.0, 120.0)
    energy_per_gb_mj: Tuple[float, float] = (60.0, 150.0)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        for field in _LOG_DRAWS + _LIN_DRAWS:
            lo, hi = getattr(self, field)
            if not (np.isfinite(lo) and np.isfinite(hi) and lo <= hi):
                raise ValueError(f"bad range for {field!r}: ({lo}, {hi})")
            if field in _LOG_DRAWS and lo <= 0:
                raise ValueError(f"log-uniform {field!r} needs lo > 0")
            if field in _LIN_DRAWS and lo < 0:
                raise ValueError(f"{field!r} must be non-negative")

    # ------------------------------------------------------------------
    def sample(self, index: int, seed: int = DEFAULT_FLEET_SEED
               ) -> DeviceProfile:
        """Member ``index`` of this family under ``seed`` (reproducible)."""
        if index < 0:
            raise ValueError("fleet member index must be non-negative")
        rng = np.random.default_rng([seed, index, _family_salt(self.name)])
        draw: Dict[str, float] = {}
        for field in _LOG_DRAWS:
            lo, hi = getattr(self, field)
            draw[field] = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        for field in _LIN_DRAWS:
            lo, hi = getattr(self, field)
            draw[field] = float(rng.uniform(lo, hi))

        # Derive roofline constants so this device's whole-network latency
        # is ≈ speed × the proxy's, with the term balance perturbed by the
        # ratio draws.  The batch factor keeps "speed" batch-independent:
        # a batch-1 device at speed 1 matches the proxy's batch-8 latency.
        batch_factor = self.batch_size / PROXY.batch_size
        slow = draw["speed"]
        kernel_launch = PROXY.kernel_launch_ms * slow * draw["overhead_ratio"]
        return DeviceProfile(
            name=fleet_name(self.name, index, seed),
            batch_size=self.batch_size,
            peak_macs_per_ms=PROXY.peak_macs_per_ms * batch_factor
            / (slow * draw["compute_ratio"]),
            dense_efficiency=PROXY.dense_efficiency,
            depthwise_efficiency=min(
                PROXY.dense_efficiency,
                PROXY.depthwise_efficiency * draw["depthwise_ratio"]),
            utilization_half_channels=draw["utilization_half_channels"],
            bandwidth_bytes_per_ms=PROXY.bandwidth_bytes_per_ms
            * batch_factor / (slow * draw["memory_ratio"]),
            kernel_launch_ms=kernel_launch,
            network_overhead_ms=draw["network_overhead_ms"],
            isolated_overhead_ms=kernel_launch * draw["isolated_per_launch"],
            fusion_saving_ms=PROXY.fusion_saving_ms * slow
            * draw["fusion_ratio"],
            latency_noise_ms=draw["latency_noise_ms"],
            latency_noise_rel=draw["latency_noise_rel"],
            static_power_w=draw["static_power_w"],
            energy_per_gmac_mj=draw["energy_per_gmac_mj"],
            energy_per_gb_mj=draw["energy_per_gb_mj"],
            energy_noise_mj=PROXY.energy_noise_mj,
            energy_drift_mj=PROXY.energy_drift_mj,
            energy_drift_rho=PROXY.energy_drift_rho,
        )


def _family_salt(family: str) -> int:
    """Stable per-family stream salt (CRC-32 of the name)."""
    return zlib.crc32(family.encode("utf-8"))


def fleet_name(family: str, index: int, seed: int = DEFAULT_FLEET_SEED
               ) -> str:
    """Canonical device name of one fleet member."""
    suffix = "" if seed == DEFAULT_FLEET_SEED else f"@s{seed}"
    return f"{family}-{index:02d}{suffix}"


def parse_fleet_name(name: str) -> Optional[Tuple[str, int, int]]:
    """``"phone-03@s7"`` → ``("phone", 3, 7)``; ``None`` if not fleet-shaped
    or the family is unregistered."""
    match = _NAME_RE.match(name)
    if match is None or match.group("family") not in FLEET_FAMILIES:
        return None
    seed = match.group("seed")
    return (match.group("family"), int(match.group("index")),
            DEFAULT_FLEET_SEED if seed is None else int(seed))


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------

_PHONE = FamilySpec(
    name="phone",
    description="mobile SoC accelerators: batch-1 interactive, modest "
                "bandwidth, depthwise-friendlier than the proxy GPU",
    batch_size=1,
    speed=(0.7, 4.0),
    memory_ratio=(0.9, 2.0),
    overhead_ratio=(0.6, 1.5),
    depthwise_ratio=(0.9, 1.8),
    utilization_half_channels=(10.0, 35.0),
    network_overhead_ms=(0.5, 3.0),
    latency_noise_ms=(0.02, 0.10),
    latency_noise_rel=(0.005, 0.02),
    static_power_w=(2.0, 6.0),
    energy_per_gmac_mj=(40.0, 120.0),
    energy_per_gb_mj=(60.0, 150.0),
)

_MCU = FamilySpec(
    name="mcu",
    description="microcontrollers: 100-600x slower, CPU-friendly "
                "depthwise, near-zero launch overhead",
    batch_size=1,
    speed=(100.0, 600.0),
    memory_ratio=(0.8, 1.8),
    overhead_ratio=(0.05, 0.25),
    fusion_ratio=(0.2, 0.6),
    depthwise_ratio=(1.1, 1.8),
    utilization_half_channels=(4.0, 12.0),
    network_overhead_ms=(0.05, 0.5),
    latency_noise_ms=(0.5, 5.0),
    latency_noise_rel=(0.002, 0.01),
    static_power_w=(0.05, 0.5),
    energy_per_gmac_mj=(5.0, 30.0),
    energy_per_gb_mj=(10.0, 50.0),
)

_SERVER_CPU = FamilySpec(
    name="server-cpu",
    description="many-core server CPUs: batch 8, high bandwidth, good "
                "depthwise utilisation, tiny dispatch overhead",
    batch_size=8,
    speed=(0.4, 2.5),
    memory_ratio=(0.7, 1.3),
    overhead_ratio=(0.15, 0.6),
    fusion_ratio=(0.3, 0.9),
    depthwise_ratio=(1.1, 1.8),
    utilization_half_channels=(8.0, 20.0),
    network_overhead_ms=(0.1, 0.6),
    latency_noise_ms=(0.01, 0.05),
    latency_noise_rel=(0.01, 0.04),
    static_power_w=(40.0, 120.0),
    energy_per_gmac_mj=(80.0, 200.0),
    energy_per_gb_mj=(100.0, 250.0),
)

_EDGE_GPU = FamilySpec(
    name="edge-gpu",
    description="Jetson-class embedded GPUs around the proxy device",
    batch_size=8,
    speed=(0.5, 3.0),
    depthwise_ratio=(0.6, 1.4),
    utilization_half_channels=(15.0, 35.0),
    network_overhead_ms=(1.0, 3.0),
    latency_noise_ms=(0.02, 0.06),
    latency_noise_rel=(0.0, 0.01),
    static_power_w=(5.0, 15.0),
    energy_per_gmac_mj=(40.0, 100.0),
    energy_per_gb_mj=(60.0, 130.0),
)

#: Registered parametric families, by name.
FLEET_FAMILIES: Dict[str, FamilySpec] = {
    spec.name: spec for spec in (_PHONE, _MCU, _SERVER_CPU, _EDGE_GPU)
}


def register_family(spec: FamilySpec) -> None:
    """Add a custom family; its names become resolvable immediately."""
    if spec.name in FLEET_FAMILIES:
        raise ValueError(f"fleet family {spec.name!r} already registered")
    if not _NAME_RE.match(f"{spec.name}-00"):
        raise ValueError(
            f"family name {spec.name!r} must be lowercase [a-z0-9-], "
            f"starting with a letter")
    FLEET_FAMILIES[spec.name] = spec


# ----------------------------------------------------------------------
# Generation + name resolution
# ----------------------------------------------------------------------

def generate_device(family: str, index: int,
                    seed: int = DEFAULT_FLEET_SEED) -> DeviceProfile:
    """One named member of a registered family."""
    try:
        spec = FLEET_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown fleet family {family!r}; registered: "
            f"{', '.join(sorted(FLEET_FAMILIES))}") from None
    return spec.sample(index, seed)


def generate_fleet(family: str, count: int,
                   seed: int = DEFAULT_FLEET_SEED) -> List[DeviceProfile]:
    """Members ``0..count-1`` of a family (each independent of ``count``)."""
    if count < 1:
        raise ValueError("fleet size must be positive")
    return [generate_device(family, i, seed) for i in range(count)]


def fleet_device(name: str) -> Optional[DeviceProfile]:
    """Resolve a fleet device name, or ``None`` if not fleet-shaped.

    This is the hook plugged into
    :func:`repro.hardware.device.resolve_device`.
    """
    parsed = parse_fleet_name(name)
    if parsed is None:
        return None
    family, index, seed = parsed
    return FLEET_FAMILIES[family].sample(index, seed)


def _hints() -> List[str]:
    return [f"{family}-<NN>[@s<seed>]"
            for family in sorted(FLEET_FAMILIES)]


register_resolver(fleet_device, _hints)
