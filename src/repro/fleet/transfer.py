"""Proxy-device latency transfer: monotone maps instead of fresh campaigns.

"One Proxy Device Is Enough for Hardware-Aware NAS" (PAPERS.md) observes
that latency *rank* correlation across devices is high, so retargeting a
search to a new device does not need the paper's ~10k-measurement campaign
+ MLP per device — a cheap monotone map from the proxy device's predicted
latency to the target device's measured latency, fit on ~100 calibration
pairs, preserves ranks exactly and recovers the scale.

:class:`MonotoneMap` is that map: isotonic regression (pool-adjacent-
violators) over the calibration pairs, linearly interpolated between knots,
linearly extrapolated outside them with the boundary-segment slopes, plus a
tiny *strictness* slope so the fitted function is **strictly** increasing.
Strict monotonicity is the load-bearing property: for any evaluation set,
``kendall_tau(map(proxy), truth) == kendall_tau(proxy, truth)`` — the map
can never degrade the proxy's ranking (property-tested in
``tests/fleet/test_transfer_properties.py``).

Vectorized :meth:`MonotoneMap.transfer_many` follows the PR 1 cost-table
conventions: the scalar and batch paths are bit-identical, so pipelines may
mix them freely.  Maps serialize to plain-JSON payloads (bit-exact round
trip — JSON encodes doubles via shortest-repr) so a calibrated fleet can be
saved next to an archive and reloaded by the service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..hardware.device import DeviceProfile
from ..hardware.latency import LatencyModel
from ..search_space.space import SearchSpace

__all__ = ["MonotoneMap", "ProxyTransfer", "isotonic_fit"]

#: Relative strictness slope: large enough to break interpolation-plateau
#: ties in float64, small enough to be invisible in any latency estimate.
_STRICT_EPS = 1e-9


def isotonic_fit(x: np.ndarray, y: np.ndarray, w: np.ndarray):
    """Weighted isotonic regression of ``y`` on sorted unique ``x``.

    Classic pool-adjacent-violators: merge neighbouring blocks while any
    weighted block mean decreases.  Returns the non-decreasing fitted value
    per input point.  ``x`` must be strictly increasing (callers collapse
    ties first); ``w`` are positive weights.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if not (len(x) == len(y) == len(w)):
        raise ValueError("x, y, w must be aligned")
    # blocks as (value, weight, count) stacks
    values: List[float] = []
    weights: List[float] = []
    counts: List[int] = []
    for yi, wi in zip(y.tolist(), w.tolist()):
        values.append(yi)
        weights.append(wi)
        counts.append(1)
        while len(values) > 1 and values[-2] >= values[-1]:
            wa, wb = weights[-2], weights[-1]
            merged = (values[-2] * wa + values[-1] * wb) / (wa + wb)
            values[-2:] = [merged]
            weights[-2:] = [wa + wb]
            counts[-2:] = [counts[-2] + counts[-1]]
    return np.repeat(values, counts)


@dataclass(frozen=True)
class MonotoneMap:
    """A strictly increasing piecewise-linear map, fit by isotonic PAVA.

    Attributes
    ----------
    x_knots / y_knots:
        Strictly-increasing proxy values and their (non-decreasing)
        isotonic fits; the map interpolates between them.
    strict_slope:
        Tiny positive slope added as ``strict_slope · (x − x_knots[0])`` so
        the overall map is *strictly* increasing even across isotonic
        plateaus — rank-preservation by construction.
    calibration_size:
        Number of calibration pairs the fit consumed (provenance).
    """

    x_knots: np.ndarray
    y_knots: np.ndarray
    strict_slope: float
    calibration_size: int = 0

    def __post_init__(self) -> None:
        x = np.asarray(self.x_knots, dtype=np.float64)
        y = np.asarray(self.y_knots, dtype=np.float64)
        if x.ndim != 1 or x.shape != y.shape or len(x) == 0:
            raise ValueError("knots must be aligned non-empty 1-D arrays")
        if len(x) > 1 and not (np.diff(x) > 0).all():
            raise ValueError("x_knots must be strictly increasing")
        if len(y) > 1 and not (np.diff(y) >= 0).all():
            raise ValueError("y_knots must be non-decreasing")
        if not np.isfinite(self.strict_slope) or self.strict_slope < 0:
            raise ValueError("strict_slope must be finite and non-negative")
        object.__setattr__(self, "x_knots", x)
        object.__setattr__(self, "y_knots", y)

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, proxy: Sequence[float], target: Sequence[float]
            ) -> "MonotoneMap":
        """Fit from calibration pairs (proxy prediction, target measurement).

        Ties in ``proxy`` are collapsed to their mean target (weighted by
        multiplicity) before PAVA, which keeps the knot abscissae strictly
        increasing.
        """
        x = np.asarray(proxy, dtype=np.float64)
        y = np.asarray(target, dtype=np.float64)
        if x.ndim != 1 or x.shape != y.shape:
            raise ValueError("proxy and target must be aligned 1-D arrays")
        if len(x) < 2:
            raise ValueError("need at least 2 calibration pairs")
        if not (np.isfinite(x).all() and np.isfinite(y).all()):
            raise ValueError("calibration pairs must be finite")
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        ux, start = np.unique(xs, return_index=True)
        counts = np.diff(np.append(start, len(xs)))
        uy = np.add.reduceat(ys, start) / counts
        fitted = isotonic_fit(ux, uy, counts.astype(np.float64))
        x_span = float(ux[-1] - ux[0])
        y_span = float(fitted[-1] - fitted[0])
        if x_span > 0:
            slope = _STRICT_EPS * max(y_span, abs(float(fitted[-1])), 1.0) \
                / x_span
        else:
            slope = _STRICT_EPS
        return cls(x_knots=ux, y_knots=fitted, strict_slope=slope,
                   calibration_size=len(x))

    # ------------------------------------------------------------------
    def transfer_many(self, proxy_values: np.ndarray) -> np.ndarray:
        """Vectorized map: ``(N,)`` proxy values → ``(N,)`` target values.

        Interpolates between knots, extrapolates with the boundary-segment
        slopes outside them, and adds the strictness term.  The scalar
        :meth:`transfer` computes the identical expression, so batch and
        scalar calls agree bit-for-bit (property-tested).
        """
        x = np.asarray(proxy_values, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError(f"proxy_values must be 1-D, got shape {x.shape}")
        xk, yk = self.x_knots, self.y_knots
        out = np.interp(x, xk, yk)
        if len(xk) > 1:
            left_slope = (yk[1] - yk[0]) / (xk[1] - xk[0])
            right_slope = (yk[-1] - yk[-2]) / (xk[-1] - xk[-2])
            lo = x < xk[0]
            hi = x > xk[-1]
            if lo.any():
                out[lo] = yk[0] + left_slope * (x[lo] - xk[0])
            if hi.any():
                out[hi] = yk[-1] + right_slope * (x[hi] - xk[-1])
        return out + self.strict_slope * (x - xk[0])

    def transfer(self, proxy_value: float) -> float:
        """Scalar map — bit-identical to a length-1 :meth:`transfer_many`."""
        return float(self.transfer_many(
            np.asarray([proxy_value], dtype=np.float64))[0])

    def inverse(self, target_value: float) -> float:
        """Proxy value whose transfer equals ``target_value``.

        Strict monotonicity makes the map bijective, which is what lets a
        *search* be retargeted without touching the engine: constraining
        ``map(metric) ≤ T`` on the target device is exactly constraining
        ``metric ≤ map⁻¹(T)`` on the proxy — so ``repro fleet search``
        inverts the latency budget once and runs the ordinary proxy-device
        search.  Between knots the map is linear, so the inverse is the
        piecewise-linear interpolation of the swapped knots (with the
        strictness term folded into the ordinates) and is exact.
        """
        y = float(target_value)
        xk = self.x_knots
        # strictly increasing ordinates: isotonic fit + strictness term
        yk = self.y_knots + self.strict_slope * (xk - xk[0])
        if len(xk) == 1:
            return float(xk[0] + (y - yk[0]) / self.strict_slope)
        if y < yk[0]:
            slope = (yk[1] - yk[0]) / (xk[1] - xk[0])
            return float(xk[0] + (y - yk[0]) / slope)
        if y > yk[-1]:
            slope = (yk[-1] - yk[-2]) / (xk[-1] - xk[-2])
            return float(xk[-1] + (y - yk[-1]) / slope)
        return float(np.interp(y, yk, xk))

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Plain-JSON payload (archive-style serialization)."""
        return {
            "x_knots": self.x_knots.tolist(),
            "y_knots": self.y_knots.tolist(),
            "strict_slope": self.strict_slope,
            "calibration_size": self.calibration_size,
        }

    @staticmethod
    def from_payload(payload: Mapping) -> "MonotoneMap":
        try:
            return MonotoneMap(
                x_knots=np.asarray(payload["x_knots"], dtype=np.float64),
                y_knots=np.asarray(payload["y_knots"], dtype=np.float64),
                strict_slope=float(payload["strict_slope"]),
                calibration_size=int(payload.get("calibration_size", 0)),
            )
        except KeyError as exc:
            raise ValueError(f"monotone-map payload missing {exc}") from None


# ----------------------------------------------------------------------
# Fleet-level calibration
# ----------------------------------------------------------------------

class ProxyTransfer:
    """Per-target monotone maps over one proxy predictor.

    ``calibrate`` measures one shared calibration set (default 100
    architectures — ~100× smaller than the paper's per-device campaign) on
    every target device of the fleet and fits a :class:`MonotoneMap` per
    device from the proxy predictor's outputs; ``predict_device`` /
    ``transfer_many`` then retarget any number of proxy predictions to any
    device with one interpolation pass.
    """

    def __init__(self, maps: Dict[str, MonotoneMap], *,
                 proxy_device: str = "",
                 calibration_seed: int = 0) -> None:
        self.maps = dict(maps)
        self.proxy_device = proxy_device
        self.calibration_seed = calibration_seed

    @property
    def devices(self) -> List[str]:
        return sorted(self.maps)

    def __len__(self) -> int:
        return len(self.maps)

    def map_for(self, device: str) -> MonotoneMap:
        try:
            return self.maps[device]
        except KeyError:
            raise ValueError(
                f"no transfer map calibrated for device {device!r}; "
                f"calibrated: {', '.join(self.devices) or '(none)'}"
            ) from None

    def transfer_many(self, device: str,
                      proxy_values: np.ndarray) -> np.ndarray:
        """Retarget a batch of proxy-predicted latencies to one device."""
        return self.map_for(device).transfer_many(proxy_values)

    def predict_device(self, device: str, proxy_predictor,
                       archs) -> np.ndarray:
        """Proxy predictions of ``archs``, retargeted to ``device``."""
        return self.transfer_many(
            device, proxy_predictor.predict_population(archs))

    # ------------------------------------------------------------------
    @classmethod
    def calibrate(cls, proxy_predictor, space: SearchSpace,
                  devices: Sequence[DeviceProfile], *,
                  num_samples: int = 100, seed: int = 0,
                  proxy_device: str = "",
                  fleet=None) -> "ProxyTransfer":
        """Fit one map per target device from a shared calibration set.

        One set of ``num_samples`` architectures is sampled once; each
        device contributes only its own noisy measurements of that set
        (device ``i`` measures under ``default_rng([seed, 1, i])``, so a
        device's calibration stream does not depend on fleet composition
        order — recalibrating a grown fleet reuses identical measurements
        for the devices already present).

        ``fleet`` (a :class:`~repro.runtime.parallel.RunFleet`) fans the
        per-device measurement + fit across worker processes.  Because
        every device already owns an independent RNG stream, the fanned
        calibration is bit-identical to the sequential one — the shared
        ``ops``/``proxy_values`` arrays are built pre-fork and inherited
        copy-on-write.
        """
        if num_samples < 2:
            raise ValueError("need at least 2 calibration samples")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device names in fleet")
        ops = space.sample_indices(num_samples,
                                   np.random.default_rng([seed, 0]))
        proxy_values = proxy_predictor.predict_population(ops)

        def fit_device(i: int, device: DeviceProfile) -> MonotoneMap:
            model = LatencyModel(space, device)
            measured = model.measure_many(
                ops, np.random.default_rng([seed, 1, i]))
            return MonotoneMap.fit(proxy_values, measured)

        if fleet is not None and len(devices) > 1:
            from ..runtime.parallel import FleetTask
            tasks = [
                FleetTask(name=device.name,
                          fn=lambda ctx, i=i, device=device:
                          fit_device(i, device),
                          header={"device": device.name})
                for i, device in enumerate(devices)
            ]
            fitted = fleet.run(tasks).values()  # loud on any failure
            maps = {device.name: fmap
                    for device, fmap in zip(devices, fitted)}
        else:
            maps = {device.name: fit_device(i, device)
                    for i, device in enumerate(devices)}
        return cls(maps, proxy_device=proxy_device, calibration_seed=seed)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "proxy_device": self.proxy_device,
            "calibration_seed": self.calibration_seed,
            "maps": {name: m.to_payload() for name, m in self.maps.items()},
        }

    @staticmethod
    def from_payload(payload: Mapping) -> "ProxyTransfer":
        try:
            maps = {str(name): MonotoneMap.from_payload(m)
                    for name, m in payload["maps"].items()}
        except (KeyError, AttributeError):
            raise ValueError("proxy-transfer payload needs a 'maps' mapping")
        return ProxyTransfer(
            maps,
            proxy_device=str(payload.get("proxy_device", "")),
            calibration_seed=int(payload.get("calibration_seed", 0)),
        )
