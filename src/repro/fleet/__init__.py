"""`repro.fleet` — parametric device fleets + proxy-device latency transfer.

Turns the single-device reproduction into an N-device retargeting system
(ROADMAP item 1, "One Proxy Device Is Enough" in PAPERS.md):

* :mod:`repro.fleet.generator` — seeded parametric hardware families
  (``phone``, ``mcu``, ``server-cpu``, ``edge-gpu``) whose members resolve
  by name (``phone-03``) through :func:`repro.hardware.device.
  resolve_device` everywhere devices are accepted;
* :mod:`repro.fleet.transfer` — strictly-monotone isotonic maps from
  proxy-predicted latency to each target device, fit from ~100 calibration
  pairs instead of a fresh 10k-measurement campaign per device;
* :mod:`repro.fleet.retarget` — one archive sweep (or one search) served
  to every device of the fleet: per-device constraint satisfaction and
  Pareto fronts through the existing archive/query/serve stack.

Importing this package registers the fleet name resolver.
"""

from .generator import (
    DEFAULT_FLEET_SEED,
    FLEET_FAMILIES,
    FamilySpec,
    fleet_device,
    fleet_name,
    generate_device,
    generate_fleet,
    parse_fleet_name,
    register_family,
)
from .retarget import (
    device_report,
    evaluate_transfer,
    retarget_archive,
    retarget_index,
)
from .transfer import MonotoneMap, ProxyTransfer, isotonic_fit

__all__ = [
    "DEFAULT_FLEET_SEED",
    "FLEET_FAMILIES",
    "FamilySpec",
    "MonotoneMap",
    "ProxyTransfer",
    "device_report",
    "evaluate_transfer",
    "fleet_device",
    "fleet_name",
    "generate_device",
    "generate_fleet",
    "isotonic_fit",
    "parse_fleet_name",
    "register_family",
    "retarget_archive",
    "retarget_index",
]
