"""Search results and trajectories.

:class:`SearchTrajectory` records, per search epoch, everything the
stability/convergence figures of the paper plot (Figures 7 and 8 Right):
the predicted metric of the current architecture, the multiplier λ, the
validation loss, and the derived architecture itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..search_space.space import Architecture

__all__ = ["SearchTrajectory", "SearchResult"]


@dataclass
class SearchTrajectory:
    """Per-epoch time series of one search run."""

    epochs: List[int] = field(default_factory=list)
    predicted_metric: List[float] = field(default_factory=list)
    lambda_values: List[float] = field(default_factory=list)
    valid_loss: List[float] = field(default_factory=list)
    temperature: List[float] = field(default_factory=list)
    architectures: List[Architecture] = field(default_factory=list)

    def record(self, epoch: int, metric: float, lam: float, loss: float,
               tau: float, arch: Architecture) -> None:
        self.epochs.append(epoch)
        self.predicted_metric.append(metric)
        self.lambda_values.append(lam)
        self.valid_loss.append(loss)
        self.temperature.append(tau)
        self.architectures.append(arch)

    def __len__(self) -> int:
        return len(self.epochs)

    # ------------------------------------------------------------------
    # Checkpoint support: the trajectory as a flat dict of arrays that
    # round-trips exactly through ``.npz`` (architectures as an (E, L)
    # int64 matrix of operator indices).
    def as_arrays(self) -> Dict[str, np.ndarray]:
        archs = (
            np.array([a.op_indices for a in self.architectures], dtype=np.int64)
            if self.architectures
            else np.zeros((0, 0), dtype=np.int64)
        )
        return {
            "traj_epochs": np.array(self.epochs, dtype=np.int64),
            "traj_predicted_metric": np.array(self.predicted_metric,
                                              dtype=np.float64),
            "traj_lambda_values": np.array(self.lambda_values, dtype=np.float64),
            "traj_valid_loss": np.array(self.valid_loss, dtype=np.float64),
            "traj_temperature": np.array(self.temperature, dtype=np.float64),
            "traj_architectures": archs,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "SearchTrajectory":
        """Rebuild a trajectory from :meth:`as_arrays` output (strict)."""
        for key in ("traj_epochs", "traj_predicted_metric", "traj_lambda_values",
                    "traj_valid_loss", "traj_temperature", "traj_architectures"):
            if key not in arrays:
                raise KeyError(f"missing trajectory array {key}")
        return cls(
            epochs=[int(e) for e in arrays["traj_epochs"]],
            predicted_metric=[float(x) for x in arrays["traj_predicted_metric"]],
            lambda_values=[float(x) for x in arrays["traj_lambda_values"]],
            valid_loss=[float(x) for x in arrays["traj_valid_loss"]],
            temperature=[float(x) for x in arrays["traj_temperature"]],
            architectures=[
                Architecture(tuple(int(i) for i in row))
                for row in arrays["traj_architectures"]
            ],
        )


@dataclass
class SearchResult:
    """Outcome of one search run.

    Attributes
    ----------
    architecture:
        The derived architecture (per-layer argmax of α, Eq. 4).
    predicted_metric:
        Predictor estimate of the constrained metric for ``architecture``.
    target:
        The constraint T the run was asked to satisfy.
    final_lambda:
        The learned multiplier at termination.
    trajectory:
        Per-epoch series (see :class:`SearchTrajectory`).
    search_paths_per_step:
        Operator instances executed per supernet forward — 1·L for
        single-path LightNAS, K·L for multi-path baselines (Table 1's
        "search complexity" row).
    num_search_steps:
        Total optimisation steps taken (cost accounting).
    metric_name:
        Which hardware metric was constrained ("latency_ms", "energy_mj").
    """

    architecture: Architecture
    predicted_metric: float
    target: float
    final_lambda: float
    trajectory: SearchTrajectory
    search_paths_per_step: int
    num_search_steps: int
    metric_name: str = "latency_ms"

    @property
    def constraint_error(self) -> float:
        """Relative deviation |METRIC − T| / T of the returned architecture."""
        return abs(self.predicted_metric - self.target) / self.target

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable digest (used by the benchmark reports)."""
        return {
            "architecture": list(self.architecture.op_indices),
            "metric_name": self.metric_name,
            "predicted_metric": round(self.predicted_metric, 4),
            "target": self.target,
            "constraint_error": round(self.constraint_error, 5),
            "final_lambda": round(self.final_lambda, 5),
            "num_search_steps": self.num_search_steps,
            "search_paths_per_step": self.search_paths_per_step,
        }

    def to_json(self) -> str:
        return json.dumps(self.summary())
