"""The learned constraint multiplier λ (§3.4, Eq. 11).

Previous hardware-aware differentiable NAS treats the accuracy/latency
trade-off coefficient λ as a hand-tuned constant, requiring ≈10 search runs
per target (§2.2).  LightNAS instead treats λ as a *parameter optimised by
gradient ascent*::

    λ* = λ + η_λ · ∂L/∂λ = λ + η_λ · (LAT(α)/T − 1)

which is the dual ascent of a Lagrangian: λ grows while the constraint is
violated (LAT > T), strengthening the latency penalty on α, and shrinks —
through zero into negative values — while LAT < T, which *rewards* latency
until the constraint is met with equality.  The fixed point satisfies
``LAT(α) = T``.

:class:`LagrangeMultiplier` wraps the scalar parameter and its ascent
update, and records the λ trajectory for the Figure-7/8 convergence plots.
"""

from __future__ import annotations

from typing import List

from .. import nn

__all__ = ["LagrangeMultiplier"]


class LagrangeMultiplier:
    """Scalar λ with gradient-ascent updates.

    Parameters
    ----------
    lr:
        Ascent learning rate η_λ (the paper fixes 5e-4).
    initial:
        Starting value (the paper initialises λ = 0).
    clamp_min:
        Optional lower bound.  The default (``None``) allows λ < 0, which
        is required for the constraint to *pull up* architectures whose
        latency is below target — this is what "strictly satisfying
        LAT(α)=T" relies on.
    """

    def __init__(self, lr: float = 5e-4, initial: float = 0.0,
                 clamp_min: float | None = None) -> None:
        if lr <= 0:
            raise ValueError("λ learning rate must be positive")
        self.param = nn.Parameter([initial], name="lambda")
        self._optimizer = nn.GradientAscent([self.param], lr=lr, floor=clamp_min)
        self.history: List[float] = []

    @property
    def value(self) -> float:
        return float(self.param.data[0])

    def as_tensor(self) -> nn.Tensor:
        """The λ parameter, for use inside the differentiable objective."""
        return self.param

    def ascend(self) -> float:
        """Apply one ascent step from the gradient accumulated in ``param``.

        The gradient arrives via ``loss.backward()`` on the Eq. (10)
        objective, where ``∂L/∂λ = LAT(α)/T − 1`` falls out automatically.
        Returns the new λ and appends it to :attr:`history`.
        """
        self._optimizer.step()
        self.param.zero_grad()
        self.history.append(self.value)
        return self.value
