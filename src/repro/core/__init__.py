"""`repro.core` — the paper's contribution: the LightNAS search engine.

Single-path Gumbel sampling with straight-through binarisation (§3.3), the
hardware-constrained objective of Eq. (10), gradient-ascent λ optimisation
(Eq. 11), and the orchestrating :class:`LightNAS` engine that finds an
architecture satisfying a hard metric constraint in one search run.
"""

from .gumbel import GumbelSampler, TemperatureSchedule
from .lambda_opt import LagrangeMultiplier
from .lightnas import LightNAS, LightNASConfig
from .multi_objective import Constraint, MultiConstraintConfig, MultiConstraintLightNAS
from .objective import ConstrainedObjective
from .result import SearchResult, SearchTrajectory

__all__ = [
    "GumbelSampler",
    "TemperatureSchedule",
    "LagrangeMultiplier",
    "ConstrainedObjective",
    "LightNAS",
    "LightNASConfig",
    "Constraint",
    "MultiConstraintConfig",
    "MultiConstraintLightNAS",
    "SearchResult",
    "SearchTrajectory",
]
