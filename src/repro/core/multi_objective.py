"""Multi-constraint extension: search under several hardware budgets at once.

The paper's closing claim — "LightNAS can be effortlessly plugged into
various scenarios, in which we only need to replace the latency predictor
with the predictor of the target scenario" — generalises naturally from one
constraint to many.  This module implements the extension:

    minimize  L_valid(w*(α), α) + Σ_i λ_i · (M_i(α)/T_i − 1)_+ dynamics

with one gradient-ascent multiplier per constraint.  Unlike the
single-constraint engine (which drives an *equality* ``M = T`` — λ may go
negative to pull the metric up), several equalities are generically
infeasible simultaneously, so the multi-constraint form treats each budget
as an *inequality* ``M_i ≤ T_i``: multipliers are clamped at zero
(a standard dual for inequality constraints), growing while a budget is
violated and decaying to zero once it is met.  At least one constraint is
active at the optimum (the binding budget), which the returned result
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import Architecture, SearchSpace
from .gumbel import GumbelSampler, TemperatureSchedule
from .lambda_opt import LagrangeMultiplier
from .result import SearchResult, SearchTrajectory

__all__ = ["Constraint", "MultiConstraintConfig", "MultiConstraintLightNAS"]


@dataclass
class Constraint:
    """One hardware budget: a fitted predictor plus a target ceiling."""

    name: str
    predictor: object  # MLPPredictor or AnalyticCostPredictor (duck typed)
    target: float

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError(f"constraint {self.name!r} needs a positive target")
        if not getattr(self.predictor, "fitted", False):
            raise ValueError(f"constraint {self.name!r} has an unfitted predictor")


@dataclass
class MultiConstraintConfig:
    """Configuration of a multi-budget search (surrogate mode)."""

    space: SearchSpace
    constraints: Sequence[Constraint]
    epochs: int = 90
    steps_per_epoch: int = 50
    alpha_lr: float = 1e-3
    alpha_weight_decay: float = 1e-3
    lambda_lr: float = 0.01
    penalty_mu: float = 1.0
    tau_initial: float = 5.0
    tau_floor: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.constraints:
            raise ValueError("need at least one constraint")
        names = [c.name for c in self.constraints]
        if len(set(names)) != len(names):
            raise ValueError("constraint names must be unique")


class MultiConstraintLightNAS:
    """One-time search satisfying several budgets simultaneously."""

    def __init__(self, config: MultiConstraintConfig,
                 oracle: Optional[AccuracyOracle] = None) -> None:
        self.config = config
        self.space = config.space
        self.oracle = oracle or AccuracyOracle(self.space)
        self.rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    def _metric_tensor(self, constraint: Constraint, gates: nn.Tensor) -> nn.Tensor:
        flat = nn.ops.reshape(gates, (1, gates.shape[0] * gates.shape[1]))
        return constraint.predictor.predict_tensor(flat)[0]

    def search(self, verbose: bool = False) -> Tuple[SearchResult, Dict[str, float]]:
        """Run the search; returns ``(result, final_metrics_by_name)``.

        The :class:`SearchResult`'s scalar fields describe the *first*
        constraint; the returned dict reports every constraint's predicted
        metric for the derived architecture.
        """
        cfg = self.config
        alpha = nn.Parameter(self.space.uniform_alpha(), name="alpha")
        alpha_opt = nn.Adam([alpha], lr=cfg.alpha_lr,
                            weight_decay=cfg.alpha_weight_decay)
        alpha_schedule = nn.CosineSchedule(cfg.alpha_lr, cfg.epochs,
                                           final_lr=cfg.alpha_lr * 0.1)
        # inequality duals: clamped at zero
        multipliers = {c.name: LagrangeMultiplier(lr=cfg.lambda_lr, clamp_min=0.0)
                       for c in cfg.constraints}
        schedule = TemperatureSchedule(cfg.tau_initial, cfg.tau_floor, cfg.epochs)
        sampler = GumbelSampler(schedule, self.rng)
        trajectory = SearchTrajectory()
        steps = 0

        for epoch in range(cfg.epochs):
            alpha_schedule.apply(alpha_opt, epoch)
            for _ in range(cfg.steps_per_epoch):
                _, gates = sampler.sample_gates(alpha, epoch)
                _, det_gates = sampler.sample_gates(alpha, epoch,
                                                    deterministic=True)
                loss = self.oracle.differentiable_loss(gates)
                for constraint in cfg.constraints:
                    lam = multipliers[constraint.name]
                    metric = self._metric_tensor(constraint, det_gates)
                    excess = metric * (1.0 / constraint.target) - 1.0
                    loss = loss + nn.ops.reshape(lam.as_tensor(), ()) * excess
                    if cfg.penalty_mu > 0:
                        # damp only actual violations (inequality semantics)
                        violation = nn.ops.relu(excess)
                        loss = loss + violation * violation * (0.5 * cfg.penalty_mu)
                alpha_opt.zero_grad()
                for lam in multipliers.values():
                    lam.param.zero_grad()
                loss.backward()
                alpha_opt.step()
                for lam in multipliers.values():
                    lam.ascend()
                steps += 1

            arch = sampler.derive_architecture(alpha)
            first = cfg.constraints[0]
            trajectory.record(
                epoch, first.predictor.predict_arch(arch),
                multipliers[first.name].value, float(loss.data),
                schedule.at(epoch), arch,
            )
            if verbose:
                status = ", ".join(
                    f"{c.name}={c.predictor.predict_arch(arch):.2f}/{c.target:g}"
                    for c in cfg.constraints)
                print(f"[multi] epoch {epoch:3d} {status}")

        arch = sampler.derive_architecture(alpha)
        metrics = {c.name: c.predictor.predict_arch(arch)
                   for c in cfg.constraints}
        first = cfg.constraints[0]
        result = SearchResult(
            architecture=arch,
            predicted_metric=metrics[first.name],
            target=first.target,
            final_lambda=multipliers[first.name].value,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=steps,
            metric_name=first.name,
        )
        return result, metrics
