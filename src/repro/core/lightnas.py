"""The LightNAS search engine (§3.3–3.4): you only search once.

One search run takes a *hard* metric constraint T (latency in ms, or any
metric with a fitted predictor) and returns an architecture whose predicted
metric converges to T, with no manual λ tuning:

* architecture parameters ``α`` are optimised by Adam *descent* on Eq. (10),
* supernet weights ``w`` (supernet mode) by SGD descent,
* the constraint multiplier ``λ`` by gradient *ascent* (Eq. 11).

Two validation-loss modes share the engine:

``mode="supernet"``
    The paper's bi-level protocol: a real weight-sharing supernet is trained
    on a (synthetic) proxy task; ``L_valid`` is cross-entropy of the sampled
    single path on validation batches.  The first ``warmup_epochs`` update
    only ``w`` (the paper freezes α for 10 of 90 epochs), then ``w`` and
    ``α`` updates alternate every epoch.

``mode="surrogate"``
    ``L_valid`` is the differentiable capacity loss of the
    :class:`repro.proxy.accuracy_model.AccuracyOracle` — the fast path used
    by the full-space benchmarks, where training a 22-layer ImageNet
    supernet on one CPU core is not an option.  The α/λ dynamics (the
    paper's contribution) are identical.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..predictor.dataset import collect_latency_dataset
from ..predictor.mlp import MLPPredictor
from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..proxy.dataset import Batch, SyntheticTask
from ..proxy.supernet import SuperNet
from ..runtime.checkpoint import (
    CheckpointError,
    CheckpointManager,
    fingerprint_of,
    load_checkpoint,
    resolve_checkpoint,
    restore_rng,
    rng_state_json,
)
from ..runtime.telemetry import NullJournal, PhaseTimers, RunJournal
from ..search_space.macro import MacroConfig
from ..search_space.space import Architecture, SearchSpace
from .gumbel import GumbelSampler, TemperatureSchedule
from .lambda_opt import LagrangeMultiplier
from .objective import ConstrainedObjective
from .result import SearchResult, SearchTrajectory

__all__ = ["LightNASConfig", "LightNAS", "METRIC_ALIASES", "CANONICAL_METRICS"]

#: canonical unit-suffixed metric names used across predictors and results
CANONICAL_METRICS = ("latency_ms", "energy_mj", "macs_m")

#: accepted shorthand → canonical name (normalised in one place:
#: :meth:`LightNASConfig.__post_init__`)
METRIC_ALIASES = {"latency": "latency_ms", "energy": "energy_mj",
                  "macs": "macs_m"}


@dataclass
class LightNASConfig:
    """Configuration of one LightNAS run.

    The defaults follow §4.1 where a setting exists in the paper (90
    epochs, 10 warmup epochs, Adam(1e-3, wd 1e-3) for α, SGD(0.1, 0.9,
    3e-5) for w, ascent lr 5e-4 for λ, τ: 5 → 0).
    """

    space: SearchSpace = field(default_factory=SearchSpace)
    target: float = 24.0
    metric_name: str = "latency_ms"
    mode: str = "surrogate"

    epochs: int = 90
    steps_per_epoch: int = 30
    warmup_epochs: int = 10
    batch_size: int = 128

    alpha_lr: float = 1e-3
    alpha_weight_decay: float = 1e-3
    w_lr: float = 0.1
    w_momentum: float = 0.9
    w_weight_decay: float = 3e-5
    lambda_lr: float = 5e-4
    lambda_initial: float = 0.0
    #: augmented-Lagrangian damping weight (0 disables; see objective.py)
    penalty_mu: float = 1.0

    tau_initial: float = 5.0
    tau_floor: float = 0.1

    seed: int = 0

    #: nn compute dtype — "float64" (default) is bit-identical to the
    #: historical engine; "float32" halves memory traffic for supernet runs
    compute_dtype: str = "float64"
    #: when True, per-op wall time is profiled and journalled every epoch
    profile_ops: bool = False
    #: compile supernet train/α/warmup steps into trace-once/replay-many
    #: plans (bit-identical to the eager engine; ``False`` or the
    #: ``repro.nn.plans(False)`` context falls back to eager execution)
    use_plans: bool = True
    #: fuse replayed kernels (conv/BN folding, elementwise chain packing,
    #: stacked multi-path 1×1 convs) and compile whole epochs into chained
    #: replay schedules.  Every fused site is accepted only after a
    #: build-time bitwise probe, so results are identical either way; set
    #: ``False`` (or pass ``--no-fusion`` on the CLI, or wrap in
    #: ``repro.nn.fusion(False)``) to replay unfused plans when isolating a
    #: suspected fusion issue.  Excluded from the config fingerprint:
    #: checkpoints are interchangeable across this flag.
    use_fusion: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("surrogate", "supernet"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.compute_dtype not in ("float64", "float32"):
            raise ValueError(
                f"unknown compute_dtype {self.compute_dtype!r}; expected "
                "'float64' or 'float32'"
            )
        if self.target <= 0:
            raise ValueError("constraint target must be positive")
        if self.epochs <= self.warmup_epochs and self.mode == "supernet":
            raise ValueError("epochs must exceed warmup_epochs in supernet mode")
        self.metric_name = METRIC_ALIASES.get(self.metric_name, self.metric_name)
        if self.metric_name not in CANONICAL_METRICS:
            raise ValueError(
                f"unknown metric {self.metric_name!r}; expected one of "
                f"{CANONICAL_METRICS} (or shorthand {tuple(METRIC_ALIASES)})"
            )

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, latency_target_ms: float, space: Optional[SearchSpace] = None,
              seed: int = 0, **overrides) -> "LightNASConfig":
        """Full-space configuration with the paper's hyper-parameters.

        Uses surrogate mode by default (see module docstring); pass
        ``mode="supernet"`` plus a task for the bi-level protocol.
        """
        defaults = dict(
            space=space or SearchSpace(),
            target=latency_target_ms,
            epochs=90,
            steps_per_epoch=50,
            lambda_lr=0.01,
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def tiny(cls, latency_target_ms: float = 1.0, seed: int = 0,
             mode: str = "supernet", **overrides) -> "LightNASConfig":
        """Scaled-down configuration for tests / the quickstart example."""
        defaults = dict(
            space=SearchSpace(MacroConfig.tiny()),
            target=latency_target_ms,
            mode=mode,
            epochs=16,
            steps_per_epoch=4,
            warmup_epochs=2,
            batch_size=16,
            lambda_lr=0.05,
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)


class _EpochPlan:
    """A whole epoch compiled as a chain of step-plan replays.

    Once every step of an epoch replays its compiled :class:`~repro.nn.plan.
    StepPlan`, the epoch itself becomes a flat schedule: per step, one plan
    replay plus the pre-bound in-place optimizer updates for exactly the
    leaves that plan produces gradients for.  Replaying the chain skips the
    per-step plan-cache probe, ``zero_grad`` sweeps (leaf slots are
    overwritten by each replay's gradient assignment), and optimizer
    ``grad is None`` scans.  Instances live in the owning
    :class:`~repro.nn.plan.StepProgram`'s epoch-plan LRU, so they share its
    capacity budget and journal counters.

    ``sels`` bakes the per-step sampled paths: w-epochs key on them (a new
    selection sequence is simply a different epoch plan), while α-epochs
    verify them step-by-step against the live selection signature and
    invalidate gracefully on drift.  A chained step plan that was evicted
    from the LRU (``plan.released``) poisons the whole epoch plan — its
    arena buffers may have been reused — so holders must check
    :meth:`stale` before replaying.
    """

    __slots__ = ("kind", "step_plans", "updates", "sels")

    def __init__(self, kind: str, step_plans: list, updates: list,
                 sels: tuple) -> None:
        self.kind = kind
        self.step_plans = step_plans
        self.updates = updates
        self.sels = sels

    def stale(self) -> bool:
        """True when any chained step plan was evicted (never replay then)."""
        return any(plan.released for plan in self.step_plans)


class LightNAS:
    """The one-time hardware-constrained differentiable search.

    Parameters
    ----------
    config:
        Run configuration.
    predictor:
        A fitted metric predictor.  If omitted, a latency predictor is
        trained on a fresh simulated measurement campaign (1,500 samples —
        enough for search-grade accuracy; the benchmarks use the full
        10,000-sample protocol).
    oracle:
        Accuracy oracle for surrogate mode (defaults to the calibrated
        ImageNet oracle of the config's space).
    task:
        Proxy classification task for supernet mode (defaults to a
        :class:`SyntheticTask` matching the macro resolution).
    """

    def __init__(
        self,
        config: LightNASConfig,
        predictor: Optional[MLPPredictor] = None,
        oracle: Optional[AccuracyOracle] = None,
        task: Optional[SyntheticTask] = None,
    ) -> None:
        self.config = config
        self.space = config.space
        self.rng = np.random.default_rng(config.seed)
        self.predictor = predictor or self._default_predictor()
        self.objective = ConstrainedObjective(self.predictor, config.target,
                                              mu=config.penalty_mu)
        self.oracle = oracle
        self.task = task
        self.supernet: Optional[SuperNet] = None
        if config.mode == "surrogate" and self.oracle is None:
            self.oracle = AccuracyOracle(self.space)
        if config.mode == "supernet":
            if self.task is None:
                macro = self.space.macro
                self.task = SyntheticTask(
                    num_classes=macro.num_classes,
                    resolution=macro.input_resolution,
                    seed=config.seed,
                )
            # supernet weights live in the configured compute dtype;
            # float64 (default) keeps seeded searches bit-identical
            with nn.dtype_scope(config.compute_dtype):
                self.supernet = SuperNet(self.space, self.rng)
        # one plan cache covers all step kinds; keys are prefixed with the
        # step family ("w" / "alpha" / "warmup") plus the sampled path and
        # batch shape, so Gumbel samples re-hit their compiled plan
        self.programs = nn.StepProgram("lightnas")
        self._use_plans = config.use_plans and config.mode == "supernet"

    def _default_predictor(self) -> MLPPredictor:
        latency_model = LatencyModel(self.space)
        campaign_rng = np.random.default_rng(self.config.seed + 101)
        data = collect_latency_dataset(latency_model, 1500, campaign_rng)
        train, valid = data.split(0.8, campaign_rng)
        predictor = MLPPredictor(self.space, seed=self.config.seed)
        predictor.fit(train, epochs=120, batch_size=256, lr=3e-3, weight_decay=0.0)
        return predictor

    # ------------------------------------------------------------------
    def _fingerprint(self) -> str:
        """Hash of everything that determines the search dynamics."""
        cfg = self.config
        parts = [
            "lightnas", cfg.mode, cfg.target, cfg.metric_name, cfg.epochs,
            cfg.steps_per_epoch, cfg.warmup_epochs, cfg.batch_size,
            cfg.alpha_lr, cfg.alpha_weight_decay, cfg.w_lr, cfg.w_momentum,
            cfg.w_weight_decay, cfg.lambda_lr, cfg.lambda_initial,
            cfg.penalty_mu, cfg.tau_initial, cfg.tau_floor, cfg.seed,
            self.space.num_layers, self.space.num_operators,
            repr(self.space.macro),
        ]
        # appended only when non-default so historical float64 checkpoints
        # keep their fingerprints
        if cfg.compute_dtype != "float64":
            parts.append(cfg.compute_dtype)
        return fingerprint_of(*parts)

    def _capture_state(self, epoch: int, steps: int, alpha: nn.Parameter,
                       alpha_opt: nn.Optimizer, lam: LagrangeMultiplier,
                       trajectory: SearchTrajectory,
                       w_opt: Optional[nn.Optimizer]) -> Tuple[Dict, Dict]:
        """Snapshot the full search state at the *end* of ``epoch``."""
        meta = {
            "kind": "lightnas",
            "fingerprint": self._fingerprint(),
            "next_epoch": epoch + 1,
            "steps": steps,
            "rng_state": rng_state_json(self.rng),
        }
        arrays: Dict[str, np.ndarray] = {
            "alpha": alpha.data.copy(),
            "lambda": lam.param.data.copy(),
            "lambda_history": np.array(lam.history, dtype=np.float64),
        }
        for key, value in alpha_opt.state_arrays().items():
            arrays[f"alpha_opt.{key}"] = value
        arrays.update(trajectory.as_arrays())
        if self.config.mode == "supernet":
            meta["task_rng_state"] = rng_state_json(self.task._batch_rng)
            for key, value in self.supernet.state_dict().items():
                arrays[f"net.{key}"] = value
            for key, value in w_opt.state_arrays().items():
                arrays[f"w_opt.{key}"] = value
        return meta, arrays

    def _restore_state(self, path: str, alpha: nn.Parameter,
                       alpha_opt: nn.Optimizer, lam: LagrangeMultiplier,
                       w_opt: Optional[nn.Optimizer]
                       ) -> Tuple[int, int, SearchTrajectory]:
        """Restore a checkpoint; returns (start_epoch, steps, trajectory)."""
        meta, arrays = load_checkpoint(path)
        if meta.get("kind") != "lightnas":
            raise CheckpointError(
                f"checkpoint {path!r} belongs to engine {meta.get('kind')!r}, "
                f"not to LightNAS"
            )
        if meta.get("fingerprint") != self._fingerprint():
            raise CheckpointError(
                f"checkpoint {path!r} was written by a run with a different "
                f"configuration (target/space/seed/hyper-parameters); resume "
                f"with the original configuration or start a fresh search"
            )
        try:
            # in-place copies: parameter arrays keep their identity so any
            # compiled step plans stay bound to the live α / λ storage
            np.copyto(alpha.data, arrays["alpha"])
            alpha_opt.load_state_arrays({
                key[len("alpha_opt."):]: value
                for key, value in arrays.items() if key.startswith("alpha_opt.")
            })
            np.copyto(lam.param.data, arrays["lambda"])
            lam.history = [float(x) for x in arrays["lambda_history"]]
            restore_rng(self.rng, meta["rng_state"])
            if self.config.mode == "supernet":
                self.supernet.load_state_dict({
                    key[len("net."):]: value
                    for key, value in arrays.items() if key.startswith("net.")
                })
                w_opt.load_state_arrays({
                    key[len("w_opt."):]: value
                    for key, value in arrays.items() if key.startswith("w_opt.")
                })
                restore_rng(self.task._batch_rng, meta["task_rng_state"])
            trajectory = SearchTrajectory.from_arrays(arrays)
            return int(meta["next_epoch"]), int(meta["steps"]), trajectory
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {path!r} is missing or mismatching state "
                f"({exc}); it does not fit this run — delete it and restart "
                f"the search"
            ) from exc

    # ------------------------------------------------------------------
    def search(
        self,
        verbose: bool = False,
        *,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 10,
        resume_from: Optional[str] = None,
        journal: Optional[RunJournal] = None,
    ) -> SearchResult:
        """Run the one-time search and return the derived architecture.

        Parameters
        ----------
        checkpoint_dir / checkpoint_every:
            If set, snapshot the full search state to
            ``checkpoint_dir/ckpt_epochNNNNN.npz`` after every
            ``checkpoint_every``-th epoch (atomic writes).
        resume_from:
            A checkpoint file, or a directory whose latest checkpoint is
            used.  The engine must be constructed with the *same*
            configuration that wrote the checkpoint (enforced by a config
            fingerprint); the resumed run then continues bit-for-bit: an
            interrupted-and-resumed search returns a :class:`SearchResult`
            identical to an uninterrupted one.
        journal:
            A :class:`repro.runtime.telemetry.RunJournal` receiving
            structured per-epoch events (defaults to the no-op journal).
        """
        cfg = self.config
        journal = journal if journal is not None else NullJournal()
        timers = PhaseTimers()
        run_start = time.perf_counter()
        alpha = nn.Parameter(self.space.uniform_alpha(), name="alpha")
        alpha_opt = nn.Adam([alpha], lr=cfg.alpha_lr,
                            weight_decay=cfg.alpha_weight_decay)
        alpha_schedule = nn.CosineSchedule(cfg.alpha_lr, cfg.epochs,
                                           final_lr=cfg.alpha_lr * 0.1)
        lam = LagrangeMultiplier(lr=cfg.lambda_lr, initial=cfg.lambda_initial)
        schedule = TemperatureSchedule(cfg.tau_initial, cfg.tau_floor, cfg.epochs)
        sampler = GumbelSampler(schedule, self.rng)
        trajectory = SearchTrajectory()

        w_opt = None
        w_schedule = None
        if cfg.mode == "supernet":
            w_opt = nn.SGD(self.supernet.parameters(), lr=cfg.w_lr,
                           momentum=cfg.w_momentum, weight_decay=cfg.w_weight_decay)
            w_schedule = nn.CosineSchedule(cfg.w_lr, cfg.epochs)

        steps = 0
        start_epoch = 0
        if resume_from is not None:
            start_epoch, steps, trajectory = self._restore_state(
                resolve_checkpoint(resume_from), alpha, alpha_opt, lam, w_opt
            )
        manager = (CheckpointManager(checkpoint_dir, every=checkpoint_every)
                   if checkpoint_dir else None)
        journal.run_header(
            engine="lightnas",
            mode=cfg.mode,
            metric_name=cfg.metric_name,
            target=cfg.target,
            seed=cfg.seed,
            epochs=cfg.epochs,
            steps_per_epoch=cfg.steps_per_epoch,
            space_layers=self.space.num_layers,
            space_operators=self.space.num_operators,
            start_epoch=start_epoch,
            fingerprint=self._fingerprint(),
        )

        for epoch in range(start_epoch, cfg.epochs):
            epoch_start = time.perf_counter()
            alpha_schedule.apply(alpha_opt, epoch)
            epoch_scope = (nn.profiler.profile() if cfg.profile_ops
                           else nullcontext(None))
            with epoch_scope as op_prof:
                if cfg.mode == "supernet":
                    w_schedule.apply(w_opt, epoch)
                    with timers.phase("train_weights"):
                        self._train_weights_epoch(sampler, alpha, w_opt, epoch)
                    if epoch >= cfg.warmup_epochs:
                        with timers.phase("update_alpha"):
                            epoch_steps, mean_loss = self._update_alpha_epoch(
                                sampler, alpha, alpha_opt, lam, epoch)
                        steps += epoch_steps
                    else:
                        with timers.phase("warmup_eval"):
                            mean_loss = self._warmup_valid_loss(
                                sampler, alpha, epoch)
                else:
                    with timers.phase("update_alpha"):
                        epoch_steps, mean_loss = self._update_alpha_epoch(
                            sampler, alpha, alpha_opt, lam, epoch)
                    steps += epoch_steps

                with timers.phase("derive"):
                    arch = sampler.derive_architecture(alpha)
                    predicted = self.predictor.predict_arch(arch)
            trajectory.record(epoch, predicted, lam.value, mean_loss,
                              schedule.at(epoch), arch)
            epoch_fields = dict(
                epoch=epoch,
                predicted_metric=round(float(predicted), 6),
                target=cfg.target,
                **{"lambda": round(lam.value, 6)},
                tau=round(schedule.at(epoch), 6),
                valid_loss=round(float(mean_loss), 6),
                architecture=list(arch.op_indices),
                wall_time_s=round(time.perf_counter() - epoch_start, 6),
            )
            if op_prof is not None:
                epoch_fields["op_profile"] = op_prof.as_dict()
            if self._use_plans:
                epoch_fields["plan_stats"] = self.programs.stats()
            journal.epoch(**epoch_fields)
            if verbose:
                print(
                    f"[lightnas] epoch {epoch:3d} metric {predicted:7.3f} "
                    f"(target {cfg.target}) λ {lam.value:+.4f}"
                )
            if manager is not None and manager.due(epoch):
                with timers.phase("checkpoint"):
                    meta, arrays = self._capture_state(
                        epoch, steps, alpha, alpha_opt, lam, trajectory, w_opt)
                    path = manager.save(epoch, meta, arrays)
                journal.event("checkpoint", epoch=epoch, path=path)

        arch = sampler.derive_architecture(alpha)
        result = SearchResult(
            architecture=arch,
            predicted_metric=self.predictor.predict_arch(arch),
            target=cfg.target,
            final_lambda=lam.value,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=steps,
            metric_name=cfg.metric_name,
        )
        end_fields = dict(
            final_predicted_metric=round(result.predicted_metric, 6),
            final_lambda=round(result.final_lambda, 6),
            constraint_error=round(result.constraint_error, 6),
            architecture=list(arch.op_indices),
            num_search_steps=steps,
            wall_time_s=round(time.perf_counter() - run_start, 6),
            phase_timers=timers.as_dict(),
        )
        if self._use_plans:
            end_fields["plan_stats"] = self.programs.stats()
        journal.run_end(**end_fields)
        return result

    # ------------------------------------------------------------------
    def _train_weights_epoch(self, sampler: GumbelSampler, alpha: nn.Parameter,
                             w_opt: nn.Optimizer, epoch: int) -> None:
        """One epoch of supernet weight training on the train fold."""
        cfg = self.config
        self.supernet.train(True)
        if not self._use_plans:
            with nn.dtype_scope(cfg.compute_dtype):
                for _ in range(cfg.steps_per_epoch):
                    batch = self.task.sample_batch(self.task.train,
                                                   cfg.batch_size)
                    with nn.no_grad():
                        _, gates_const = sampler.sample_gates(
                            alpha.detach(), epoch)
                    logits = self.supernet.forward_single_path(
                        nn.Tensor(batch.images), nn.Tensor(gates_const.data)
                    )
                    loss = F.cross_entropy(logits, batch.labels)
                    w_opt.zero_grad()
                    loss.backward()
                    w_opt.step()
            return
        num_classes = self.space.macro.num_classes
        with nn.dtype_scope(cfg.compute_dtype), \
                nn.plan.fusion(cfg.use_fusion):
            # α is frozen for the whole w-epoch, so the epoch's Gumbel
            # draws can be hoisted upfront (same RNG calls, same order —
            # batches come from the task's independent stream) and the
            # selection sequence becomes the epoch identity: once every
            # step of a sequence has a compiled plan, the epoch itself
            # replays as one flat chain of plan replays + in-place
            # optimizer updates, skipping per-step cache probes,
            # zero_grad sweeps, and grad-None scans.
            gates_list, sels = sampler.predraw_epoch(
                alpha, epoch, cfg.steps_per_epoch)
            epoch_key = ("w-epoch", tuple(sels), cfg.batch_size)
            ep = self.programs.epoch_plan(epoch_key)
            if ep is not None and ep.stale():
                self.programs.invalidate_epoch_plan(epoch_key)
                ep = None
            if ep is not None:
                prof = nn.profiler.active_profile()
                for plan, updates in zip(ep.step_plans, ep.updates):
                    batch = self.task.sample_batch(self.task.train,
                                                   cfg.batch_size)
                    targets = F.one_hot(batch.labels, num_classes)
                    plan.replay({"images": batch.images,
                                 "targets": targets}, prof)
                    self.programs.replays += 1
                    w_opt.begin_step()
                    for update in updates:
                        update()
                self.programs.epoch_plan_hits += 1
                return
            chained = []
            for sel, gates_arr in zip(sels, gates_list):
                batch = self.task.sample_batch(self.task.train,
                                               cfg.batch_size)
                # hard gates are exactly one-hot, so the sampled path is
                # the whole story: steps with the same selections replay
                # the same compiled plan regardless of epoch / temperature
                targets = F.one_hot(batch.labels, num_classes)

                def fn(ts, gates_arr=gates_arr):
                    logits = self.supernet.forward_single_path(
                        ts["images"], nn.Tensor(gates_arr))
                    return {"loss": F.cross_entropy(
                        logits, targets=ts["targets"])}

                w_opt.zero_grad()
                self.programs.run(
                    ("w", sel, batch.images.shape),
                    {"images": batch.images, "targets": targets}, fn)
                w_opt.step()
                if self.programs.last_event == "replay":
                    chained.append(self.programs.last_plan)
            if len(chained) == cfg.steps_per_epoch:
                # every step replayed a compiled plan → the epoch is fully
                # compiled; bind each plan's gradient leaves to their
                # in-place SGD updates and cache the chain
                updates = [
                    w_opt.bind_param_updates(
                        [t for t, _ in plan._leaf_assigns])
                    for plan in chained
                ]
                self.programs.store_epoch_plan(
                    epoch_key,
                    _EpochPlan("w", chained, updates, tuple(sels)))

    def _update_alpha_epoch(self, sampler: GumbelSampler, alpha: nn.Parameter,
                            alpha_opt: nn.Optimizer, lam: LagrangeMultiplier,
                            epoch: int) -> Tuple[int, float]:
        """One epoch of α descent + λ ascent on the Eq. (10) objective.

        Returns ``(steps, mean_valid_loss)`` — the mean of the epoch's
        actual validation losses, which is what the trajectory records
        (previously the recorded series was a stale constant 0.0).
        """
        cfg = self.config
        steps = 0
        loss_sum = 0.0
        if not self._use_plans:
            for _ in range(cfg.steps_per_epoch):
                _, gates = sampler.sample_gates(alpha, epoch)
                valid_loss = self._validation_loss(gates)
                loss_sum += float(valid_loss.data)
                # The latency term uses the *deterministic* binarisation of
                # α: Eq. (4) defines the architecture encoded by α as the
                # per-layer argmax, so LAT(α) is the latency of that
                # architecture, not of the Gumbel sample.  (With the sampled
                # gates, λ's equilibrium pins the *expected* sampled latency
                # to T while the derived argmax architecture systematically
                # undershoots.)
                _, det_gates = sampler.sample_gates(alpha, epoch,
                                                    deterministic=True)
                loss, _ = self.objective.loss(valid_loss, det_gates,
                                              lam.as_tensor())
                alpha_opt.zero_grad()
                lam.param.zero_grad()
                loss.backward()
                alpha_opt.step()
                lam.ascend()
                steps += 1
            return steps, loss_sum / max(steps, 1)
        # Plan path: the per-step randomness (Gumbel noise, validation
        # batch) and the annealed 1/τ are hoisted out of the traced
        # function and become plan *inputs*; the sampled single path —
        # computed by the bit-exact raw-numpy signature helper — joins
        # the plan key so a replay can never follow a stale selection.
        # The deterministic-path STE (latency term) recomputes its
        # argmax live on replay, so λ keeps seeing LAT(argmax α).
        #
        # Unlike w-epochs, α moves every step, so the epoch's selection
        # sequence cannot be predrawn.  The epoch plan is *optimistic*
        # instead: it bakes the sequence observed when it was assembled,
        # and each step verifies the live signature against the baked one
        # — a mismatch invalidates the chain gracefully (counted, never
        # wrong) and the rest of the epoch runs per-step.
        epoch_key = ("alpha-epoch", cfg.batch_size)
        ep = self.programs.epoch_plan(epoch_key)
        if ep is not None and ep.stale():
            self.programs.invalidate_epoch_plan(epoch_key)
            ep = None
        prof = nn.profiler.active_profile()
        chained = []
        with nn.plan.fusion(cfg.use_fusion):
            for i in range(cfg.steps_per_epoch):
                noise = sampler.draw_noise(alpha.shape)
                sel = sampler.selection_signature(alpha.data, epoch, noise)
                if ep is not None and sel != ep.sels[i]:
                    self.programs.invalidate_epoch_plan(epoch_key)
                    ep = None
                self.supernet.train(True)
                with nn.dtype_scope(cfg.compute_dtype):
                    batch = self.task.sample_batch(self.task.valid,
                                                   cfg.batch_size)
                    targets = F.one_hot(batch.labels,
                                        self.space.macro.num_classes)
                    inv_tau = 1.0 / sampler.schedule.at(epoch)
                    if ep is not None:
                        out = ep.step_plans[i].replay(
                            {"images": batch.images, "targets": targets,
                             "noise": noise, "inv_tau": inv_tau}, prof)
                        self.programs.replays += 1
                        alpha_opt.begin_step()
                        for update in ep.updates[i]:
                            update()
                    else:
                        def fn(ts):
                            _, gates = sampler.sample_gates(
                                alpha, epoch, noise=ts["noise"],
                                inv_tau=ts["inv_tau"])
                            logits = self.supernet.forward_single_path(
                                ts["images"], gates)
                            valid_loss = F.cross_entropy(
                                logits, targets=ts["targets"])
                            _, det_gates = sampler.sample_gates(
                                alpha, epoch, deterministic=True,
                                inv_tau=ts["inv_tau"])
                            loss, _ = self.objective.loss(
                                valid_loss, det_gates, lam.as_tensor())
                            return {"loss": loss, "valid_loss": valid_loss}

                        alpha_opt.zero_grad()
                        lam.param.zero_grad()
                        # eager lets stale gradients accumulate through α
                        # steps on the supernet weights and the frozen
                        # predictor (discarded unread); the plan's leaf
                        # slots want a clean start instead
                        self.supernet.zero_grad()
                        pred_model = getattr(self.predictor, "_model", None)
                        if pred_model is not None:  # analytic predictors
                            pred_model.zero_grad()  # are gradless
                        out = self.programs.run(
                            ("alpha", sel, batch.images.shape),
                            {"images": batch.images, "targets": targets,
                             "noise": noise, "inv_tau": inv_tau}, fn)
                        if self.programs.last_event == "replay":
                            chained.append(
                                (sel, self.programs.last_plan))
                        alpha_opt.step()
                loss_sum += float(out["valid_loss"])
                lam.ascend()
                steps += 1
        if ep is not None:
            self.programs.epoch_plan_hits += 1
        elif len(chained) == cfg.steps_per_epoch:
            # every step replayed and the chain spans the whole epoch (an
            # epoch that started on a — since invalidated — chain cannot
            # reassemble this epoch: its early steps left no plan record)
            alpha_updates = alpha_opt.bind_param_updates([alpha])
            self.programs.store_epoch_plan(
                epoch_key,
                _EpochPlan("alpha", [plan for _, plan in chained],
                           [alpha_updates] * len(chained),
                           tuple(s for s, _ in chained)))
        return steps, loss_sum / max(steps, 1)

    def _warmup_valid_loss(self, sampler: GumbelSampler, alpha: nn.Parameter,
                           epoch: int) -> float:
        """Honest validation loss for warmup epochs (no α update runs).

        Evaluates the current deterministic architecture on one validation
        batch drawn with a *stateless* per-epoch generator, so the
        checkpointed RNG streams (Gumbel noise, task batches) that drive
        the search dynamics are untouched.
        """
        cfg = self.config
        _, gates = sampler.sample_gates(alpha.detach(), epoch,
                                        deterministic=True)
        eval_rng = np.random.default_rng((cfg.seed, 0xE7A1, epoch))
        idx = eval_rng.integers(len(self.task.valid), size=cfg.batch_size)
        batch = Batch(images=self.task.valid.images[idx],
                      labels=self.task.valid.labels[idx])
        was_training = self.supernet.training
        self.supernet.eval()
        try:
            if self._use_plans:
                # forward-only plan (grad=False): BatchNorm eval statistics
                # enter through standing views + replay effects, so the
                # replayed eval tracks the training running stats exactly
                gates_arr = gates.data
                sel = tuple(int(k) for k in np.argmax(gates_arr, axis=1))
                with nn.dtype_scope(cfg.compute_dtype), \
                        nn.plan.fusion(cfg.use_fusion):
                    targets = F.one_hot(batch.labels,
                                        self.space.macro.num_classes)

                    def fn(ts, gates_arr=gates_arr):
                        with nn.no_grad():
                            logits = self.supernet.forward_single_path(
                                ts["images"], nn.Tensor(gates_arr))
                            return {"loss": F.cross_entropy(
                                logits, targets=ts["targets"])}

                    out = self.programs.run(
                        ("warmup", sel, batch.images.shape),
                        {"images": batch.images, "targets": targets}, fn,
                        grad=False)
                return float(out["loss"])
            # no_grad + tape-free ops: this eval allocates zero closures
            with nn.dtype_scope(cfg.compute_dtype), nn.no_grad():
                logits = self.supernet.forward_single_path(
                    nn.Tensor(batch.images), nn.Tensor(gates.data))
                loss = F.cross_entropy(logits, batch.labels)
        finally:
            self.supernet.train(was_training)
        return float(loss.data)

    def _validation_loss(self, gates: nn.Tensor) -> nn.Tensor:
        cfg = self.config
        if cfg.mode == "surrogate":
            return self.oracle.differentiable_loss(gates)
        self.supernet.train(True)
        with nn.dtype_scope(cfg.compute_dtype):
            batch = self.task.sample_batch(self.task.valid, cfg.batch_size)
            logits = self.supernet.forward_single_path(
                nn.Tensor(batch.images), gates)
            return F.cross_entropy(logits, batch.labels)
