"""The LightNAS search engine (§3.3–3.4): you only search once.

One search run takes a *hard* metric constraint T (latency in ms, or any
metric with a fitted predictor) and returns an architecture whose predicted
metric converges to T, with no manual λ tuning:

* architecture parameters ``α`` are optimised by Adam *descent* on Eq. (10),
* supernet weights ``w`` (supernet mode) by SGD descent,
* the constraint multiplier ``λ`` by gradient *ascent* (Eq. 11).

Two validation-loss modes share the engine:

``mode="supernet"``
    The paper's bi-level protocol: a real weight-sharing supernet is trained
    on a (synthetic) proxy task; ``L_valid`` is cross-entropy of the sampled
    single path on validation batches.  The first ``warmup_epochs`` update
    only ``w`` (the paper freezes α for 10 of 90 epochs), then ``w`` and
    ``α`` updates alternate every epoch.

``mode="surrogate"``
    ``L_valid`` is the differentiable capacity loss of the
    :class:`repro.proxy.accuracy_model.AccuracyOracle` — the fast path used
    by the full-space benchmarks, where training a 22-layer ImageNet
    supernet on one CPU core is not an option.  The α/λ dynamics (the
    paper's contribution) are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..predictor.dataset import collect_latency_dataset
from ..predictor.mlp import MLPPredictor
from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..proxy.dataset import SyntheticTask
from ..proxy.supernet import SuperNet
from ..search_space.macro import MacroConfig
from ..search_space.space import Architecture, SearchSpace
from .gumbel import GumbelSampler, TemperatureSchedule
from .lambda_opt import LagrangeMultiplier
from .objective import ConstrainedObjective
from .result import SearchResult, SearchTrajectory

__all__ = ["LightNASConfig", "LightNAS"]


@dataclass
class LightNASConfig:
    """Configuration of one LightNAS run.

    The defaults follow §4.1 where a setting exists in the paper (90
    epochs, 10 warmup epochs, Adam(1e-3, wd 1e-3) for α, SGD(0.1, 0.9,
    3e-5) for w, ascent lr 5e-4 for λ, τ: 5 → 0).
    """

    space: SearchSpace = field(default_factory=SearchSpace)
    target: float = 24.0
    metric_name: str = "latency_ms"
    mode: str = "surrogate"

    epochs: int = 90
    steps_per_epoch: int = 30
    warmup_epochs: int = 10
    batch_size: int = 128

    alpha_lr: float = 1e-3
    alpha_weight_decay: float = 1e-3
    w_lr: float = 0.1
    w_momentum: float = 0.9
    w_weight_decay: float = 3e-5
    lambda_lr: float = 5e-4
    lambda_initial: float = 0.0
    #: augmented-Lagrangian damping weight (0 disables; see objective.py)
    penalty_mu: float = 1.0

    tau_initial: float = 5.0
    tau_floor: float = 0.1

    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("surrogate", "supernet"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.target <= 0:
            raise ValueError("constraint target must be positive")
        if self.epochs <= self.warmup_epochs and self.mode == "supernet":
            raise ValueError("epochs must exceed warmup_epochs in supernet mode")

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, latency_target_ms: float, space: Optional[SearchSpace] = None,
              seed: int = 0, **overrides) -> "LightNASConfig":
        """Full-space configuration with the paper's hyper-parameters.

        Uses surrogate mode by default (see module docstring); pass
        ``mode="supernet"`` plus a task for the bi-level protocol.
        """
        defaults = dict(
            space=space or SearchSpace(),
            target=latency_target_ms,
            epochs=90,
            steps_per_epoch=50,
            lambda_lr=0.01,
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def tiny(cls, latency_target_ms: float = 1.0, seed: int = 0,
             mode: str = "supernet", **overrides) -> "LightNASConfig":
        """Scaled-down configuration for tests / the quickstart example."""
        defaults = dict(
            space=SearchSpace(MacroConfig.tiny()),
            target=latency_target_ms,
            mode=mode,
            epochs=16,
            steps_per_epoch=4,
            warmup_epochs=2,
            batch_size=16,
            lambda_lr=0.05,
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)


class LightNAS:
    """The one-time hardware-constrained differentiable search.

    Parameters
    ----------
    config:
        Run configuration.
    predictor:
        A fitted metric predictor.  If omitted, a latency predictor is
        trained on a fresh simulated measurement campaign (1,500 samples —
        enough for search-grade accuracy; the benchmarks use the full
        10,000-sample protocol).
    oracle:
        Accuracy oracle for surrogate mode (defaults to the calibrated
        ImageNet oracle of the config's space).
    task:
        Proxy classification task for supernet mode (defaults to a
        :class:`SyntheticTask` matching the macro resolution).
    """

    def __init__(
        self,
        config: LightNASConfig,
        predictor: Optional[MLPPredictor] = None,
        oracle: Optional[AccuracyOracle] = None,
        task: Optional[SyntheticTask] = None,
    ) -> None:
        self.config = config
        self.space = config.space
        self.rng = np.random.default_rng(config.seed)
        self.predictor = predictor or self._default_predictor()
        self.objective = ConstrainedObjective(self.predictor, config.target,
                                              mu=config.penalty_mu)
        self.oracle = oracle
        self.task = task
        self.supernet: Optional[SuperNet] = None
        if config.mode == "surrogate" and self.oracle is None:
            self.oracle = AccuracyOracle(self.space)
        if config.mode == "supernet":
            if self.task is None:
                macro = self.space.macro
                self.task = SyntheticTask(
                    num_classes=macro.num_classes,
                    resolution=macro.input_resolution,
                    seed=config.seed,
                )
            self.supernet = SuperNet(self.space, self.rng)

    def _default_predictor(self) -> MLPPredictor:
        latency_model = LatencyModel(self.space)
        campaign_rng = np.random.default_rng(self.config.seed + 101)
        data = collect_latency_dataset(latency_model, 1500, campaign_rng)
        train, valid = data.split(0.8, campaign_rng)
        predictor = MLPPredictor(self.space, seed=self.config.seed)
        predictor.fit(train, epochs=120, batch_size=256, lr=3e-3, weight_decay=0.0)
        return predictor

    # ------------------------------------------------------------------
    def search(self, verbose: bool = False) -> SearchResult:
        """Run the one-time search and return the derived architecture."""
        cfg = self.config
        alpha = nn.Parameter(self.space.uniform_alpha(), name="alpha")
        alpha_opt = nn.Adam([alpha], lr=cfg.alpha_lr,
                            weight_decay=cfg.alpha_weight_decay)
        alpha_schedule = nn.CosineSchedule(cfg.alpha_lr, cfg.epochs,
                                           final_lr=cfg.alpha_lr * 0.1)
        lam = LagrangeMultiplier(lr=cfg.lambda_lr, initial=cfg.lambda_initial)
        schedule = TemperatureSchedule(cfg.tau_initial, cfg.tau_floor, cfg.epochs)
        sampler = GumbelSampler(schedule, self.rng)
        trajectory = SearchTrajectory()

        w_opt = None
        w_schedule = None
        if cfg.mode == "supernet":
            w_opt = nn.SGD(self.supernet.parameters(), lr=cfg.w_lr,
                           momentum=cfg.w_momentum, weight_decay=cfg.w_weight_decay)
            w_schedule = nn.CosineSchedule(cfg.w_lr, cfg.epochs)

        steps = 0
        for epoch in range(cfg.epochs):
            alpha_schedule.apply(alpha_opt, epoch)
            if cfg.mode == "supernet":
                w_schedule.apply(w_opt, epoch)
                self._train_weights_epoch(sampler, alpha, w_opt, epoch)
                if epoch >= cfg.warmup_epochs:
                    steps += self._update_alpha_epoch(sampler, alpha, alpha_opt, lam,
                                                      epoch)
            else:
                steps += self._update_alpha_epoch(sampler, alpha, alpha_opt, lam, epoch)

            arch = sampler.derive_architecture(alpha)
            predicted = self.predictor.predict_arch(arch)
            loss_now = trajectory.valid_loss[-1] if trajectory.valid_loss else 0.0
            trajectory.record(epoch, predicted, lam.value, loss_now,
                              schedule.at(epoch), arch)
            if verbose:
                print(
                    f"[lightnas] epoch {epoch:3d} metric {predicted:7.3f} "
                    f"(target {cfg.target}) λ {lam.value:+.4f}"
                )

        arch = sampler.derive_architecture(alpha)
        return SearchResult(
            architecture=arch,
            predicted_metric=self.predictor.predict_arch(arch),
            target=cfg.target,
            final_lambda=lam.value,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=steps,
            metric_name=cfg.metric_name,
        )

    # ------------------------------------------------------------------
    def _train_weights_epoch(self, sampler: GumbelSampler, alpha: nn.Parameter,
                             w_opt: nn.Optimizer, epoch: int) -> None:
        """One epoch of supernet weight training on the train fold."""
        cfg = self.config
        self.supernet.train(True)
        for _ in range(cfg.steps_per_epoch):
            batch = self.task.sample_batch(self.task.train, cfg.batch_size)
            with nn.no_grad():
                _, gates_const = sampler.sample_gates(alpha.detach(), epoch)
            logits = self.supernet.forward_single_path(
                nn.Tensor(batch.images), nn.Tensor(gates_const.data)
            )
            loss = F.cross_entropy(logits, batch.labels)
            w_opt.zero_grad()
            loss.backward()
            w_opt.step()

    def _update_alpha_epoch(self, sampler: GumbelSampler, alpha: nn.Parameter,
                            alpha_opt: nn.Optimizer, lam: LagrangeMultiplier,
                            epoch: int) -> int:
        """One epoch of α descent + λ ascent on the Eq. (10) objective."""
        cfg = self.config
        steps = 0
        for _ in range(cfg.steps_per_epoch):
            _, gates = sampler.sample_gates(alpha, epoch)
            valid_loss = self._validation_loss(gates)
            # The latency term uses the *deterministic* binarisation of α:
            # Eq. (4) defines the architecture encoded by α as the per-layer
            # argmax, so LAT(α) is the latency of that architecture, not of
            # the Gumbel sample.  (With the sampled gates, λ's equilibrium
            # pins the *expected* sampled latency to T while the derived
            # argmax architecture systematically undershoots.)
            _, det_gates = sampler.sample_gates(alpha, epoch, deterministic=True)
            loss, _ = self.objective.loss(valid_loss, det_gates, lam.as_tensor())
            alpha_opt.zero_grad()
            lam.param.zero_grad()
            loss.backward()
            alpha_opt.step()
            lam.ascend()
            steps += 1
        return steps

    def _validation_loss(self, gates: nn.Tensor) -> nn.Tensor:
        cfg = self.config
        if cfg.mode == "surrogate":
            return self.oracle.differentiable_loss(gates)
        self.supernet.train(True)
        batch = self.task.sample_batch(self.task.valid, cfg.batch_size)
        logits = self.supernet.forward_single_path(nn.Tensor(batch.images), gates)
        return F.cross_entropy(logits, batch.labels)
