"""Single-path Gumbel sampling of architectures (§3.3).

:class:`GumbelSampler` owns the temperature schedule and produces, from the
architecture parameters ``α``, the chain of Eq. (6)–(9)::

    P  = row-softmax(α)                    (operator probabilities)
    P̂  = softmax((P + G) / τ),  G~Gumbel   (continuous relaxation, Eq. 7)
    P̄  = one-hot(argmax P̂) with STE        (hard single-path gates, Eq. 9)

The paper initialises τ = 5 and "gradually decays [it] to zero"; we anneal
exponentially to a small floor (exact zero is singular in Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..search_space.space import Architecture

__all__ = ["TemperatureSchedule", "GumbelSampler"]


@dataclass(frozen=True)
class TemperatureSchedule:
    """Exponential temperature annealing ``τ(t) = max(τ0·decay^t, floor)``."""

    initial: float = 5.0
    floor: float = 0.1
    total_steps: int = 90

    def __post_init__(self) -> None:
        if self.initial <= 0 or self.floor <= 0:
            raise ValueError("temperatures must be positive")
        if self.floor > self.initial:
            raise ValueError("floor must not exceed the initial temperature")

    def at(self, step: int) -> float:
        """Temperature for 0-indexed ``step``."""
        if self.total_steps <= 1:
            return self.floor
        decay = (self.floor / self.initial) ** (1.0 / (self.total_steps - 1))
        return max(self.initial * decay ** max(step, 0), self.floor)


class GumbelSampler:
    """Samples hard single-path gate matrices from architecture parameters."""

    def __init__(self, schedule: TemperatureSchedule, rng: np.random.Generator) -> None:
        self.schedule = schedule
        self.rng = rng

    def probabilities(self, alpha: nn.Tensor) -> nn.Tensor:
        """Eq. (6): per-layer operator probabilities ``P``."""
        return F.softmax(alpha, axis=-1)

    def draw_noise(self, shape) -> np.ndarray:
        """Advance the sampler RNG by one Gumbel draw of the given shape.

        Step plans hoist the draw out of the traced function so the noise
        becomes a per-step plan *input*; the stream order matches the
        historical in-line draw exactly (one ``rng.uniform`` call).
        """
        return F.gumbel_noise(shape, self.rng)

    def predraw_epoch(self, alpha: nn.Tensor, step: int,
                      n_draws: int) -> Tuple[list, list]:
        """Pre-draw one epoch's hard gates and path selections upfront.

        Valid whenever ``alpha`` is frozen for the whole epoch (w-epochs:
        the weight phase never updates α).  The sampler RNG advances by
        exactly the same ``n_draws`` uniform calls the per-step in-line
        draws would have made, and each gate matrix comes from the same
        :meth:`sample_gates` chain a per-step draw runs — in the caller's
        dtype scope — so the stream *and* the sampled paths are
        bit-identical to drawing lazily.  Returns ``(gates, sels)`` with
        ``gates`` a list of hard one-hot arrays and ``sels`` their
        per-layer argmax tuples; epoch plans key on ``tuple(sels)``.
        """
        gates, sels = [], []
        with nn.no_grad():
            frozen = alpha.detach()
            for _ in range(n_draws):
                _, hard = self.sample_gates(frozen, step)
                gates.append(hard.data)
                sels.append(tuple(int(k) for k in
                                  np.argmax(hard.data, axis=1)))
        return gates, sels

    def selection_signature(self, alpha_data: np.ndarray, step: int,
                            noise: Optional[np.ndarray]) -> Tuple[int, ...]:
        """The per-layer argmax the sampled gates will select, computed with
        raw numpy replicating the op chain bit-for-bit.

        Float softmax chains are not monotonicity-safe, so the plan key must
        come from the *exact* arithmetic the traced step performs:
        log-softmax, additive noise, ``* (1/τ)``, then the stable softmax —
        the same shift/exp/sum sequence :func:`repro.nn.functional.softmax`
        lowers to.  Engines key compiled plans on this signature so a replay
        can never silently follow a stale single-path selection.
        """
        a = np.asarray(alpha_data)
        shifted = a - a.max(axis=-1, keepdims=True)
        lp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        pert = lp if noise is None else lp + np.asarray(noise, dtype=a.dtype)
        pert = pert * (1.0 / self.schedule.at(step))
        s2 = pert - pert.max(axis=-1, keepdims=True)
        soft = np.exp(s2) / np.exp(s2).sum(axis=-1, keepdims=True)
        return tuple(int(k) for k in np.argmax(soft, axis=-1))

    def sample_gates(self, alpha: nn.Tensor, step: int,
                     deterministic: bool = False,
                     noise: Optional[np.ndarray] = None,
                     inv_tau: Optional[nn.Tensor] = None,
                     ) -> Tuple[nn.Tensor, nn.Tensor]:
        """Draw ``(P̂, P̄)`` for one search step.

        Note on Eq. (7): the paper writes ``softmax((P + G)/τ)`` with the
        *probabilities* P.  Taken literally that construction is nearly
        independent of α (P spans at most [0, 1] while Gumbel noise has
        std ≈ 1.28), so sampled paths would not concentrate on the learned
        architecture as τ anneals.  The categorical-reparameterisation
        result the paper invokes (Jang et al. 2016, its reference [19])
        perturbs *log*-probabilities — ``argmax(log P + G)`` is an exact
        categorical sample — so we use ``softmax((log P + G)/τ)``, which
        preserves the paper's stated property ``lim_{τ→0} P̂ = P``.

        ``deterministic=True`` suppresses the Gumbel noise (used by tests
        and by final-architecture extraction, where Eq. 4 is the argmax of
        ``α`` itself).  ``noise`` supplies a pre-drawn Gumbel sample (see
        :meth:`draw_noise`) and ``inv_tau`` a ``1/τ`` tensor — step plans
        use both to turn the stochastic parts of the chain into per-step
        inputs while computing bit-identical values.
        """
        log_probs = F.log_softmax(alpha, axis=-1)
        if noise is None and not deterministic:
            noise = self.draw_noise(alpha.shape)
        if inv_tau is None:
            relaxed = F.gumbel_softmax(log_probs, tau=self.schedule.at(step),
                                       noise=noise, axis=-1)
        else:
            relaxed = F.gumbel_softmax(log_probs, noise=noise, axis=-1,
                                       inv_tau=inv_tau)
        hard = F.hard_binarize_ste(relaxed, axis=-1)
        return relaxed, hard

    @staticmethod
    def derive_architecture(alpha: nn.Tensor) -> Architecture:
        """Eq. (4): the searched architecture is the per-layer argmax of α."""
        return Architecture.from_alpha(alpha.data)
