"""Single-path Gumbel sampling of architectures (§3.3).

:class:`GumbelSampler` owns the temperature schedule and produces, from the
architecture parameters ``α``, the chain of Eq. (6)–(9)::

    P  = row-softmax(α)                    (operator probabilities)
    P̂  = softmax((P + G) / τ),  G~Gumbel   (continuous relaxation, Eq. 7)
    P̄  = one-hot(argmax P̂) with STE        (hard single-path gates, Eq. 9)

The paper initialises τ = 5 and "gradually decays [it] to zero"; we anneal
exponentially to a small floor (exact zero is singular in Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..search_space.space import Architecture

__all__ = ["TemperatureSchedule", "GumbelSampler"]


@dataclass(frozen=True)
class TemperatureSchedule:
    """Exponential temperature annealing ``τ(t) = max(τ0·decay^t, floor)``."""

    initial: float = 5.0
    floor: float = 0.1
    total_steps: int = 90

    def __post_init__(self) -> None:
        if self.initial <= 0 or self.floor <= 0:
            raise ValueError("temperatures must be positive")
        if self.floor > self.initial:
            raise ValueError("floor must not exceed the initial temperature")

    def at(self, step: int) -> float:
        """Temperature for 0-indexed ``step``."""
        if self.total_steps <= 1:
            return self.floor
        decay = (self.floor / self.initial) ** (1.0 / (self.total_steps - 1))
        return max(self.initial * decay ** max(step, 0), self.floor)


class GumbelSampler:
    """Samples hard single-path gate matrices from architecture parameters."""

    def __init__(self, schedule: TemperatureSchedule, rng: np.random.Generator) -> None:
        self.schedule = schedule
        self.rng = rng

    def probabilities(self, alpha: nn.Tensor) -> nn.Tensor:
        """Eq. (6): per-layer operator probabilities ``P``."""
        return F.softmax(alpha, axis=-1)

    def sample_gates(self, alpha: nn.Tensor, step: int,
                     deterministic: bool = False) -> Tuple[nn.Tensor, nn.Tensor]:
        """Draw ``(P̂, P̄)`` for one search step.

        Note on Eq. (7): the paper writes ``softmax((P + G)/τ)`` with the
        *probabilities* P.  Taken literally that construction is nearly
        independent of α (P spans at most [0, 1] while Gumbel noise has
        std ≈ 1.28), so sampled paths would not concentrate on the learned
        architecture as τ anneals.  The categorical-reparameterisation
        result the paper invokes (Jang et al. 2016, its reference [19])
        perturbs *log*-probabilities — ``argmax(log P + G)`` is an exact
        categorical sample — so we use ``softmax((log P + G)/τ)``, which
        preserves the paper's stated property ``lim_{τ→0} P̂ = P``.

        ``deterministic=True`` suppresses the Gumbel noise (used by tests
        and by final-architecture extraction, where Eq. 4 is the argmax of
        ``α`` itself).
        """
        tau = self.schedule.at(step)
        log_probs = F.log_softmax(alpha, axis=-1)
        noise = None if deterministic else F.gumbel_noise(alpha.shape, self.rng)
        relaxed = F.gumbel_softmax(log_probs, tau=tau, noise=noise, axis=-1)
        hard = F.hard_binarize_ste(relaxed, axis=-1)
        return relaxed, hard

    @staticmethod
    def derive_architecture(alpha: nn.Tensor) -> Architecture:
        """Eq. (4): the searched architecture is the per-layer argmax of α."""
        return Architecture.from_alpha(alpha.data)
