"""The constrained search objective of LightNAS (Eq. 10).

::

    L(w, α, λ) = L_valid(w*(α), α) + λ · (METRIC(α)/T − 1)

``METRIC`` is any hardware metric with a differentiable predictor — the
paper's headline experiments constrain latency (ms) and Figure 8 swaps in
energy (mJ) without touching the search engine.  The normalisation by the
target ``T`` makes the penalty dimensionless, so the same η_λ works across
metrics and targets.
"""

from __future__ import annotations

from typing import Tuple

from .. import nn
from ..predictor.mlp import MLPPredictor

__all__ = ["ConstrainedObjective"]


class ConstrainedObjective:
    """Builds the Eq. (10) loss from its three ingredients.

    Parameters
    ----------
    predictor:
        A fitted differentiable metric predictor (latency or energy).
    target:
        The hard constraint T, in the predictor's units.
    """

    def __init__(self, predictor: MLPPredictor, target: float,
                 mu: float = 0.0) -> None:
        if target <= 0:
            raise ValueError(f"constraint target must be positive, got {target}")
        if not predictor.fitted:
            raise ValueError("the metric predictor must be fitted before searching")
        if mu < 0:
            raise ValueError("the augmented-Lagrangian weight μ must be >= 0")
        self.predictor = predictor
        self.target = float(target)
        self.mu = float(mu)

    def predicted_metric(self, gates: nn.Tensor) -> nn.Tensor:
        """Differentiable METRIC(α): predictor applied to flattened P̄."""
        flat = nn.ops.reshape(gates, (1, gates.shape[0] * gates.shape[1]))
        return self.predictor.predict_tensor(flat)[0]

    def loss(
        self,
        valid_loss: nn.Tensor,
        gates: nn.Tensor,
        lam: nn.Tensor,
    ) -> Tuple[nn.Tensor, float]:
        """Assemble the objective; returns ``(loss, predicted_metric)``.

        ``lam`` stays on the tape so a single ``backward()`` yields the
        descent gradients for α/w *and* the ascent gradient
        ``∂L/∂λ = METRIC/T − 1`` for λ.
        """
        metric = self.predicted_metric(gates)
        excess = metric * (1.0 / self.target) - 1.0
        penalty = nn.ops.reshape(lam, ()) * excess
        if self.mu > 0:
            # Augmented-Lagrangian damping: the quadratic term adds a
            # restoring force proportional to the constraint violation,
            # suppressing the λ/latency oscillation of pure dual ascent
            # without moving the LAT(α)=T fixed point.
            penalty = penalty + excess * excess * (0.5 * self.mu)
        return valid_loss + penalty, float(metric.data)
