"""Macro-architecture (stage layout) of the LightNAS supernet.

Following the layer-wise convention of FBNet/ProxylessNAS that the paper
adopts (Figure 4), the backbone is a MobileNetV2-style stack:

* a fixed stem (3×3 conv, stride 2),
* a fixed first bottleneck layer (the paper: "the first one is fixed"),
* 21 searchable layers arranged in stages with fixed channel widths and
  strides,
* a fixed head (1×1 conv expansion, global pooling, classifier).

:class:`MacroConfig` captures the stage table together with the input
resolution; :meth:`MacroConfig.lightnas` reproduces the paper's L = 22
layout exactly (7^21 ≈ 5.6×10^17 architectures) and
:meth:`MacroConfig.tiny` provides a scaled-down geometry used by the unit
tests and the fast proxy-task search (same code path, smaller tensors —
this repo runs on a single CPU core).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["LayerGeometry", "MacroConfig"]


@dataclass(frozen=True)
class LayerGeometry:
    """Fixed geometry of one searchable layer.

    Attributes
    ----------
    in_channels / out_channels:
        Channel widths entering and leaving the layer.
    stride:
        Spatial stride (2 only on the first layer of a reduction stage).
    in_resolution:
        Square input feature-map resolution at this layer.
    """

    in_channels: int
    out_channels: int
    stride: int
    in_resolution: int

    @property
    def out_resolution(self) -> int:
        return self.in_resolution // self.stride


@dataclass(frozen=True)
class MacroConfig:
    """Stage layout of the supernet.

    Attributes
    ----------
    input_resolution:
        Side length of the (square) network input — 224 in the paper's
        mobile setting.
    stem_channels:
        Output channels of the fixed stride-2 stem convolution.
    first_layer_channels:
        Output channels of the fixed (non-searchable) first bottleneck.
    stages:
        Tuple of ``(out_channels, num_layers, first_stride)`` for the
        searchable stages.
    head_channels:
        Channels of the fixed 1×1 head expansion before pooling.
    num_classes:
        Classifier output width.
    """

    input_resolution: int = 224
    stem_channels: int = 32
    first_layer_channels: int = 16
    stages: Tuple[Tuple[int, int, int], ...] = (
        (24, 4, 2),
        (32, 4, 2),
        (64, 4, 2),
        (112, 4, 1),
        (184, 4, 2),
        (352, 1, 1),
    )
    head_channels: int = 1280
    num_classes: int = 1000

    # ------------------------------------------------------------------
    @classmethod
    def lightnas(cls, num_classes: int = 1000) -> "MacroConfig":
        """The paper's full search space: 21 searchable layers (L=22)."""
        return cls(num_classes=num_classes)

    @classmethod
    def tiny(cls, num_classes: int = 10, num_searchable_layers: int = 4) -> "MacroConfig":
        """Scaled-down geometry with identical structure for fast tests.

        Keeps the stage pattern (one reduction stage, one wide stage) but
        shrinks resolution and widths so a supernet step runs in
        milliseconds on one CPU core.
        """
        if num_searchable_layers < 2:
            raise ValueError("tiny macro needs at least 2 searchable layers")
        first = num_searchable_layers // 2
        rest = num_searchable_layers - first
        return cls(
            input_resolution=16,
            stem_channels=8,
            first_layer_channels=8,
            stages=((16, first, 2), (24, rest, 2)),
            head_channels=32,
            num_classes=num_classes,
        )

    # ------------------------------------------------------------------
    @property
    def num_searchable_layers(self) -> int:
        """L − 1 in the paper's notation (the searchable layers)."""
        return sum(num for _, num, _ in self.stages)

    def searchable_layers(self) -> List[LayerGeometry]:
        """Geometry of every searchable layer, in network order."""
        layers: List[LayerGeometry] = []
        # Stem halves the input resolution; the fixed first bottleneck is
        # stride 1 at stem resolution.
        resolution = self.input_resolution // 2
        channels = self.first_layer_channels
        for out_channels, num_layers, first_stride in self.stages:
            for i in range(num_layers):
                stride = first_stride if i == 0 else 1
                layers.append(
                    LayerGeometry(
                        in_channels=channels,
                        out_channels=out_channels,
                        stride=stride,
                        in_resolution=resolution,
                    )
                )
                resolution //= stride
                channels = out_channels
        return layers

    @property
    def final_resolution(self) -> int:
        """Feature-map resolution entering the head."""
        return self.searchable_layers()[-1].out_resolution

    def scaled(self, width_mult: float = 1.0, resolution: int | None = None) -> "MacroConfig":
        """Width/resolution-scaled copy (the Figure-9 scaling baseline).

        Channel widths are rounded to multiples of 8, mirroring the
        MobileNetV2 width-multiplier convention.
        """

        def round8(c: float) -> int:
            return max(8, int(round(c / 8)) * 8)

        return MacroConfig(
            input_resolution=resolution or self.input_resolution,
            stem_channels=round8(self.stem_channels * width_mult),
            first_layer_channels=round8(self.first_layer_channels * width_mult),
            stages=tuple(
                (round8(ch * width_mult), num, stride) for ch, num, stride in self.stages
            ),
            head_channels=max(self.head_channels, round8(self.head_channels * width_mult)),
            num_classes=self.num_classes,
        )
