"""Architecture encoding and the :class:`SearchSpace` container.

An :class:`Architecture` is the discrete object the whole system revolves
around: a choice of one operator per searchable layer.  It is exactly the
sparse matrix ``ᾱ ∈ {0,1}^{L×K}`` of Eq. (4) — :meth:`Architecture.one_hot`
produces that matrix, and it is the input representation of the MLP
latency/energy predictor (§3.2).

:class:`SearchSpace` binds the operator vocabulary to a macro layout and
provides sampling, encoding/decoding and (de)serialisation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .macro import LayerGeometry, MacroConfig
from .operators import LIGHTNAS_OPERATORS, SKIP_INDEX, OperatorSpec

__all__ = ["Architecture", "SearchSpace"]


@dataclass(frozen=True)
class Architecture:
    """An immutable point of the search space.

    Attributes
    ----------
    op_indices:
        Tuple of operator indices (into the space's operator list), one per
        searchable layer.
    """

    op_indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.op_indices:
            raise ValueError("an architecture needs at least one layer")
        if any(i < 0 for i in self.op_indices):
            raise ValueError("operator indices must be non-negative")

    def __len__(self) -> int:
        return len(self.op_indices)

    # ------------------------------------------------------------------
    # Encodings
    # ------------------------------------------------------------------
    def one_hot(self, num_operators: int) -> np.ndarray:
        """The paper's ᾱ matrix: shape ``(L, K)`` with one 1 per row."""
        if max(self.op_indices) >= num_operators:
            raise ValueError("operator index out of range for this space")
        out = np.zeros((len(self.op_indices), num_operators), dtype=np.float64)
        out[np.arange(len(self.op_indices)), self.op_indices] = 1.0
        return out

    @staticmethod
    def from_one_hot(matrix: np.ndarray) -> "Architecture":
        """Inverse of :meth:`one_hot` (validates exact one-hot rows)."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("one-hot encoding must be a 2-D matrix")
        row_sums = matrix.sum(axis=1)
        if not np.allclose(row_sums, 1.0) or not np.all((matrix == 0) | (matrix == 1)):
            raise ValueError("matrix rows must be exactly one-hot")
        return Architecture(tuple(int(i) for i in matrix.argmax(axis=1)))

    @staticmethod
    def from_alpha(alpha: np.ndarray) -> "Architecture":
        """Eq. (4): discretise architecture parameters by per-row argmax."""
        alpha = np.asarray(alpha)
        if alpha.ndim != 2:
            raise ValueError("alpha must be an (L, K) matrix")
        return Architecture(tuple(int(i) for i in alpha.argmax(axis=1)))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"op_indices": list(self.op_indices)})

    @staticmethod
    def from_json(payload: str) -> "Architecture":
        data = json.loads(payload)
        return Architecture(tuple(int(i) for i in data["op_indices"]))

    # ------------------------------------------------------------------
    # Structural summaries (used for the Figure-6 analysis)
    # ------------------------------------------------------------------
    def depth(self, skip_index: int = SKIP_INDEX) -> int:
        """Number of layers that are *not* SkipConnect."""
        return sum(1 for i in self.op_indices if i != skip_index)

    def mutate(self, rng: np.random.Generator, num_operators: int,
               num_mutations: int = 1) -> "Architecture":
        """Return a copy with ``num_mutations`` random layer changes."""
        indices = list(self.op_indices)
        for _ in range(num_mutations):
            layer = int(rng.integers(len(indices)))
            choices = [k for k in range(num_operators) if k != indices[layer]]
            indices[layer] = int(rng.choice(choices))
        return Architecture(tuple(indices))


class SearchSpace:
    """The LightNAS layer-wise search space: operators × macro layout.

    Parameters
    ----------
    macro:
        Stage layout; defaults to the paper's L = 22 configuration.
    operators:
        Candidate vocabulary; defaults to the paper's K = 7 list.
    """

    def __init__(
        self,
        macro: Optional[MacroConfig] = None,
        operators: Optional[Sequence[OperatorSpec]] = None,
    ) -> None:
        self.macro = macro or MacroConfig.lightnas()
        self.operators: List[OperatorSpec] = list(operators or LIGHTNAS_OPERATORS)
        self._layers = self.macro.searchable_layers()

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """Number of searchable layers (21 in the paper's full space)."""
        return len(self._layers)

    @property
    def num_operators(self) -> int:
        return len(self.operators)

    @property
    def skip_index(self) -> int:
        for i, op in enumerate(self.operators):
            if op.is_skip:
                return i
        raise ValueError("this space has no SkipConnect operator")

    @property
    def size(self) -> float:
        """|A| = K^L (≈ 5.6×10^17 for the paper's space)."""
        return float(self.num_operators) ** self.num_layers

    def layer_geometries(self) -> List[LayerGeometry]:
        return list(self._layers)

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Architecture:
        """Uniformly sample one architecture."""
        return Architecture(
            tuple(int(i) for i in rng.integers(self.num_operators, size=self.num_layers))
        )

    def sample_indices(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniformly sample a population as one ``(count, L)`` index matrix.

        One array draw consumes the generator's bitstream exactly like
        ``count`` sequential :meth:`sample` calls (``Generator.integers``
        fills C-order element-by-element), so seeded campaigns that switch
        between the scalar and batched samplers see identical architectures.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return rng.integers(self.num_operators, size=(count, self.num_layers),
                            dtype=np.int64)

    def indices_to_archs(self, ops: np.ndarray) -> List[Architecture]:
        """Materialise an ``(N, L)`` index matrix as Architecture objects."""
        ops = self.as_index_matrix(ops)
        return [Architecture(tuple(row)) for row in ops.tolist()]

    def as_index_matrix(self, archs) -> np.ndarray:
        """Normalise a population to an ``(N, L)`` int64 op-index matrix.

        Accepts an ``(N, L)`` array (validated and passed through), a
        sequence of :class:`Architecture`, or a single Architecture
        (returned as a 1-row matrix).
        """
        if isinstance(archs, Architecture):
            archs = [archs]
        if isinstance(archs, np.ndarray):
            ops = np.asarray(archs, dtype=np.int64)
            if ops.ndim != 2:
                raise ValueError(f"op-index matrix must be 2-D, got shape {ops.shape}")
        else:
            ops = np.array([a.op_indices for a in archs], dtype=np.int64)
            if ops.size == 0:
                ops = ops.reshape(0, self.num_layers)
        if ops.shape[1] != self.num_layers:
            raise ValueError(
                f"population has {ops.shape[1]} layers, space expects {self.num_layers}"
            )
        if ops.size and (ops.min() < 0 or ops.max() >= self.num_operators):
            raise ValueError("population references an unknown operator")
        return ops

    def encode_many(self, archs) -> np.ndarray:
        """Batched flattened one-hot encoding: ``(N, L·K)`` float64.

        Row ``i`` equals ``archs[i].one_hot(K).reshape(-1)`` — the predictor
        input representation — built with one scatter instead of a per-arch
        Python loop.
        """
        ops = self.as_index_matrix(archs)
        n, num_layers = ops.shape
        out = np.zeros((n, num_layers * self.num_operators), dtype=np.float64)
        flat = np.arange(num_layers) * self.num_operators + ops
        np.put_along_axis(out, flat, 1.0, axis=1)
        return out

    def sample_many(self, count: int, rng: np.random.Generator,
                    unique: bool = False) -> List[Architecture]:
        """Sample ``count`` architectures, optionally de-duplicated."""
        if not unique:
            return self.indices_to_archs(self.sample_indices(count, rng))
        seen = set()
        out: List[Architecture] = []
        # The space is astronomically larger than any sample we draw, so
        # rejection sampling terminates immediately in practice; the guard
        # below protects tiny test spaces.
        max_tries = 100 * count
        tries = 0
        while len(out) < count and tries < max_tries:
            arch = self.sample(rng)
            tries += 1
            if arch.op_indices not in seen:
                seen.add(arch.op_indices)
                out.append(arch)
        if len(out) < count:
            raise ValueError(
                f"could not draw {count} unique architectures from a space of size {self.size}"
            )
        return out

    def validate(self, arch: Architecture) -> None:
        """Raise if ``arch`` does not type-check against this space."""
        if len(arch) != self.num_layers:
            raise ValueError(
                f"architecture has {len(arch)} layers, space expects {self.num_layers}"
            )
        if max(arch.op_indices) >= self.num_operators:
            raise ValueError("architecture references an unknown operator")

    def describe(self, arch: Architecture) -> List[str]:
        """Human-readable per-layer operator names (Figure-6 style)."""
        self.validate(arch)
        return [str(self.operators[i]) for i in arch.op_indices]

    # ------------------------------------------------------------------
    def uniform_alpha(self) -> np.ndarray:
        """The α initialisation: all-zeros ⇒ uniform operator distribution."""
        return np.zeros((self.num_layers, self.num_operators), dtype=np.float64)
