"""Operator vocabulary of the LightNAS search space (§3.1).

The space is built on MobileNetV2 inverted-residual blocks: every searchable
layer chooses among ``K = 7`` candidates — MBConv with kernel size
``∈ {3, 5, 7}`` × expansion ratio ``∈ {3, 6}``, plus the computation-free
``SkipConnect`` that lets the search shrink the network depth.

:class:`OperatorSpec` is the *description* of a candidate (used by the
hardware models and the architecture encoding); :func:`build_operator`
materialises a candidate as a trainable :class:`repro.nn.Module` for a given
layer geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .. import nn

__all__ = [
    "OperatorSpec",
    "LIGHTNAS_OPERATORS",
    "SKIP_INDEX",
    "build_operator",
    "MBConv",
    "SkipConnect",
]


@dataclass(frozen=True)
class OperatorSpec:
    """Immutable description of one operator candidate.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"mbconv_k5_e6"`` or ``"skip"``.
    kernel_size:
        Depthwise kernel size (0 for SkipConnect).
    expansion:
        Inverted-bottleneck expansion ratio (0 for SkipConnect).
    """

    name: str
    kernel_size: int
    expansion: int

    @property
    def is_skip(self) -> bool:
        return self.kernel_size == 0

    def __str__(self) -> str:
        return self.name


def _mbconv_spec(kernel: int, expansion: int) -> OperatorSpec:
    return OperatorSpec(name=f"mbconv_k{kernel}_e{expansion}", kernel_size=kernel,
                        expansion=expansion)


#: The paper's K = 7 candidates, in a fixed canonical order.  ``SKIP_INDEX``
#: is the index of SkipConnect within this list.
LIGHTNAS_OPERATORS: List[OperatorSpec] = [
    _mbconv_spec(3, 3),
    _mbconv_spec(3, 6),
    _mbconv_spec(5, 3),
    _mbconv_spec(5, 6),
    _mbconv_spec(7, 3),
    _mbconv_spec(7, 6),
    OperatorSpec(name="skip", kernel_size=0, expansion=0),
]

SKIP_INDEX: int = 6


class MBConv(nn.Module):
    """MobileNetV2 inverted residual block (expand → depthwise → project).

    Residual connection is applied when the block is stride-1 and preserves
    the channel count, matching the reference MobileNetV2 design.  An
    optional :class:`repro.nn.SqueezeExcite` block after the depthwise stage
    implements the Table-4 SE ablation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        expansion: int,
        stride: int,
        rng: np.random.Generator,
        with_se: bool = False,
    ) -> None:
        super().__init__()
        if stride not in (1, 2):
            raise ValueError(f"MBConv stride must be 1 or 2, got {stride}")
        if kernel_size % 2 == 0:
            raise ValueError(f"MBConv kernel size must be odd, got {kernel_size}")
        hidden = in_channels * expansion
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.use_residual = stride == 1 and in_channels == out_channels

        self.expand = nn.Sequential(
            nn.Conv2d(in_channels, hidden, 1, rng),
            nn.BatchNorm2d(hidden),
            nn.ReLU6(),
        )
        depthwise_layers = [
            nn.Conv2d(hidden, hidden, kernel_size, rng, stride=stride,
                      padding=kernel_size // 2, groups=hidden),
            nn.BatchNorm2d(hidden),
            nn.ReLU6(),
        ]
        if with_se:
            depthwise_layers.append(nn.SqueezeExcite(hidden, rng))
        self.depthwise = nn.Sequential(*depthwise_layers)
        self.project = nn.Sequential(
            nn.Conv2d(hidden, out_channels, 1, rng),
            nn.BatchNorm2d(out_channels),
        )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.project(self.depthwise(self.expand(x)))
        if self.use_residual:
            out = out + x
        return out


class SkipConnect(nn.Module):
    """The computation-free candidate.

    A pure identity when the layer keeps shape; at stage boundaries (stride 2
    or a channel change) identity is ill-typed, so a minimal 1×1
    strided-projection keeps the supernet well-formed — the standard
    treatment in layer-wise spaces (FBNet uses the same convention).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.is_identity = stride == 1 and in_channels == out_channels
        if not self.is_identity:
            self.projection = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, rng, stride=stride),
                nn.BatchNorm2d(out_channels),
            )

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if self.is_identity:
            return x
        return self.projection(x)


def build_operator(
    spec: OperatorSpec,
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
    with_se: bool = False,
) -> nn.Module:
    """Materialise ``spec`` as a trainable module for one layer geometry."""
    if spec.is_skip:
        return SkipConnect(in_channels, out_channels, stride, rng)
    return MBConv(
        in_channels, out_channels, spec.kernel_size, spec.expansion, stride, rng,
        with_se=with_se,
    )
