"""Cell-based search (the DARTS-style alternative §3.1 argues against).

DARTS and its variants search a small *cell* and tile it across the whole
network, so every repetition of the cell uses the same operators.  The paper
(citing MnasNet) argues that "enabling the layer diversity helps to strike
the right balance between accuracy and efficiency" and therefore searches
layer-wise.  This module makes that comparison concrete *inside the same
substrate*:

* :class:`CellSpace` wraps the layer-wise space with a cell of
  ``cell_size`` positions; a cell choice is tiled cyclically over the L
  searchable layers, producing an ordinary :class:`Architecture` that every
  evaluator (latency model, oracle, predictors) already understands.
* :class:`CellConstrainedSearch` runs the LightNAS machinery (Gumbel
  single-path gates, λ ascent, augmented damping) over the *cell*
  parameters: the expansion to full one-hot gates is a constant linear map,
  so gradients flow through unchanged.

The ``bench_ablation_cellspace`` benchmark then shows what §3.1 claims: at
matched latency, the tiled cell cannot express the early-thin/late-fat
allocation the layer-wise search finds, and loses accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..core.gumbel import GumbelSampler, TemperatureSchedule
from ..core.lambda_opt import LagrangeMultiplier
from .space import Architecture, SearchSpace

__all__ = ["CellSpace", "CellSearchConfig", "CellConstrainedSearch"]


class CellSpace:
    """A cell of ``cell_size`` operator slots tiled over the full network."""

    def __init__(self, base: SearchSpace, cell_size: int = 4) -> None:
        if not 1 <= cell_size <= base.num_layers:
            raise ValueError(
                f"cell_size must be in [1, {base.num_layers}], got {cell_size}")
        self.base = base
        self.cell_size = cell_size
        # constant tiling map: full layer l uses cell position l mod C
        self._tile = np.zeros((base.num_layers, cell_size))
        for layer in range(base.num_layers):
            self._tile[layer, layer % cell_size] = 1.0

    @property
    def size(self) -> float:
        """Number of distinct cells (≪ the layer-wise space)."""
        return float(self.base.num_operators) ** self.cell_size

    def expand(self, cell_choices: Tuple[int, ...]) -> Architecture:
        """Tile a discrete cell into a full architecture."""
        if len(cell_choices) != self.cell_size:
            raise ValueError(
                f"expected {self.cell_size} cell choices, got {len(cell_choices)}")
        return Architecture(tuple(
            int(cell_choices[layer % self.cell_size])
            for layer in range(self.base.num_layers)
        ))

    def expand_gates(self, cell_gates: nn.Tensor) -> nn.Tensor:
        """Differentiable tiling: (C, K) cell gates → (L, K) full gates."""
        if cell_gates.shape != (self.cell_size, self.base.num_operators):
            raise ValueError("cell gate matrix has the wrong shape")
        return nn.ops.matmul(nn.Tensor(self._tile), cell_gates)

    def sample(self, rng: np.random.Generator) -> Architecture:
        """Uniformly sample a cell and expand it."""
        cell = tuple(int(i) for i in
                     rng.integers(self.base.num_operators, size=self.cell_size))
        return self.expand(cell)


@dataclass
class CellSearchConfig:
    """Hyper-parameters of the constrained cell search."""

    cell_size: int = 4
    target: float = 24.0
    epochs: int = 90
    steps_per_epoch: int = 50
    alpha_lr: float = 1e-3
    alpha_weight_decay: float = 1e-3
    lambda_lr: float = 0.01
    penalty_mu: float = 1.0
    tau_initial: float = 5.0
    tau_floor: float = 0.1
    seed: int = 0


class CellConstrainedSearch:
    """LightNAS-style constrained search restricted to tiled cells."""

    def __init__(self, space: SearchSpace, config: CellSearchConfig,
                 predictor, oracle) -> None:
        self.cell_space = CellSpace(space, config.cell_size)
        self.space = space
        self.config = config
        self.predictor = predictor
        self.oracle = oracle
        self.rng = np.random.default_rng(config.seed)

    def _metric(self, full_gates: nn.Tensor) -> nn.Tensor:
        flat = nn.ops.reshape(
            full_gates, (1, full_gates.shape[0] * full_gates.shape[1]))
        return self.predictor.predict_tensor(flat)[0]

    def search(self, verbose: bool = False) -> Tuple[Architecture, float]:
        """Run the search; returns ``(architecture, predicted_metric)``."""
        cfg = self.config
        alpha = nn.Parameter(
            np.zeros((cfg.cell_size, self.space.num_operators)), name="cell-alpha")
        optimizer = nn.Adam([alpha], lr=cfg.alpha_lr,
                            weight_decay=cfg.alpha_weight_decay)
        schedule = nn.CosineSchedule(cfg.alpha_lr, cfg.epochs,
                                     final_lr=cfg.alpha_lr * 0.1)
        lam = LagrangeMultiplier(lr=cfg.lambda_lr)
        sampler = GumbelSampler(
            TemperatureSchedule(cfg.tau_initial, cfg.tau_floor, cfg.epochs),
            self.rng)

        for epoch in range(cfg.epochs):
            schedule.apply(optimizer, epoch)
            for _ in range(cfg.steps_per_epoch):
                _, cell_gates = sampler.sample_gates(alpha, epoch)
                _, det_cell_gates = sampler.sample_gates(alpha, epoch,
                                                         deterministic=True)
                full = self.cell_space.expand_gates(cell_gates)
                det_full = self.cell_space.expand_gates(det_cell_gates)
                loss = self.oracle.differentiable_loss(full)
                metric = self._metric(det_full)
                excess = metric * (1.0 / cfg.target) - 1.0
                loss = loss + nn.ops.reshape(lam.as_tensor(), ()) * excess
                if cfg.penalty_mu > 0:
                    loss = loss + excess * excess * (0.5 * cfg.penalty_mu)
                optimizer.zero_grad()
                lam.param.zero_grad()
                loss.backward()
                optimizer.step()
                lam.ascend()
            if verbose:
                arch = self.cell_space.expand(
                    tuple(int(i) for i in alpha.data.argmax(axis=1)))
                print(f"[cell] epoch {epoch:3d} "
                      f"metric {self.predictor.predict_arch(arch):.2f} "
                      f"λ {lam.value:+.3f}")

        cell = tuple(int(i) for i in alpha.data.argmax(axis=1))
        arch = self.cell_space.expand(cell)
        return arch, self.predictor.predict_arch(arch)
