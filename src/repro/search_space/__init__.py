"""`repro.search_space` — the LightNAS layer-wise architecture space (§3.1).

MobileNetV2-based operator vocabulary (MBConv kernel {3,5,7} × expansion
{3,6} + SkipConnect, K = 7), the FBNet-style 22-layer macro layout
(first layer fixed ⇒ 7^21 ≈ 5.6×10^17 candidates), and the
:class:`Architecture` encoding used everywhere else in the system.
"""

from .macro import LayerGeometry, MacroConfig
from .operators import (
    LIGHTNAS_OPERATORS,
    SKIP_INDEX,
    MBConv,
    OperatorSpec,
    SkipConnect,
    build_operator,
)
from .space import Architecture, SearchSpace

__all__ = [
    "LayerGeometry",
    "MacroConfig",
    "OperatorSpec",
    "LIGHTNAS_OPERATORS",
    "SKIP_INDEX",
    "MBConv",
    "SkipConnect",
    "build_operator",
    "Architecture",
    "SearchSpace",
]
