"""Vectorized query engine over the archive's numpy index.

All queries operate on the stacked :class:`~repro.archive.store.ArchiveIndex`
arrays — no Python loop over records:

* :func:`top_k` — best-k under latency/energy/MACs/params budgets,
* :func:`pareto_rows` — the per-device cost/score Pareto frontier
  (delegating to :func:`repro.eval.pareto.pareto_mask`),
* :func:`hamming_neighbors` — nearest genotypes by one-hot Hamming
  distance,
* :func:`describe_rows` — JSON-ready result rows for the CLI / service.

Budgets reference metric names: the architecture-global ``macs_m`` /
``params_m``, or the per-device ``latency_ms`` / ``energy_mj`` /
``measured_latency_ms`` / ``measured_energy_mj`` (which require a device).
Rows missing a budgeted or optimised metric are excluded — an unknown cost
cannot be certified to fit a budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..eval.pareto import pareto_mask
from .store import DEVICE_COST_METRICS, GLOBAL_METRICS, ArchiveIndex

__all__ = ["top_k", "pareto_rows", "hamming_neighbors", "describe_rows",
           "paginate", "QUERY_METRICS"]

#: every metric name a query may reference
QUERY_METRICS = GLOBAL_METRICS + DEVICE_COST_METRICS


def _column(index: ArchiveIndex, metric: str,
            device: Optional[str]) -> np.ndarray:
    if metric not in QUERY_METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {QUERY_METRICS}")
    return index.column(metric, device)


def _budget_mask(index: ArchiveIndex, budgets: Dict[str, float],
                 device: Optional[str]) -> np.ndarray:
    mask = np.ones(len(index), dtype=bool)
    for metric, limit in budgets.items():
        column = _column(index, metric, device)
        mask &= np.isfinite(column) & (column <= float(limit))
    return mask


def top_k(index: ArchiveIndex, k: int, *,
          objective: str = "score",
          device: Optional[str] = None,
          budgets: Optional[Dict[str, float]] = None) -> np.ndarray:
    """Row indices of the best ``k`` archived architectures.

    ``objective="score"`` maximises the accuracy-proxy score; any cost
    metric name minimises it.  Ties break by row order (stable), so results
    are deterministic across reopens of the same archive.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    values = _column(index, objective, device)
    feasible = np.isfinite(values) & _budget_mask(index, budgets or {},
                                                  device)
    ranked = values.copy()
    if objective == "score":
        ranked = -ranked
    ranked[~feasible] = np.inf
    order = np.argsort(ranked, kind="stable")
    return order[:min(k, int(feasible.sum()))]


def pareto_rows(index: ArchiveIndex, *,
                device: str,
                cost_metric: str = "latency_ms",
                quality: str = "score") -> np.ndarray:
    """Rows on the per-device (cost ↓, quality ↑) Pareto frontier.

    Returned sorted by ascending cost.  Rows missing either coordinate are
    excluded before the sweep.
    """
    costs = _column(index, cost_metric, device)
    qualities = _column(index, quality, device)
    valid = np.nonzero(np.isfinite(costs) & np.isfinite(qualities))[0]
    if valid.size == 0:
        return valid
    mask = pareto_mask(costs[valid], qualities[valid])
    front = valid[mask]
    return front[np.argsort(costs[front], kind="stable")]


def hamming_neighbors(index: ArchiveIndex, op_indices: Sequence[int],
                      k: int) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` archived genotypes nearest to a query architecture.

    Distance is the Hamming distance between one-hot encodings divided by
    two — i.e. the number of layers whose operator differs — computed as
    one ``(N, L)`` comparison, no per-record loop.  Returns ``(rows,
    distances)`` sorted by ascending distance (row order breaks ties).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    query = np.asarray(op_indices, dtype=np.int64)
    if query.shape != (index.ops.shape[1],):
        raise ValueError(
            f"query architecture has {query.size} layers, archive holds "
            f"{index.ops.shape[1]}-layer genotypes")
    distances = (index.ops != query[None, :]).sum(axis=1)
    order = np.argsort(distances, kind="stable")[:min(k, len(index))]
    return order, distances[order]


def paginate(rows: np.ndarray, offset: int = 0,
             limit: Optional[int] = None,
             ) -> Tuple[np.ndarray, Optional[int], int]:
    """Slice a result row set into one page.

    Selection (top-k ranking, Pareto sweep, neighbour sort) is vectorized
    and cheap; *serialisation* is what scales with the result count, so
    pagination slices the already-ranked ``rows`` and only the page is ever
    described to JSON.  Returns ``(page, next_offset, total)`` where
    ``next_offset`` is ``None`` on the last page.  Walking pages with the
    returned cursors reassembles exactly the unpaginated row set (the
    ranking is deterministic, so cursors are stable across requests as long
    as no records are appended in between).
    """
    rows = np.asarray(rows)
    offset = int(offset)
    if offset < 0:
        raise ValueError("offset must be non-negative")
    total = len(rows)
    if limit is None:
        page = rows[offset:] if offset else rows
        return page, None, total
    limit = int(limit)
    if limit < 1:
        raise ValueError("limit must be a positive integer")
    page = rows[offset:offset + limit]
    next_offset = offset + limit if offset + limit < total else None
    return page, next_offset, total


def describe_rows(index: ArchiveIndex, rows: np.ndarray,
                  device: Optional[str] = None) -> List[dict]:
    """JSON-ready dicts for selected rows (CLI / service responses)."""
    out: List[dict] = []
    for row in np.asarray(rows, dtype=np.int64).tolist():
        entry: Dict[str, object] = {
            "op_indices": index.ops[row].tolist(),
            "key": index.keys[row],
        }
        for metric in GLOBAL_METRICS:
            value = float(getattr(index, metric)[row])
            if np.isfinite(value):
                entry[metric] = value
        devices = [device] if device else index.devices
        for name in devices:
            if name not in index.devices:
                continue
            d = index.devices.index(name)
            metrics = {
                metric: float(index.cost[row, d, m])
                for m, metric in enumerate(DEVICE_COST_METRICS)
                if np.isfinite(index.cost[row, d, m])
            }
            if metrics:
                entry.setdefault("devices", {})[name] = metrics
        out.append(entry)
    return out
