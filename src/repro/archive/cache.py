"""Memoizing evaluation cache backed by the architecture archive.

The search baselines (evolution, random, RL) re-evaluate the same genotypes
constantly — across a population, across generations, and across runs.
:class:`EvalCache` sits between an engine and its cost models: repeated
genotypes are served from memory (preloaded from an
:class:`~repro.archive.store.ArchitectureArchive` when one is given)
instead of re-running the MLP predictor or the accuracy oracle, and newly
computed values are flushed back so the *next* run starts warm.

Correctness contract — **bit-identical results**: a cache hit must return
exactly the value the compute path would have produced, so a seeded search
rerun against a populated archive yields the same
:class:`~repro.core.result.SearchResult` as a cold run.  Three properties
make that hold:

* the predictor and oracle are pure functions of the genotype (all
  measurement noise stays outside the cache — RL's noisy latency
  measurements are never cached),
* ``predict_population`` on a row subset is bit-identical to the same rows
  inside a larger batch (regression-tested in
  ``tests/archive/test_cache.py``), so computing only the missing rows of a
  batch is safe,
* cached values are keyed by a **fingerprint of the model that produced
  them** (predictor weights / oracle parameters), so an archive populated
  under different weights is ignored rather than trusted.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..search_space.space import Architecture
from .store import ArchitectureArchive

__all__ = ["EvalCache", "model_fingerprint", "oracle_fingerprint"]


def model_fingerprint(predictor) -> str:
    """Short stable hash of a predictor's parameters.

    Covers the weights (``state_dict`` arrays for the MLP, the cost table
    for :class:`~repro.predictor.analytic.AnalyticCostPredictor`) plus the
    class name, so cached predictions are only reused under the exact model
    that produced them.
    """
    digest = hashlib.md5(type(predictor).__name__.encode())
    if hasattr(predictor, "state_dict"):
        state = predictor.state_dict()
        for name in sorted(state):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(
                np.asarray(state[name], dtype=np.float64)).tobytes())
    elif hasattr(predictor, "table"):
        digest.update(np.ascontiguousarray(
            np.asarray(predictor.table, dtype=np.float64)).tobytes())
        digest.update(repr(getattr(predictor, "fixed", None)).encode())
        digest.update(repr(getattr(predictor, "metric", None)).encode())
    else:
        digest.update(repr(predictor).encode())
    return digest.hexdigest()[:12]


def oracle_fingerprint(oracle) -> str:
    """Short stable hash of an accuracy oracle's defining parameters."""
    space = oracle.space
    parts = (type(oracle).__name__, space.num_layers, space.num_operators,
             repr(space.macro), oracle.width_mult, oracle.resolution,
             oracle.seed)
    return hashlib.md5(repr(parts).encode()).hexdigest()[:12]


class EvalCache:
    """Genotype-keyed memoization of predictor and oracle evaluations.

    Parameters
    ----------
    predictor:
        The engine's metric predictor (optional — RL caches only fitness).
    oracle:
        The engine's accuracy oracle (optional).
    archive:
        When given, matching cached values (same model fingerprints) are
        preloaded on construction and new values are written back by
        :meth:`flush`.
    """

    def __init__(self, predictor=None, oracle=None, *,
                 archive: Optional[ArchitectureArchive] = None) -> None:
        if predictor is None and oracle is None:
            raise ValueError("EvalCache needs a predictor and/or an oracle")
        self.predictor = predictor
        self.oracle = oracle
        self.archive = archive
        self.space = predictor.space if predictor is not None else oracle.space
        self._pred_fp = (model_fingerprint(predictor)
                         if predictor is not None else "")
        self._oracle_fp = (oracle_fingerprint(oracle)
                           if oracle is not None else "")
        self._pred: Dict[Tuple[int, ...], float] = {}
        self._fit: Dict[Tuple[Tuple[int, ...], int], float] = {}
        self._dirty: Set[Tuple[int, ...]] = set()
        self.predict_hits = self.predict_misses = 0
        self.fitness_hits = self.fitness_misses = 0
        if archive is not None:
            self._preload(archive)

    # ------------------------------------------------------------------
    def _preload(self, archive: ArchitectureArchive) -> None:
        pred_key = f"pred:{self._pred_fp}"
        fit_prefix = "top1_e"
        fit_suffix = f":{self._oracle_fp}"
        for record in archive.records():
            ops = record.op_indices
            for name, value in record.extras.items():
                if self._pred_fp and name == pred_key:
                    self._pred[ops] = value
                elif (self._oracle_fp and name.startswith(fit_prefix)
                        and name.endswith(fit_suffix)):
                    epochs = name[len(fit_prefix):-len(fit_suffix)]
                    if epochs.isdigit():
                        self._fit[(ops, int(epochs))] = value

    # ------------------------------------------------------------------
    # Predictor path
    # ------------------------------------------------------------------
    def predict_population(self, archs) -> np.ndarray:
        """Memoized :meth:`MLPPredictor.predict_population`.

        Rows already known (from this run or the preloaded archive) are
        served from memory; only the missing rows go through one batched
        predictor forward.
        """
        if self.predictor is None:
            raise ValueError("this cache has no predictor")
        ops = self.space.as_index_matrix(archs)
        out = np.empty(len(ops), dtype=np.float64)
        miss_rows = []
        for i, row in enumerate(map(tuple, ops.tolist())):
            value = self._pred.get(row)
            if value is None:
                miss_rows.append(i)
            else:
                out[i] = value
        self.predict_hits += len(ops) - len(miss_rows)
        self.predict_misses += len(miss_rows)
        if miss_rows:
            miss = np.asarray(miss_rows, dtype=np.int64)
            values = self.predictor.predict_population(ops[miss])
            out[miss] = values
            for i, value in zip(miss_rows, values.tolist()):
                row = tuple(ops[i].tolist())
                self._pred[row] = value
                self._dirty.add(row)
        return out

    def predict_arch(self, arch: Architecture) -> float:
        """Memoized scalar prediction (same values as the batched path)."""
        return float(self.predict_population(
            np.asarray([arch.op_indices], dtype=np.int64))[0])

    # ------------------------------------------------------------------
    # Oracle path
    # ------------------------------------------------------------------
    def fitness(self, arch: Architecture, epochs: int = 360) -> float:
        """Memoized ``oracle.evaluate(arch, epochs=epochs).top1``."""
        if self.oracle is None:
            raise ValueError("this cache has no oracle")
        key = (arch.op_indices, int(epochs))
        value = self._fit.get(key)
        if value is not None:
            self.fitness_hits += 1
            return value
        self.fitness_misses += 1
        value = self.oracle.evaluate(arch, epochs=epochs).top1
        self._fit[key] = value
        self._dirty.add(arch.op_indices)
        return value

    # ------------------------------------------------------------------
    # Archive write-back and telemetry
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.predict_hits + self.fitness_hits

    @property
    def misses(self) -> int:
        return self.predict_misses + self.fitness_misses

    def counters(self) -> dict:
        """Hit/miss counters in the shape the run journal emits."""
        total = self.hits + self.misses
        return {
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_hit_rate": round(self.hits / total, 6) if total else 0.0,
            "predict_hits": self.predict_hits,
            "predict_misses": self.predict_misses,
            "fitness_hits": self.fitness_hits,
            "fitness_misses": self.fitness_misses,
        }

    def flush(self, engine: str = "", seed: Optional[int] = None,
              config_fingerprint: str = "") -> int:
        """Write values computed this run back to the archive.

        One record per newly evaluated genotype, carrying the
        fingerprint-tagged extras plus provenance; returns the number of
        records written (0 when no archive is attached).
        """
        if self.archive is None or not self._dirty:
            self._dirty.clear()
            return 0
        written = 0
        for ops in sorted(self._dirty):
            extras: Dict[str, float] = {}
            score = None
            pred = self._pred.get(ops)
            if pred is not None and self._pred_fp:
                extras[f"pred:{self._pred_fp}"] = pred
            for (fit_ops, epochs), value in self._fit.items():
                if fit_ops == ops:
                    extras[f"top1_e{epochs}:{self._oracle_fp}"] = value
                    score = value if score is None else max(score, value)
            if not extras:
                continue
            self.archive.add(ops, extras=extras, score=score,
                             engine=engine, seed=seed,
                             config_fingerprint=config_fingerprint,
                             flush=False)
            written += 1
        self.archive.flush()
        self._dirty.clear()
        return written
