"""Memory-mapped archive segments: the compacted read path of the store.

The JSON-lines archive file is the **write-ahead log** (WAL): append-only,
CRC-framed, crash-safe — but replaying it on every open means boot cost
grows with history.  A *segment* is a compacted snapshot of the merged
archive state written as plain ``.npy`` arrays that :func:`numpy.load` can
memory-map: opening a segment-backed archive is an mmap plus a replay of
only the WAL lines appended *after* the segment was cut, instead of a
full-log parse.  Because the arrays are mmap'd read-only, multiple serving
processes (``repro serve --workers N``) share one physical copy of the
index through the page cache.

Layout (``<archive>.segments/``)::

    CURRENT                 one CRC-framed JSON line naming the live segment
    seg-0000000001/
        manifest.json       CRC-framed geometry + WAL binding
        ops.npy             (N, L) int64 genotypes
        cost.npy            (N, D, M) float64 per-device cost matrix
        score.npy           (N,) float64
        macs_m.npy          (N,) float64
        params_m.npy        (N,) float64
        keys.npy            (N,) S16 content addresses
        aux.jsonl           CRC-framed full record payloads (lazy read path
                            for ``records()`` / ``get()`` / the EvalCache)

Design rules, shared with :mod:`repro.archive.store`:

* **Atomic commit** — a segment is staged in a temp directory, renamed into
  place, and only then does ``CURRENT`` flip to it (temp-file +
  ``os.replace``), so a crashed compaction never leaves a half segment
  visible.  Superseded segments are garbage-collected after the flip.
* **Content binding** — the manifest records the WAL byte offset it covers
  *and* a CRC of the WAL bytes just before that offset, so a segment can
  never be silently applied to a different (rewritten, repaired, replaced)
  log: a mismatch raises :class:`ArchiveError` naming the remedy.
* **Loud failures** — a corrupt ``CURRENT``, manifest, or array raises
  :class:`ArchiveError`; the store never silently falls back to a state
  that could diverge from the log.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "ArchiveError",
    "Segment",
    "discard_segments",
    "load_current_segment",
    "segment_root_for",
    "write_segment",
]

SEGMENT_MAGIC = "repro-archive-segment"
SEGMENT_VERSION = 1

#: how many WAL bytes immediately before the covered offset are checksummed
#: into the manifest to bind a segment to its exact log content
WAL_CHECK_WINDOW = 4096

_ARRAY_FILES = ("ops", "cost", "score", "macs_m", "params_m", "keys")


class ArchiveError(RuntimeError):
    """An archive could not be written, read, or matched to this space."""


# ----------------------------------------------------------------------
# CRC line framing (shared with the WAL in store.py)
# ----------------------------------------------------------------------

def frame_line(payload: str) -> str:
    """One CRC-32-prefixed line: ``<crc8hex> <payload>\\n``."""
    return f"{zlib.crc32(payload.encode('utf-8')):08x} {payload}\n"


def unframe_line(line: str, path: str, lineno: int) -> dict:
    """Parse one framed line back to its JSON payload, loudly."""
    crc, sep, payload = line.partition(" ")
    if not sep or len(crc) != 8:
        raise ArchiveError(
            f"{path}:{lineno}: malformed archive line (no CRC frame) — the "
            f"file is corrupt or truncated; run repair_archive({path!r}) to "
            f"truncate the damaged tail, or delete the file")
    try:
        expected = int(crc, 16)
    except ValueError:
        raise ArchiveError(
            f"{path}:{lineno}: malformed CRC prefix {crc!r} — the file is "
            f"corrupt; run repair_archive({path!r}) to truncate the damaged "
            f"tail, or delete the file") from None
    if zlib.crc32(payload.encode("utf-8")) != expected:
        raise ArchiveError(
            f"{path}:{lineno}: CRC mismatch — the line is corrupt or "
            f"truncated; run repair_archive({path!r}) to truncate the "
            f"damaged tail, or delete the file")
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ArchiveError(
            f"{path}:{lineno}: CRC-valid but unparsable JSON ({exc}); the "
            f"file was written by an incompatible version — delete it"
        ) from exc


# ----------------------------------------------------------------------
# Segment objects
# ----------------------------------------------------------------------

@dataclass
class Segment:
    """One loaded (memory-mapped) segment.

    The arrays are read-only mmap views — queries can run on them directly
    with zero copies, and forked worker processes share the pages.
    """

    path: str
    num_layers: int
    num_operators: int
    devices: Tuple[str, ...]
    keys: Tuple[str, ...]
    wal_offset: int                 #: WAL bytes folded into this segment
    wal_check_crc: int              #: CRC-32 of the WAL bytes before offset
    ops: np.ndarray                 #: ``(N, L)`` int64, mmap'd
    cost: np.ndarray                #: ``(N, D, M)`` float64, mmap'd
    score: np.ndarray               #: ``(N,)`` float64, mmap'd
    macs_m: np.ndarray              #: ``(N,)`` float64, mmap'd
    params_m: np.ndarray            #: ``(N,)`` float64, mmap'd

    def __len__(self) -> int:
        return len(self.keys)

    # ------------------------------------------------------------------
    def aux_payloads(self) -> Iterator[dict]:
        """Full record payloads, row-aligned with the arrays (lazy read)."""
        aux = os.path.join(self.path, "aux.jsonl")
        try:
            with open(aux, "r", encoding="utf-8", newline="\n") as handle:
                for lineno, line in enumerate(handle, start=1):
                    if not line.endswith("\n"):
                        raise ArchiveError(
                            f"{aux}:{lineno}: truncated record payload — "
                            f"the segment is damaged; delete "
                            f"{self.path!r} and recompact")
                    yield unframe_line(line[:-1], aux, lineno)
        except OSError as exc:
            raise ArchiveError(
                f"segment {self.path!r} has no readable aux.jsonl ({exc}) — "
                f"delete the segment directory and recompact") from exc


def segment_root_for(archive_path: str) -> str:
    """Where an archive's segments live (``<archive>.segments/``)."""
    return archive_path + ".segments"


def _current_path(root: str) -> str:
    return os.path.join(root, "CURRENT")


def _wal_check_crc(wal_path: str, offset: int) -> int:
    """CRC-32 of the last ``WAL_CHECK_WINDOW`` WAL bytes before ``offset``."""
    window = min(WAL_CHECK_WINDOW, offset)
    with open(wal_path, "rb") as handle:
        handle.seek(offset - window)
        return zlib.crc32(handle.read(window))


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------

def write_segment(archive_path: str, *,
                  num_layers: int, num_operators: int,
                  devices: Sequence[str], cost_metrics: Sequence[str],
                  keys: Sequence[str],
                  ops: np.ndarray, cost: np.ndarray, score: np.ndarray,
                  macs_m: np.ndarray, params_m: np.ndarray,
                  payloads: Sequence[dict],
                  wal_offset: int) -> str:
    """Atomically write a new segment and flip ``CURRENT`` to it.

    ``wal_offset`` must be the archive file's byte length at the moment the
    passed state was captured (every line below that offset is folded into
    the arrays).  Returns the committed segment directory.
    """
    n = len(keys)
    if not (len(ops) == len(cost) == len(score) == len(macs_m)
            == len(params_m) == len(payloads) == n):
        raise ValueError("segment arrays, keys, and payloads must align")
    root = segment_root_for(archive_path)
    os.makedirs(root, exist_ok=True)
    check_crc = _wal_check_crc(archive_path, wal_offset)

    previous = _read_current(root)
    serial = 1
    if previous is not None:
        try:
            serial = int(previous.rsplit("-", 1)[1]) + 1
        except (IndexError, ValueError):
            serial = 1
    name = f"seg-{serial:010d}"
    staging = tempfile.mkdtemp(dir=root, prefix=f"{name}.tmp-")
    try:
        np.save(os.path.join(staging, "ops.npy"),
                np.ascontiguousarray(ops, dtype=np.int64))
        np.save(os.path.join(staging, "cost.npy"),
                np.ascontiguousarray(cost, dtype=np.float64))
        np.save(os.path.join(staging, "score.npy"),
                np.ascontiguousarray(score, dtype=np.float64))
        np.save(os.path.join(staging, "macs_m.npy"),
                np.ascontiguousarray(macs_m, dtype=np.float64))
        np.save(os.path.join(staging, "params_m.npy"),
                np.ascontiguousarray(params_m, dtype=np.float64))
        np.save(os.path.join(staging, "keys.npy"),
                np.asarray([k.encode("ascii") for k in keys], dtype="S16"))
        with open(os.path.join(staging, "aux.jsonl"), "w",
                  encoding="utf-8", newline="\n") as handle:
            for payload in payloads:
                handle.write(frame_line(json.dumps(payload)))
        manifest = {
            "magic": SEGMENT_MAGIC, "version": SEGMENT_VERSION,
            "num_layers": int(num_layers),
            "num_operators": int(num_operators),
            "devices": list(devices),
            "cost_metrics": list(cost_metrics), "records": n,
            "wal_offset": int(wal_offset),
            "wal_check_crc": int(check_crc),
        }
        with open(os.path.join(staging, "manifest.json"), "w",
                  encoding="utf-8", newline="\n") as handle:
            handle.write(frame_line(json.dumps(manifest)))
        final = os.path.join(root, name)
        os.rename(staging, final)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    _write_current(root, name)
    _collect_garbage(root, keep=name)
    return final


def _write_current(root: str, name: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".current.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(frame_line(json.dumps(
                {"magic": SEGMENT_MAGIC, "segment": name})))
        os.replace(tmp, _current_path(root))
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _read_current(root: str) -> Optional[str]:
    path = _current_path(root)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8", newline="\n") as handle:
        line = handle.read().rstrip("\n")
    payload = unframe_line(line, path, 1)
    if payload.get("magic") != SEGMENT_MAGIC or "segment" not in payload:
        raise ArchiveError(
            f"{path!r} is not a segment pointer (bad magic "
            f"{payload.get('magic')!r}) — delete the segment directory "
            f"{root!r} and recompact")
    return str(payload["segment"])


def _collect_garbage(root: str, keep: str) -> List[str]:
    """Remove superseded / half-written segment directories."""
    removed = []
    for entry in os.listdir(root):
        full = os.path.join(root, entry)
        if entry == keep or not os.path.isdir(full):
            continue
        if entry.startswith("seg-"):
            shutil.rmtree(full, ignore_errors=True)
            removed.append(entry)
    return removed


def discard_segments(archive_path: str) -> None:
    """Drop every segment of an archive (forces log-replay on next open)."""
    shutil.rmtree(segment_root_for(archive_path), ignore_errors=True)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def load_current_segment(archive_path: str, *,
                         num_layers: Optional[int] = None,
                         num_operators: Optional[int] = None,
                         cost_metrics: Optional[Sequence[str]] = None,
                         ) -> Optional[Segment]:
    """The archive's committed segment, mmap'd, or ``None`` if it has none.

    Validates geometry against the archive header values (when given) and
    the WAL binding (offset within the current log, content CRC matches);
    any inconsistency raises :class:`ArchiveError` — a segment that cannot
    be proven to describe a prefix of *this* log must never be served.
    """
    root = segment_root_for(archive_path)
    if not os.path.isdir(root):
        return None
    name = _read_current(root)
    if name is None:
        return None
    directory = os.path.join(root, name)
    manifest_path = os.path.join(directory, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8",
                  newline="\n") as handle:
            manifest = unframe_line(handle.read().rstrip("\n"),
                                    manifest_path, 1)
    except OSError as exc:
        raise ArchiveError(
            f"segment {directory!r} is referenced by CURRENT but has no "
            f"readable manifest ({exc}) — delete {root!r} and recompact"
        ) from exc
    if (manifest.get("magic") != SEGMENT_MAGIC
            or manifest.get("version") != SEGMENT_VERSION):
        raise ArchiveError(
            f"{manifest_path!r} has magic/version "
            f"{manifest.get('magic')!r}/{manifest.get('version')!r}, "
            f"expected {SEGMENT_MAGIC!r}/{SEGMENT_VERSION} — it was written "
            f"by an incompatible version; delete {root!r} and recompact")
    if num_layers is not None and (
            (int(manifest["num_layers"]), int(manifest["num_operators"]))
            != (int(num_layers), int(num_operators))):
        raise ArchiveError(
            f"segment {directory!r} holds a {manifest['num_layers']}-layer "
            f"/ {manifest['num_operators']}-operator space but the archive "
            f"header says {num_layers} layers / {num_operators} operators — "
            f"delete {root!r} and recompact")
    manifest_metrics = tuple(str(m) for m in manifest.get("cost_metrics", ()))
    if cost_metrics is not None and manifest_metrics != tuple(cost_metrics):
        raise ArchiveError(
            f"segment {directory!r} stacks cost metrics {manifest_metrics}, "
            f"this library expects {tuple(cost_metrics)} — it was written "
            f"by an incompatible version; delete {root!r} and recompact")
    wal_offset = int(manifest["wal_offset"])
    wal_size = os.path.getsize(archive_path)
    if wal_offset > wal_size:
        raise ArchiveError(
            f"segment {directory!r} covers {wal_offset} WAL bytes but "
            f"{archive_path!r} only has {wal_size} — the log was truncated "
            f"or replaced after compaction; delete {root!r} and recompact "
            f"(or restore the full log)")
    if _wal_check_crc(archive_path, wal_offset) != int(
            manifest["wal_check_crc"]):
        raise ArchiveError(
            f"segment {directory!r} does not match the content of "
            f"{archive_path!r} at offset {wal_offset} — the log was "
            f"rewritten after compaction; delete {root!r} and recompact")

    arrays: Dict[str, np.ndarray] = {}
    for stem in _ARRAY_FILES:
        file = os.path.join(directory, f"{stem}.npy")
        try:
            arrays[stem] = np.load(file, mmap_mode="r")
        except (OSError, ValueError) as exc:
            raise ArchiveError(
                f"segment array {file!r} is missing or unreadable ({exc}) — "
                f"delete {root!r} and recompact") from exc
    n = int(manifest["records"])
    devices = tuple(str(d) for d in manifest["devices"])
    expected_shapes = {
        "ops": (n, int(manifest["num_layers"])),
        "cost": (n, len(devices), len(manifest_metrics)),
        "score": (n,), "macs_m": (n,), "params_m": (n,), "keys": (n,),
    }
    for stem, shape in expected_shapes.items():
        if arrays[stem].shape != shape:
            raise ArchiveError(
                f"segment array {stem!r} in {directory!r} has shape "
                f"{arrays[stem].shape}, manifest implies {shape} — the "
                f"segment is damaged; delete {root!r} and recompact")
    return Segment(
        path=directory,
        num_layers=int(manifest["num_layers"]),
        num_operators=int(manifest["num_operators"]),
        devices=devices,
        keys=tuple(k.decode("ascii") for k in arrays["keys"]),
        wal_offset=wal_offset,
        wal_check_crc=int(manifest["wal_check_crc"]),
        ops=arrays["ops"], cost=arrays["cost"], score=arrays["score"],
        macs_m=arrays["macs_m"], params_m=arrays["params_m"],
    )
