"""Batched JSON query service over the predictor and the archive.

``python -m repro serve`` turns the library into a small traffic-serving
system: a stdlib :mod:`http.server` JSON API exposing

* ``POST /predict`` — metric predictions for a batch of architectures,
* ``POST /query``   — budgeted top-k over the archive (paginated),
* ``POST /pareto``  — the per-device cost/score Pareto frontier (paginated),
* ``POST /nearest`` — Hamming nearest neighbours of a genotype (paginated),
* ``GET  /stats``   — request/batch counters and archive summary,
* ``GET  /health``  — liveness probe,
* ``POST /shutdown``— clean remote shutdown (used by the CI smoke test).

The serving hot path is the :class:`BatchingPredictor`: concurrent
``/predict`` requests are coalesced by a dispatcher thread into single
:meth:`~repro.predictor.mlp.MLPPredictor.predict_population` calls — a
burst of R requests is answered with far fewer than R predictor forwards,
which ``/stats`` makes observable (``predict_requests`` vs
``predict_batches``).  Each architecture's prediction is bit-identical to a
direct ``predict_population`` call (row-subset parity, see
:mod:`repro.archive.cache`), so batching is invisible to clients.

Scaling shape: archive queries run against immutable mmap-friendly
:class:`~repro.archive.store.ArchiveIndex` snapshots (safe under the
threading server and shared across forked workers), and the archive
endpoints accept ``offset``/``limit`` with a ``next`` cursor so top-k over
a huge archive never serializes one giant JSON body.  ``repro serve
--workers N`` runs N processes accepting on one ``SO_REUSEPORT`` socket
group over the same memory-mapped segments (see ``repro.cli``).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

import numpy as np

from ..search_space.space import SearchSpace
from . import query as queries
from .store import ArchitectureArchive

__all__ = ["ArchiveService", "BatchingPredictor", "make_server"]


class _Pending:
    """One enqueued predict request awaiting its slice of a batch."""

    __slots__ = ("ops", "event", "result", "error", "cancelled")

    def __init__(self, ops: np.ndarray) -> None:
        self.ops = ops
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[Exception] = None
        self.cancelled = False


class BatchingPredictor:
    """Coalesce concurrent predict calls into single batched forwards.

    Parameters
    ----------
    predictor:
        Anything with ``predict_population((N, L) ops) -> (N,)``.
    space:
        Validates incoming op-index matrices.
    window_s:
        How long the dispatcher waits after the first request of a batch
        for stragglers to join (the batching window).
    max_batch:
        Dispatch early once this many architectures are pending.

    A caller that times out *cancels* its pending item: the dispatcher
    drops cancelled items at dispatch time, so an abandoned request costs
    no predictor forward and never drifts the ``predict_archs`` /
    ``largest_batch`` counters.  (An item already in flight when its caller
    gives up cannot be recalled — only its result is discarded.)
    """

    def __init__(self, predictor, space: SearchSpace, *,
                 window_s: float = 0.004, max_batch: int = 8192) -> None:
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.predictor = predictor
        self.space = space
        self.window_s = window_s
        self.max_batch = max_batch
        self.requests = 0
        self.batches = 0
        self.archs = 0
        self.largest_batch = 0
        self.cancelled = 0
        self._pending: List[_Pending] = []
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="predict-batcher")
        self._thread.start()

    # ------------------------------------------------------------------
    def predict(self, archs, timeout: float = 30.0) -> np.ndarray:
        """Blocking batched prediction for one caller's architectures."""
        ops = self.space.as_index_matrix(archs)
        item = _Pending(ops)
        with self._cond:
            if self._closed:
                raise RuntimeError("the batching predictor is closed")
            self.requests += 1
            self._pending.append(item)
            self._cond.notify_all()
        if not item.event.wait(timeout):
            with self._cond:
                item.cancelled = True
                self.cancelled += 1
                if item in self._pending:
                    self._pending.remove(item)
            raise TimeoutError("batched prediction timed out")
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                # batching window: wait for stragglers after the first
                # request arrives, dispatching early at max_batch
                deadline = time.monotonic() + self.window_s
                while not self._closed:
                    size = sum(len(p.ops) for p in self._pending
                               if not p.cancelled)
                    remaining = deadline - time.monotonic()
                    if size >= self.max_batch or remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                # dispatch-time cancellation check: items whose caller
                # timed out are dropped here, before any stacking
                batch = [p for p in self._pending if not p.cancelled]
                self._pending = []
            if not batch:
                continue
            stacked = np.concatenate([p.ops for p in batch], axis=0)
            try:
                predictions = self.predictor.predict_population(stacked)
            except Exception as exc:  # surface to every waiter, keep serving
                for item in batch:
                    item.error = exc
                    item.event.set()
                continue
            with self._cond:
                self.batches += 1
                self.archs += len(stacked)
                self.largest_batch = max(self.largest_batch, len(stacked))
            offset = 0
            for item in batch:
                item.result = predictions[offset:offset + len(item.ops)]
                offset += len(item.ops)
                item.event.set()

    def stats(self) -> dict:
        with self._cond:
            return {
                "predict_requests": self.requests,
                "predict_batches": self.batches,
                "predict_archs": self.archs,
                "predict_cancelled": self.cancelled,
                "largest_batch": self.largest_batch,
            }

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------

class ArchiveService:
    """Request handlers behind the HTTP endpoints (also usable in-process)."""

    def __init__(self, space: SearchSpace, predictor, *,
                 metric_name: str = "latency_ms",
                 device_name: str = "",
                 archive: Optional[ArchitectureArchive] = None,
                 window_s: float = 0.004, max_batch: int = 8192,
                 default_page_limit: Optional[int] = None) -> None:
        self.space = space
        self.metric_name = metric_name
        self.device_name = device_name
        self.archive = archive
        self.default_page_limit = default_page_limit
        self.batcher = BatchingPredictor(predictor, space,
                                         window_s=window_s,
                                         max_batch=max_batch)
        self.started = time.time()
        self._endpoint_counts: Dict[str, int] = {}
        self._count_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()

    def _count(self, endpoint: str) -> None:
        with self._count_lock:
            self._endpoint_counts[endpoint] = (
                self._endpoint_counts.get(endpoint, 0) + 1)

    def _parse_archs(self, payload: dict, field: str = "archs") -> np.ndarray:
        archs = payload.get(field)
        if not isinstance(archs, list) or not archs:
            raise ValueError(f"body needs a non-empty {field!r} list")
        try:
            ops = np.asarray(archs, dtype=np.int64)
        except (TypeError, ValueError):
            raise ValueError(
                f"{field!r} must be a list of equal-length integer lists"
            ) from None
        if ops.ndim == 1:
            ops = ops[None, :]
        return self.space.as_index_matrix(ops)

    def _require_archive(self) -> ArchitectureArchive:
        if self.archive is None:
            raise ValueError(
                "this server has no archive loaded; restart with --archive")
        return self.archive

    def _page(self, payload: dict, rows: np.ndarray):
        """Apply the request's ``offset``/``limit`` to a ranked row set."""
        try:
            offset = int(payload.get("offset", 0))
        except (TypeError, ValueError):
            raise ValueError("'offset' must be an integer") from None
        limit = payload.get("limit", self.default_page_limit)
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError):
                raise ValueError("'limit' must be an integer") from None
        return queries.paginate(rows, offset, limit) + (offset,)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def predict(self, payload: dict) -> dict:
        self._count("predict")
        ops = self._parse_archs(payload)
        predictions = self.batcher.predict(ops)
        return {
            "metric": self.metric_name,
            "device": self.device_name,
            "count": len(ops),
            "predictions": predictions.tolist(),
        }

    def _check_device(self, index, payload: dict) -> None:
        """400 on an unknown payload ``device`` instead of silently ignoring.

        Global objectives (``score``, ``macs_m``) never consult the device,
        so without this check a typoed or un-retargeted device name would
        return a 200 whose rows simply lack that device's costs.  Only the
        explicit payload value is validated — the server-side default
        device keeps its historical behaviour.  Raises ``ValueError``,
        which ``_dispatch`` maps to a JSON 400 naming the archive's
        devices (fleet devices join the list once ``repro fleet retarget
        --write-back`` records them).
        """
        device = payload.get("device")
        if device and device not in index.devices:
            known = ", ".join(index.devices) or "(none)"
            raise ValueError(
                f"unknown device {device!r} for this archive; "
                f"known devices: {known}")

    def query(self, payload: dict) -> dict:
        self._count("query")
        archive = self._require_archive()
        index = archive.index()
        self._check_device(index, payload)
        device = payload.get("device") or self.device_name or None
        rows = queries.top_k(
            index,
            int(payload.get("k", 10)),
            objective=payload.get("objective", "score"),
            device=device,
            budgets=payload.get("budgets") or {},
        )
        page, next_offset, total, offset = self._page(payload, rows)
        return {"count": len(page), "total": total,
                "offset": offset, "next": next_offset,
                "results": queries.describe_rows(index, page, device)}

    def pareto(self, payload: dict) -> dict:
        self._count("pareto")
        archive = self._require_archive()
        index = archive.index()
        self._check_device(index, payload)
        device = payload.get("device") or self.device_name
        if not device:
            raise ValueError("pareto needs a device (body or --device)")
        rows = queries.pareto_rows(
            index, device=device,
            cost_metric=payload.get("cost_metric", "latency_ms"),
            quality=payload.get("quality", "score"))
        page, next_offset, total, offset = self._page(payload, rows)
        return {"count": len(page), "total": total, "device": device,
                "offset": offset, "next": next_offset,
                "results": queries.describe_rows(index, page, device)}

    def nearest(self, payload: dict) -> dict:
        self._count("nearest")
        archive = self._require_archive()
        index = archive.index()
        self._check_device(index, payload)
        arch = payload.get("arch")
        if not isinstance(arch, list):
            raise ValueError("body needs an 'arch' list of operator indices")
        rows, distances = queries.hamming_neighbors(
            index, arch, int(payload.get("k", 5)))
        page, next_offset, total, offset = self._page(payload, rows)
        results = queries.describe_rows(index, page,
                                        payload.get("device") or None)
        page_distances = distances[offset:offset + len(page)]
        for entry, distance in zip(results, page_distances.tolist()):
            entry["hamming_layers"] = distance
        return {"count": len(page), "total": total,
                "offset": offset, "next": next_offset, "results": results}

    def stats(self) -> dict:
        self._count("stats")
        payload = {
            "uptime_s": round(time.time() - self.started, 3),
            "metric": self.metric_name,
            "device": self.device_name,
            **self.batcher.stats(),
        }
        with self._count_lock:
            payload["endpoints"] = dict(self._endpoint_counts)
        payload["archive"] = (self.archive.stats()
                              if self.archive is not None else None)
        return payload

    def close(self) -> None:
        """Shut the batcher thread and archive handle down (idempotent)."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self.batcher.close()
        if self.archive is not None:
            self.archive.close()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # quiet by default: the CLI prints one line per server, not per request
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def service(self) -> ArchiveService:
        return self.server.service  # type: ignore[attr-defined]

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON ({exc})")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        """Run one endpoint, mapping every failure to a JSON error body.

        GET and POST share this path: an :class:`ArchiveError` (or any
        unexpected exception) from a handler must produce a 5xx JSON
        response, never a silently dropped connection.
        """
        try:
            self._send_json(200, handler())
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
        except TimeoutError as exc:
            self._send_json(503, {"error": str(exc)})
        except Exception as exc:
            self._send_json(500, {"error": f"internal error: {exc}"})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/stats":
            self._dispatch(self.service.stats)
        elif self.path == "/health":
            self._dispatch(lambda: {"ok": True})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        routes = {
            "/predict": self.service.predict,
            "/query": self.service.query,
            "/pareto": self.service.pareto,
            "/nearest": self.service.nearest,
        }
        if self.path == "/shutdown":
            self._send_json(200, {"ok": True, "shutting_down": True})
            server, service = self.server, self.service

            def stop() -> None:
                # shutdown() returns once serve_forever has exited; only
                # then is it safe to close the batcher and archive handle
                server.shutdown()
                service.close()

            threading.Thread(target=stop, daemon=True).start()
            return
        handler = routes.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        self._dispatch(lambda: handler(self._read_json()))


class _ReusePortHTTPServer(ThreadingHTTPServer):
    """A threading server whose listener joins an ``SO_REUSEPORT`` group.

    Every worker process binds its *own* socket to the same address and
    the kernel load-balances incoming connections across them — no fd
    passing, no accept-loop handoff.
    """

    def server_bind(self) -> None:
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
            raise OSError("this platform has no SO_REUSEPORT; "
                          "run with workers=1")
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def make_server(service: ArchiveService, host: str = "127.0.0.1",
                port: int = 0, verbose: bool = False,
                reuse_port: bool = False) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for a service (port 0 = ephemeral).

    With ``reuse_port=True`` the listener joins an ``SO_REUSEPORT`` group,
    so several processes can serve one address (``repro serve --workers``).
    """
    server_cls = _ReusePortHTTPServer if reuse_port else ThreadingHTTPServer
    server = server_cls((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server
