"""Persistent architecture archive, query engine, cache, and service.

* :mod:`repro.archive.store` — append-only crash-safe on-disk archive with
  an in-memory numpy index (:class:`ArchitectureArchive`).
* :mod:`repro.archive.query` — vectorized top-k / Pareto / Hamming-NN
  queries over the stacked index.
* :mod:`repro.archive.cache` — :class:`EvalCache`, the memoizing layer the
  search baselines evaluate through.
* :mod:`repro.archive.service` — the batched JSON API behind
  ``python -m repro serve``.
"""

from .cache import EvalCache, model_fingerprint, oracle_fingerprint
from .query import describe_rows, hamming_neighbors, pareto_rows, top_k
from .service import ArchiveService, BatchingPredictor, make_server
from .store import (
    ArchitectureArchive,
    ArchiveError,
    ArchiveIndex,
    ArchRecord,
    arch_key,
    repair_archive,
)

__all__ = [
    "ArchRecord",
    "ArchitectureArchive",
    "ArchiveError",
    "ArchiveIndex",
    "ArchiveService",
    "BatchingPredictor",
    "EvalCache",
    "arch_key",
    "describe_rows",
    "hamming_neighbors",
    "make_server",
    "model_fingerprint",
    "oracle_fingerprint",
    "pareto_rows",
    "repair_archive",
    "top_k",
]
