"""Append-only, crash-safe on-disk archive of evaluated architectures.

Every search engine in this repository evaluates thousands-to-millions of
architectures per run and then discards them.  The archive is the
NAS-bench-style persistent record that fixes that: one
:class:`ArchitectureArchive` file accumulates every architecture the system
has ever evaluated — deduplicated across generations, engines, and runs —
together with per-device cost records (*One Proxy Device Is Enough*
motivates keeping costs per device so one store serves many deployment
targets) and provenance (engine, seed, config fingerprint, reusing
:func:`repro.runtime.checkpoint.fingerprint_of`).

Design rules, mirroring :mod:`repro.runtime.checkpoint`:

* **Append-only JSON lines** — one record per line, each protected by a
  CRC-32 prefix and flushed on write, so a crashed run leaves a readable
  archive up to the crash.
* **Loud failures** — a truncated or corrupt line raises
  :class:`ArchiveError` with a remedy (:func:`repair_archive` truncates a
  damaged tail), never silently drops data.
* **Content addressing** — records are keyed by the SHA-1 of the
  architecture's one-hot encoding (the ᾱ matrix of Eq. 4), so the same
  genotype written by different engines/runs merges into one record.
* **In-memory numpy index** — :meth:`ArchitectureArchive.index` rebuilds a
  stacked ``(N, L)`` op-index matrix plus an ``(N, D, M)`` per-device cost
  matrix on open; the query engine (:mod:`repro.archive.query`) operates on
  those arrays with no Python-loop-per-record.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from hashlib import sha1
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ARCHIVE_VERSION",
    "ARCHIVE_MAGIC",
    "DEVICE_COST_METRICS",
    "ArchiveError",
    "ArchRecord",
    "ArchiveIndex",
    "ArchitectureArchive",
    "arch_key",
    "repair_archive",
]

ARCHIVE_VERSION = 1
ARCHIVE_MAGIC = "repro-archive"

#: per-device cost fields stacked into the numpy index, in column order
DEVICE_COST_METRICS = ("latency_ms", "energy_mj",
                       "measured_latency_ms", "measured_energy_mj")

#: architecture-global fields stacked into the numpy index
GLOBAL_METRICS = ("macs_m", "params_m", "score")


class ArchiveError(RuntimeError):
    """An archive could not be written, read, or matched to this space."""


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------

def arch_key(op_indices: Sequence[int], num_operators: int) -> str:
    """Content address of an architecture: SHA-1 of its one-hot encoding.

    The hash covers the full ``(L, K)`` ᾱ matrix bytes (not just the op
    indices), so the address is exactly "the one-hot encoding's hash" and
    two spaces with different operator vocabularies never share keys.
    """
    ops = np.asarray(op_indices, dtype=np.int64)
    if ops.ndim != 1 or ops.size == 0:
        raise ValueError("op_indices must be a non-empty 1-D sequence")
    if ops.min() < 0 or ops.max() >= num_operators:
        raise ValueError("operator index out of range for this space")
    one_hot = np.zeros((ops.size, num_operators), dtype=np.uint8)
    one_hot[np.arange(ops.size), ops] = 1
    return sha1(one_hot.tobytes()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------

@dataclass
class ArchRecord:
    """One archived architecture with everything known about it.

    Attributes
    ----------
    op_indices:
        The genotype (one operator index per searchable layer).
    key:
        Content address (:func:`arch_key`).
    devices:
        ``{device_name: {metric: value}}`` — per-device predicted/true and
        measured latency/energy (see :data:`DEVICE_COST_METRICS`).
    macs_m / params_m:
        Device-independent compute/size costs (millions).
    score:
        Accuracy-proxy score (oracle top-1), when evaluated.
    extras:
        Model-fingerprint-tagged cached values (e.g. MLP-predicted metrics
        keyed ``"pred:<fingerprint>"``) — the :class:`~repro.archive.cache.
        EvalCache` namespace.  Predictions depend on the predictor weights,
        so they are never merged across fingerprints.
    provenance:
        ``{"engine", "seed", "fingerprint"}`` of the run that wrote the
        record (last writer wins on merge).
    """

    op_indices: Tuple[int, ...]
    key: str
    devices: Dict[str, Dict[str, float]] = field(default_factory=dict)
    macs_m: Optional[float] = None
    params_m: Optional[float] = None
    score: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def merge(self, other: "ArchRecord") -> None:
        """Fold a later record for the same genotype into this one."""
        if other.key != self.key:
            raise ValueError("cannot merge records of different architectures")
        for device, metrics in other.devices.items():
            self.devices.setdefault(device, {}).update(metrics)
        if other.macs_m is not None:
            self.macs_m = other.macs_m
        if other.params_m is not None:
            self.params_m = other.params_m
        if other.score is not None:
            self.score = other.score
        self.extras.update(other.extras)
        if other.provenance:
            self.provenance = dict(other.provenance)

    def to_payload(self) -> dict:
        payload: Dict[str, object] = {"key": self.key,
                                      "ops": list(self.op_indices)}
        if self.devices:
            payload["devices"] = self.devices
        if self.macs_m is not None:
            payload["macs_m"] = self.macs_m
        if self.params_m is not None:
            payload["params_m"] = self.params_m
        if self.score is not None:
            payload["score"] = self.score
        if self.extras:
            payload["extras"] = self.extras
        if self.provenance:
            payload["provenance"] = self.provenance
        return payload

    @staticmethod
    def from_payload(payload: dict) -> "ArchRecord":
        return ArchRecord(
            op_indices=tuple(int(i) for i in payload["ops"]),
            key=str(payload["key"]),
            devices={str(d): {str(m): float(v) for m, v in metrics.items()}
                     for d, metrics in payload.get("devices", {}).items()},
            macs_m=payload.get("macs_m"),
            params_m=payload.get("params_m"),
            score=payload.get("score"),
            extras={str(k): float(v)
                    for k, v in payload.get("extras", {}).items()},
            provenance=dict(payload.get("provenance", {})),
        )


# ----------------------------------------------------------------------
# In-memory numpy index
# ----------------------------------------------------------------------

@dataclass
class ArchiveIndex:
    """Stacked numpy view of the archive, rebuilt on open.

    The query engine operates entirely on these arrays: ``ops`` for Hamming
    nearest-neighbour search, ``cost``/``score``/``macs_m``/``params_m``
    for budgeted top-k and Pareto queries.  Missing values are NaN.
    """

    ops: np.ndarray                 #: ``(N, L)`` int64 genotypes
    keys: Tuple[str, ...]           #: content addresses, aligned with rows
    score: np.ndarray               #: ``(N,)`` accuracy-proxy score
    macs_m: np.ndarray              #: ``(N,)`` multi-adds, millions
    params_m: np.ndarray            #: ``(N,)`` parameters, millions
    devices: Tuple[str, ...]        #: device names, aligned with axis 1
    cost: np.ndarray                #: ``(N, D, M)`` per-device cost matrix

    def __len__(self) -> int:
        return len(self.ops)

    def device_column(self, device: str, metric: str) -> np.ndarray:
        """The ``(N,)`` column of one per-device cost metric."""
        if metric not in DEVICE_COST_METRICS:
            raise ValueError(
                f"unknown device metric {metric!r}; expected one of "
                f"{DEVICE_COST_METRICS}")
        try:
            d = self.devices.index(device)
        except ValueError:
            raise ValueError(
                f"device {device!r} has no records in this archive; "
                f"known devices: {self.devices or '(none)'}") from None
        return self.cost[:, d, DEVICE_COST_METRICS.index(metric)]

    def column(self, metric: str, device: Optional[str] = None) -> np.ndarray:
        """A ``(N,)`` metric column, resolving per-device metrics."""
        if metric in GLOBAL_METRICS:
            return getattr(self, metric)
        if device is None:
            raise ValueError(
                f"metric {metric!r} is per-device; pass device=...")
        return self.device_column(device, metric)

    @staticmethod
    def from_records(records: Sequence[ArchRecord],
                     num_layers: int) -> "ArchiveIndex":
        n = len(records)
        ops = np.zeros((n, num_layers), dtype=np.int64)
        score = np.full(n, np.nan)
        macs = np.full(n, np.nan)
        params = np.full(n, np.nan)
        device_names = sorted({d for r in records for d in r.devices})
        cost = np.full((n, len(device_names), len(DEVICE_COST_METRICS)),
                       np.nan)
        device_pos = {name: i for i, name in enumerate(device_names)}
        metric_pos = {name: i for i, name in enumerate(DEVICE_COST_METRICS)}
        for i, record in enumerate(records):
            ops[i] = record.op_indices
            if record.score is not None:
                score[i] = record.score
            if record.macs_m is not None:
                macs[i] = record.macs_m
            if record.params_m is not None:
                params[i] = record.params_m
            for device, metrics in record.devices.items():
                for metric, value in metrics.items():
                    column = metric_pos.get(metric)
                    if column is not None:
                        cost[i, device_pos[device], column] = value
        return ArchiveIndex(ops=ops, keys=tuple(r.key for r in records),
                            score=score, macs_m=macs, params_m=params,
                            devices=tuple(device_names), cost=cost)


# ----------------------------------------------------------------------
# Line framing
# ----------------------------------------------------------------------

def _frame(payload: str) -> str:
    return f"{zlib.crc32(payload.encode('utf-8')):08x} {payload}\n"


def _unframe(line: str, path: str, lineno: int) -> dict:
    crc, sep, payload = line.partition(" ")
    if not sep or len(crc) != 8:
        raise ArchiveError(
            f"{path}:{lineno}: malformed archive line (no CRC frame) — the "
            f"file is corrupt or truncated; run repair_archive({path!r}) to "
            f"truncate the damaged tail, or delete the file")
    try:
        expected = int(crc, 16)
    except ValueError:
        raise ArchiveError(
            f"{path}:{lineno}: malformed CRC prefix {crc!r} — the file is "
            f"corrupt; run repair_archive({path!r}) to truncate the damaged "
            f"tail, or delete the file") from None
    if zlib.crc32(payload.encode("utf-8")) != expected:
        raise ArchiveError(
            f"{path}:{lineno}: CRC mismatch — the line is corrupt or "
            f"truncated; run repair_archive({path!r}) to truncate the "
            f"damaged tail, or delete the file")
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ArchiveError(
            f"{path}:{lineno}: CRC-valid but unparsable JSON ({exc}); the "
            f"file was written by an incompatible version — delete it"
        ) from exc


def _read_lines(path: str) -> List[str]:
    """Raw archive lines; a final unterminated line raises (crash tail)."""
    with open(path, "r", encoding="utf-8", newline="\n") as handle:
        raw = handle.read()
    if not raw:
        raise ArchiveError(
            f"archive {path!r} is empty — it was created but never wrote a "
            f"header; delete the file")
    lines = raw.split("\n")
    if lines[-1] != "":
        raise ArchiveError(
            f"{path}:{len(lines)}: final line has no newline — a writer "
            f"crashed mid-append; run repair_archive({path!r}) to truncate "
            f"the damaged tail, or delete the file")
    return lines[:-1]


def repair_archive(path: str) -> int:
    """Truncate a crash-damaged archive to its longest valid prefix.

    Returns the number of lines dropped.  Raises :class:`ArchiveError` if
    even the header line is unreadable (nothing to salvage).
    """
    with open(path, "r", encoding="utf-8", newline="\n") as handle:
        raw = handle.read()
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    valid: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            _unframe(line, path, lineno)
        except ArchiveError:
            break
        valid.append(line)
    if not valid:
        raise ArchiveError(
            f"archive {path!r} has an unreadable header — nothing to "
            f"salvage; delete the file")
    dropped = len(lines) - len(valid)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".archive.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="\n") as handle:
            handle.write("\n".join(valid) + "\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return dropped


# ----------------------------------------------------------------------
# The archive
# ----------------------------------------------------------------------

class ArchitectureArchive:
    """Open (or create) an on-disk architecture archive.

    Parameters
    ----------
    path:
        Archive file (created with a header if missing).
    num_layers / num_operators:
        Space geometry.  Required when creating a new archive; when opening
        an existing one they are validated against the header (a mismatch
        raises :class:`ArchiveError` — records from another space would be
        silently meaningless).  Pass ``space=`` as a convenience instead.
    """

    def __init__(self, path: str,
                 num_layers: Optional[int] = None,
                 num_operators: Optional[int] = None,
                 space=None) -> None:
        if space is not None:
            num_layers = space.num_layers
            num_operators = space.num_operators
        self.path = path
        self._records: Dict[str, ArchRecord] = {}   # key → merged record
        self._order: List[str] = []                 # first-seen order
        self._index: Optional[ArchiveIndex] = None
        if os.path.exists(path):
            self._replay(num_layers, num_operators)
        else:
            if num_layers is None or num_operators is None:
                raise ArchiveError(
                    f"creating archive {path!r} requires the space geometry "
                    f"(num_layers and num_operators, or space=...)")
            self.num_layers = int(num_layers)
            self.num_operators = int(num_operators)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            header = {"magic": ARCHIVE_MAGIC, "version": ARCHIVE_VERSION,
                      "num_layers": self.num_layers,
                      "num_operators": self.num_operators}
            with open(path, "w", encoding="utf-8", newline="\n") as handle:
                handle.write(_frame(json.dumps(header)))
        self._handle = open(path, "a", encoding="utf-8", newline="\n")

    # ------------------------------------------------------------------
    def _replay(self, num_layers: Optional[int],
                num_operators: Optional[int]) -> None:
        lines = _read_lines(self.path)
        header = _unframe(lines[0], self.path, 1)
        if header.get("magic") != ARCHIVE_MAGIC:
            raise ArchiveError(
                f"{self.path!r} is not an architecture archive (bad magic "
                f"{header.get('magic')!r})")
        if header.get("version") != ARCHIVE_VERSION:
            raise ArchiveError(
                f"archive {self.path!r} has format version "
                f"{header.get('version')!r}, expected {ARCHIVE_VERSION} — "
                f"it was written by an incompatible version of this library")
        self.num_layers = int(header["num_layers"])
        self.num_operators = int(header["num_operators"])
        if num_layers is not None and (
                (num_layers, num_operators)
                != (self.num_layers, self.num_operators)):
            raise ArchiveError(
                f"archive {self.path!r} holds a {self.num_layers}-layer / "
                f"{self.num_operators}-operator space, but this run uses "
                f"{num_layers} layers / {num_operators} operators — use a "
                f"separate archive per space geometry")
        for lineno, line in enumerate(lines[1:], start=2):
            payload = _unframe(line, self.path, lineno)
            try:
                record = ArchRecord.from_payload(payload)
            except (KeyError, TypeError, ValueError) as exc:
                raise ArchiveError(
                    f"{self.path}:{lineno}: CRC-valid but malformed record "
                    f"({exc}) — the file was written by an incompatible "
                    f"version; delete it") from exc
            if len(record.op_indices) != self.num_layers:
                raise ArchiveError(
                    f"{self.path}:{lineno}: record has "
                    f"{len(record.op_indices)} layers, header says "
                    f"{self.num_layers} — the file is inconsistent")
            self._merge(record)

    def _merge(self, record: ArchRecord) -> None:
        existing = self._records.get(record.key)
        if existing is None:
            self._records[record.key] = record
            self._order.append(record.key)
        else:
            existing.merge(record)
        self._index = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add_record(self, record: ArchRecord, flush: bool = True) -> None:
        """Append one record (merged into the in-memory view)."""
        if len(record.op_indices) != self.num_layers:
            raise ValueError(
                f"record has {len(record.op_indices)} layers, archive "
                f"expects {self.num_layers}")
        if record.key != arch_key(record.op_indices, self.num_operators):
            raise ValueError("record key does not match its op_indices")
        self._handle.write(_frame(json.dumps(record.to_payload())))
        if flush:
            self._handle.flush()
        self._merge(record)

    def add(self, op_indices: Sequence[int], *,
            device: Optional[str] = None,
            latency_ms: Optional[float] = None,
            energy_mj: Optional[float] = None,
            measured_latency_ms: Optional[float] = None,
            measured_energy_mj: Optional[float] = None,
            macs_m: Optional[float] = None,
            params_m: Optional[float] = None,
            score: Optional[float] = None,
            extras: Optional[Dict[str, float]] = None,
            engine: str = "", seed: Optional[int] = None,
            config_fingerprint: str = "",
            flush: bool = True) -> ArchRecord:
        """Record one evaluated architecture (convenience over add_record)."""
        ops = tuple(int(i) for i in op_indices)
        metrics = {name: float(value) for name, value in (
            ("latency_ms", latency_ms), ("energy_mj", energy_mj),
            ("measured_latency_ms", measured_latency_ms),
            ("measured_energy_mj", measured_energy_mj),
        ) if value is not None}
        if metrics and device is None:
            raise ValueError("per-device metrics require device=...")
        provenance: Dict[str, object] = {}
        if engine:
            provenance["engine"] = engine
        if seed is not None:
            provenance["seed"] = int(seed)
        if config_fingerprint:
            provenance["fingerprint"] = config_fingerprint
        record = ArchRecord(
            op_indices=ops,
            key=arch_key(ops, self.num_operators),
            devices={device: metrics} if metrics else {},
            macs_m=None if macs_m is None else float(macs_m),
            params_m=None if params_m is None else float(params_m),
            score=None if score is None else float(score),
            extras={k: float(v) for k, v in (extras or {}).items()},
            provenance=provenance,
        )
        self.add_record(record, flush=flush)
        return record

    def add_population(self, ops: np.ndarray, *,
                       device: Optional[str] = None,
                       latency_ms: Optional[np.ndarray] = None,
                       energy_mj: Optional[np.ndarray] = None,
                       measured_latency_ms: Optional[np.ndarray] = None,
                       measured_energy_mj: Optional[np.ndarray] = None,
                       macs_m: Optional[np.ndarray] = None,
                       params_m: Optional[np.ndarray] = None,
                       score: Optional[np.ndarray] = None,
                       engine: str = "", seed: Optional[int] = None,
                       config_fingerprint: str = "") -> int:
        """Record a whole population with aligned per-arch metric arrays.

        Serialisation is necessarily per-record, but the file is flushed
        once for the whole batch; returns the number of records written.
        """
        ops = np.asarray(ops, dtype=np.int64)
        if ops.ndim != 2 or ops.shape[1] != self.num_layers:
            raise ValueError(
                f"ops must be (N, {self.num_layers}), got {ops.shape}")

        def cell(array, i):
            return None if array is None else float(array[i])

        for i, row in enumerate(ops.tolist()):
            self.add(row, device=device,
                     latency_ms=cell(latency_ms, i),
                     energy_mj=cell(energy_mj, i),
                     measured_latency_ms=cell(measured_latency_ms, i),
                     measured_energy_mj=cell(measured_energy_mj, i),
                     macs_m=cell(macs_m, i), params_m=cell(params_m, i),
                     score=cell(score, i),
                     engine=engine, seed=seed,
                     config_fingerprint=config_fingerprint, flush=False)
        self._handle.flush()
        return len(ops)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, op_indices) -> bool:
        return arch_key(tuple(op_indices), self.num_operators) in self._records

    def get(self, op_indices) -> Optional[ArchRecord]:
        """The merged record for a genotype, or ``None``."""
        return self._records.get(
            arch_key(tuple(op_indices), self.num_operators))

    def records(self) -> Iterator[ArchRecord]:
        """Merged records in first-seen order."""
        for key in self._order:
            yield self._records[key]

    def index(self) -> ArchiveIndex:
        """The stacked numpy index (cached until the next append)."""
        if self._index is None:
            self._index = ArchiveIndex.from_records(
                [self._records[key] for key in self._order], self.num_layers)
        return self._index

    def stats(self) -> dict:
        """Summary counters for the ``/stats`` endpoint and ``repro query``."""
        index = self.index()
        per_device = {
            device: int(np.isfinite(
                index.cost[:, d, :]).any(axis=1).sum())
            for d, device in enumerate(index.devices)
        }
        return {
            "path": self.path,
            "records": len(self),
            "num_layers": self.num_layers,
            "num_operators": self.num_operators,
            "devices": per_device,
            "with_score": int(np.isfinite(index.score).sum()),
            "with_macs": int(np.isfinite(index.macs_m).sum()),
        }

    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ArchitectureArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
