"""Append-only, crash-safe on-disk archive of evaluated architectures.

Every search engine in this repository evaluates thousands-to-millions of
architectures per run and then discards them.  The archive is the
NAS-bench-style persistent record that fixes that: one
:class:`ArchitectureArchive` file accumulates every architecture the system
has ever evaluated — deduplicated across generations, engines, and runs —
together with per-device cost records (*One Proxy Device Is Enough*
motivates keeping costs per device so one store serves many deployment
targets) and provenance (engine, seed, config fingerprint, reusing
:func:`repro.runtime.checkpoint.fingerprint_of`).

Storage is split into two layers:

* **The write-ahead log (WAL)** — the JSON-lines archive file itself: one
  record per line, each protected by a CRC-32 prefix and flushed on write,
  so a crashed run leaves a readable archive up to the crash.  A truncated
  or corrupt line raises :class:`ArchiveError` with a remedy
  (:func:`repair_archive` truncates a damaged tail), never silently drops
  data.
* **Segments** (:mod:`repro.archive.segments`) — compacted memory-mapped
  snapshots of the merged state.  :meth:`ArchitectureArchive.compact` cuts
  one; subsequent opens mmap the arrays and replay only the WAL tail
  written after the segment, instead of parsing the full log.  Serving
  workers share the mmap'd pages.

The in-memory index is **incrementally extended and thread-safe**: every
append updates growable stacked arrays in place (O(1) per record) under a
lock, and :meth:`ArchitectureArchive.index` hands out immutable
:class:`ArchiveIndex` snapshots — concurrent readers never observe a
half-merged record, and a post-append query no longer re-stacks the whole
archive.

Records are keyed by the SHA-1 of the architecture's one-hot encoding (the
ᾱ matrix of Eq. 4), so the same genotype written by different engines/runs
merges into one record.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from hashlib import sha1
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .segments import (
    ArchiveError,
    Segment,
    frame_line as _frame,
    load_current_segment,
    unframe_line as _unframe,
    write_segment,
)

__all__ = [
    "ARCHIVE_VERSION",
    "ARCHIVE_MAGIC",
    "DEVICE_COST_METRICS",
    "ArchiveError",
    "ArchRecord",
    "ArchiveIndex",
    "ArchitectureArchive",
    "arch_key",
    "repair_archive",
]

ARCHIVE_VERSION = 1
ARCHIVE_MAGIC = "repro-archive"

#: per-device cost fields stacked into the numpy index, in column order
DEVICE_COST_METRICS = ("latency_ms", "energy_mj",
                       "measured_latency_ms", "measured_energy_mj")

#: architecture-global fields stacked into the numpy index
GLOBAL_METRICS = ("macs_m", "params_m", "score")

_METRIC_POS = {name: i for i, name in enumerate(DEVICE_COST_METRICS)}


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------

def arch_key(op_indices: Sequence[int], num_operators: int) -> str:
    """Content address of an architecture: SHA-1 of its one-hot encoding.

    The hash covers the full ``(L, K)`` ᾱ matrix bytes (not just the op
    indices), so the address is exactly "the one-hot encoding's hash" and
    two spaces with different operator vocabularies never share keys.
    """
    ops = np.asarray(op_indices, dtype=np.int64)
    if ops.ndim != 1 or ops.size == 0:
        raise ValueError("op_indices must be a non-empty 1-D sequence")
    if ops.min() < 0 or ops.max() >= num_operators:
        raise ValueError("operator index out of range for this space")
    one_hot = np.zeros((ops.size, num_operators), dtype=np.uint8)
    one_hot[np.arange(ops.size), ops] = 1
    return sha1(one_hot.tobytes()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------

@dataclass
class ArchRecord:
    """One archived architecture with everything known about it.

    Attributes
    ----------
    op_indices:
        The genotype (one operator index per searchable layer).
    key:
        Content address (:func:`arch_key`).
    devices:
        ``{device_name: {metric: value}}`` — per-device predicted/true and
        measured latency/energy (see :data:`DEVICE_COST_METRICS`).
    macs_m / params_m:
        Device-independent compute/size costs (millions).
    score:
        Accuracy-proxy score (oracle top-1), when evaluated.
    extras:
        Model-fingerprint-tagged cached values (e.g. MLP-predicted metrics
        keyed ``"pred:<fingerprint>"``) — the :class:`~repro.archive.cache.
        EvalCache` namespace.  Predictions depend on the predictor weights,
        so they are never merged across fingerprints.
    provenance:
        ``{"engine", "seed", "fingerprint"}`` of the run that wrote the
        record (last writer wins on merge).
    """

    op_indices: Tuple[int, ...]
    key: str
    devices: Dict[str, Dict[str, float]] = field(default_factory=dict)
    macs_m: Optional[float] = None
    params_m: Optional[float] = None
    score: Optional[float] = None
    extras: Dict[str, float] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def merge(self, other: "ArchRecord") -> None:
        """Fold a later record for the same genotype into this one."""
        if other.key != self.key:
            raise ValueError("cannot merge records of different architectures")
        for device, metrics in other.devices.items():
            self.devices.setdefault(device, {}).update(metrics)
        if other.macs_m is not None:
            self.macs_m = other.macs_m
        if other.params_m is not None:
            self.params_m = other.params_m
        if other.score is not None:
            self.score = other.score
        self.extras.update(other.extras)
        if other.provenance:
            self.provenance = dict(other.provenance)

    def to_payload(self) -> dict:
        payload: Dict[str, object] = {"key": self.key,
                                      "ops": list(self.op_indices)}
        if self.devices:
            payload["devices"] = self.devices
        if self.macs_m is not None:
            payload["macs_m"] = self.macs_m
        if self.params_m is not None:
            payload["params_m"] = self.params_m
        if self.score is not None:
            payload["score"] = self.score
        if self.extras:
            payload["extras"] = self.extras
        if self.provenance:
            payload["provenance"] = self.provenance
        return payload

    @staticmethod
    def from_payload(payload: dict) -> "ArchRecord":
        return ArchRecord(
            op_indices=tuple(int(i) for i in payload["ops"]),
            key=str(payload["key"]),
            devices={str(d): {str(m): float(v) for m, v in metrics.items()}
                     for d, metrics in payload.get("devices", {}).items()},
            macs_m=payload.get("macs_m"),
            params_m=payload.get("params_m"),
            score=payload.get("score"),
            extras={str(k): float(v)
                    for k, v in payload.get("extras", {}).items()},
            provenance=dict(payload.get("provenance", {})),
        )


# ----------------------------------------------------------------------
# Stacked numpy index
# ----------------------------------------------------------------------

@dataclass
class ArchiveIndex:
    """Immutable stacked numpy view of the archive at one point in time.

    The query engine operates entirely on these arrays: ``ops`` for Hamming
    nearest-neighbour search, ``cost``/``score``/``macs_m``/``params_m``
    for budgeted top-k and Pareto queries.  Missing values are NaN.
    Snapshots handed out by :meth:`ArchitectureArchive.index` are read-only
    and never mutated by later appends — concurrent readers are safe.
    """

    ops: np.ndarray                 #: ``(N, L)`` int64 genotypes
    keys: Tuple[str, ...]           #: content addresses, aligned with rows
    score: np.ndarray               #: ``(N,)`` accuracy-proxy score
    macs_m: np.ndarray              #: ``(N,)`` multi-adds, millions
    params_m: np.ndarray            #: ``(N,)`` parameters, millions
    devices: Tuple[str, ...]        #: device names, aligned with axis 1
    cost: np.ndarray                #: ``(N, D, M)`` per-device cost matrix

    def __len__(self) -> int:
        return len(self.ops)

    def device_column(self, device: str, metric: str) -> np.ndarray:
        """The ``(N,)`` column of one per-device cost metric."""
        if metric not in DEVICE_COST_METRICS:
            raise ValueError(
                f"unknown device metric {metric!r}; expected one of "
                f"{DEVICE_COST_METRICS}")
        try:
            d = self.devices.index(device)
        except ValueError:
            raise ValueError(
                f"device {device!r} has no records in this archive; "
                f"known devices: {self.devices or '(none)'}") from None
        return self.cost[:, d, DEVICE_COST_METRICS.index(metric)]

    def column(self, metric: str, device: Optional[str] = None) -> np.ndarray:
        """A ``(N,)`` metric column, resolving per-device metrics."""
        if metric in GLOBAL_METRICS:
            return getattr(self, metric)
        if device is None:
            raise ValueError(
                f"metric {metric!r} is per-device; pass device=...")
        return self.device_column(device, metric)

    @staticmethod
    def from_records(records: Sequence[ArchRecord],
                     num_layers: int) -> "ArchiveIndex":
        n = len(records)
        ops = np.zeros((n, num_layers), dtype=np.int64)
        score = np.full(n, np.nan)
        macs = np.full(n, np.nan)
        params = np.full(n, np.nan)
        device_names = sorted({d for r in records for d in r.devices})
        cost = np.full((n, len(device_names), len(DEVICE_COST_METRICS)),
                       np.nan)
        device_pos = {name: i for i, name in enumerate(device_names)}
        for i, record in enumerate(records):
            ops[i] = record.op_indices
            if record.score is not None:
                score[i] = record.score
            if record.macs_m is not None:
                macs[i] = record.macs_m
            if record.params_m is not None:
                params[i] = record.params_m
            for device, metrics in record.devices.items():
                for metric, value in metrics.items():
                    column = _METRIC_POS.get(metric)
                    if column is not None:
                        cost[i, device_pos[device], column] = value
        return ArchiveIndex(ops=ops, keys=tuple(r.key for r in records),
                            score=score, macs_m=macs, params_m=params,
                            devices=tuple(device_names), cost=cost)


class _LiveIndex:
    """Growable stacked arrays, extended in place on every merge.

    This is the mutable twin of :class:`ArchiveIndex`: appends land in
    amortized O(1) (capacity-doubling), merges into an existing genotype
    write only the affected cells, and new device names insert a NaN
    column at their *sorted* position so snapshots are bit-identical to
    :meth:`ArchiveIndex.from_records` over the same records.  All access
    is serialized by the owning archive's lock.
    """

    def __init__(self, num_layers: int, capacity: int = 64) -> None:
        capacity = max(1, capacity)
        self.num_layers = num_layers
        self.n = 0
        self.devices: List[str] = []
        self.ops = np.zeros((capacity, num_layers), dtype=np.int64)
        self.score = np.full(capacity, np.nan)
        self.macs_m = np.full(capacity, np.nan)
        self.params_m = np.full(capacity, np.nan)
        self.cost = np.full((capacity, 0, len(DEVICE_COST_METRICS)), np.nan)

    @classmethod
    def from_segment(cls, segment: Segment) -> "_LiveIndex":
        n = len(segment)
        live = cls(segment.num_layers, capacity=n + 64)
        live.n = n
        live.devices = list(segment.devices)
        live.ops[:n] = segment.ops
        live.score[:n] = segment.score
        live.macs_m[:n] = segment.macs_m
        live.params_m[:n] = segment.params_m
        cost = np.full((n + 64, len(segment.devices),
                        len(DEVICE_COST_METRICS)), np.nan)
        cost[:n] = segment.cost
        live.cost = cost
        return live

    # ------------------------------------------------------------------
    def _grow_rows(self, need: int) -> None:
        capacity = len(self.score)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2

        def widen(array: np.ndarray, fill) -> np.ndarray:
            fresh = np.full((capacity,) + array.shape[1:], fill,
                            dtype=array.dtype)
            fresh[:self.n] = array[:self.n]
            return fresh

        self.ops = widen(self.ops, 0)
        self.score = widen(self.score, np.nan)
        self.macs_m = widen(self.macs_m, np.nan)
        self.params_m = widen(self.params_m, np.nan)
        self.cost = widen(self.cost, np.nan)

    def ensure_device(self, name: str) -> int:
        pos = bisect_left(self.devices, name)
        if pos < len(self.devices) and self.devices[pos] == name:
            return pos
        self.devices.insert(pos, name)
        self.cost = np.insert(self.cost, pos, np.nan, axis=1)
        return pos

    # ------------------------------------------------------------------
    def append(self, record: ArchRecord) -> int:
        self._grow_rows(self.n + 1)
        row = self.n
        self.ops[row] = record.op_indices
        self.n += 1
        self.update(row, record)
        return row

    def update(self, row: int, record: ArchRecord) -> None:
        if record.score is not None:
            self.score[row] = record.score
        if record.macs_m is not None:
            self.macs_m[row] = record.macs_m
        if record.params_m is not None:
            self.params_m[row] = record.params_m
        for device, metrics in record.devices.items():
            d = self.ensure_device(device)
            for metric, value in metrics.items():
                m = _METRIC_POS.get(metric)
                if m is not None:
                    self.cost[row, d, m] = value

    def snapshot(self, keys: Tuple[str, ...]) -> ArchiveIndex:
        n = self.n

        def freeze(array: np.ndarray) -> np.ndarray:
            out = array[:n].copy()
            out.setflags(write=False)
            return out

        return ArchiveIndex(ops=freeze(self.ops), keys=keys,
                            score=freeze(self.score),
                            macs_m=freeze(self.macs_m),
                            params_m=freeze(self.params_m),
                            devices=tuple(self.devices),
                            cost=freeze(self.cost))


# ----------------------------------------------------------------------
# WAL repair
# ----------------------------------------------------------------------

def repair_archive(path: str) -> int:
    """Truncate a crash-damaged archive to its longest valid prefix.

    Returns the number of lines dropped.  Raises :class:`ArchiveError` if
    even the header line is unreadable (nothing to salvage).  A segment
    compacted past the repaired length stops matching the log and is
    reported loudly on the next open (delete the segment directory and
    recompact).
    """
    with open(path, "r", encoding="utf-8", newline="\n") as handle:
        raw = handle.read()
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    valid: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            _unframe(line, path, lineno)
        except ArchiveError:
            break
        valid.append(line)
    if not valid:
        raise ArchiveError(
            f"archive {path!r} has an unreadable header — nothing to "
            f"salvage; delete the file")
    dropped = len(lines) - len(valid)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".archive.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="\n") as handle:
            handle.write("\n".join(valid) + "\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return dropped


# ----------------------------------------------------------------------
# The archive
# ----------------------------------------------------------------------

class ArchitectureArchive:
    """Open (or create) an on-disk architecture archive.

    Parameters
    ----------
    path:
        Archive file (created with a header if missing).
    num_layers / num_operators:
        Space geometry.  Required when creating a new archive; when opening
        an existing one they are validated against the header (a mismatch
        raises :class:`ArchiveError` — records from another space would be
        silently meaningless).  Pass ``space=`` as a convenience instead.
    read_only:
        Open without an append handle: writes raise :class:`ArchiveError`.
        This is how serving workers share one archive — no writer, no
        multi-process append hazard.
    use_segments:
        When ``False``, ignore any compacted segment and boot by replaying
        the full log (the pre-segment behaviour; the boot benchmark uses
        this as its baseline).

    The instance is thread-safe: appends, merges, and index snapshots are
    serialized by an internal lock, and :meth:`index` returns immutable
    snapshots.
    """

    def __init__(self, path: str,
                 num_layers: Optional[int] = None,
                 num_operators: Optional[int] = None,
                 space=None, *,
                 read_only: bool = False,
                 use_segments: bool = True) -> None:
        if space is not None:
            num_layers = space.num_layers
            num_operators = space.num_operators
        self.path = path
        self.read_only = bool(read_only)
        self._use_segments = bool(use_segments)
        self._lock = threading.RLock()
        self._records: Dict[str, ArchRecord] = {}   # key → merged record
        self._pending: Dict[str, ArchRecord] = {}   # unmaterialized merges
        self._order: List[str] = []                 # first-seen order
        self._row_of: Dict[str, int] = {}           # key → index row
        self._segment: Optional[Segment] = None
        self._aux_loaded = False
        self._live: Optional[_LiveIndex] = None
        self._snapshot: Optional[ArchiveIndex] = None
        self.boot: Dict[str, object] = {"mode": "new", "tail_records": 0}
        if os.path.exists(path):
            self._replay(num_layers, num_operators)
        else:
            if self.read_only:
                raise ArchiveError(
                    f"archive {path!r} does not exist — a read-only open "
                    f"cannot create it")
            if num_layers is None or num_operators is None:
                raise ArchiveError(
                    f"creating archive {path!r} requires the space geometry "
                    f"(num_layers and num_operators, or space=...)")
            self.num_layers = int(num_layers)
            self.num_operators = int(num_operators)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            header = {"magic": ARCHIVE_MAGIC, "version": ARCHIVE_VERSION,
                      "num_layers": self.num_layers,
                      "num_operators": self.num_operators}
            with open(path, "w", encoding="utf-8", newline="\n") as handle:
                handle.write(_frame(json.dumps(header)))
        self._handle = (None if self.read_only else
                        open(path, "a", encoding="utf-8", newline="\n"))

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def _replay(self, num_layers: Optional[int],
                num_operators: Optional[int]) -> None:
        with open(self.path, "rb") as handle:
            raw = handle.read()
        if not raw:
            raise ArchiveError(
                f"archive {self.path!r} is empty — it was created but never "
                f"wrote a header; delete the file")
        if not raw.endswith(b"\n"):
            last_lineno = raw.count(b"\n") + 1
            raise ArchiveError(
                f"{self.path}:{last_lineno}: final line has no newline — a "
                f"writer crashed mid-append; run "
                f"repair_archive({self.path!r}) to truncate the damaged "
                f"tail, or delete the file")
        header_end = raw.index(b"\n") + 1
        header = _unframe(raw[:header_end - 1].decode("utf-8"), self.path, 1)
        if header.get("magic") != ARCHIVE_MAGIC:
            raise ArchiveError(
                f"{self.path!r} is not an architecture archive (bad magic "
                f"{header.get('magic')!r})")
        if header.get("version") != ARCHIVE_VERSION:
            raise ArchiveError(
                f"archive {self.path!r} has format version "
                f"{header.get('version')!r}, expected {ARCHIVE_VERSION} — "
                f"it was written by an incompatible version of this library")
        self.num_layers = int(header["num_layers"])
        self.num_operators = int(header["num_operators"])
        if num_layers is not None and (
                (num_layers, num_operators)
                != (self.num_layers, self.num_operators)):
            raise ArchiveError(
                f"archive {self.path!r} holds a {self.num_layers}-layer / "
                f"{self.num_operators}-operator space, but this run uses "
                f"{num_layers} layers / {num_operators} operators — use a "
                f"separate archive per space geometry")

        segment = None
        if self._use_segments:
            segment = load_current_segment(
                self.path, num_layers=self.num_layers,
                num_operators=self.num_operators,
                cost_metrics=DEVICE_COST_METRICS)
        if segment is not None and segment.wal_offset >= header_end:
            self._adopt_segment(segment, raw)
        else:
            self._full_replay(raw, header_end)

    def _adopt_segment(self, segment: Segment, raw: bytes) -> None:
        """Boot from the mmap'd segment, replaying only the WAL tail."""
        self._segment = segment
        self._order = list(segment.keys)
        self._row_of = {key: row for row, key in enumerate(segment.keys)}
        tail = raw[segment.wal_offset:]
        tail_lines = tail.decode("utf-8").split("\n")[:-1] if tail else []
        lineno = raw[:segment.wal_offset].count(b"\n")
        for offset, line in enumerate(tail_lines, start=1):
            self._merge(self._parse_record(line, lineno + offset))
        self.boot = {"mode": "segment", "segment": segment.path,
                     "segment_records": len(segment),
                     "tail_records": len(tail_lines)}

    def _full_replay(self, raw: bytes, header_end: int) -> None:
        lines = raw[header_end:].decode("utf-8").split("\n")[:-1]
        for lineno, line in enumerate(lines, start=2):
            self._merge(self._parse_record(line, lineno))
        self._aux_loaded = True   # every record is materialized
        self.boot = {"mode": "log-replay", "tail_records": len(lines)}

    def _parse_record(self, line: str, lineno: int) -> ArchRecord:
        payload = _unframe(line, self.path, lineno)
        try:
            record = ArchRecord.from_payload(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveError(
                f"{self.path}:{lineno}: CRC-valid but malformed record "
                f"({exc}) — the file was written by an incompatible "
                f"version; delete it") from exc
        if len(record.op_indices) != self.num_layers:
            raise ArchiveError(
                f"{self.path}:{lineno}: record has "
                f"{len(record.op_indices)} layers, header says "
                f"{self.num_layers} — the file is inconsistent")
        return record

    # ------------------------------------------------------------------
    # Incremental merge (caller must hold the lock during boot; public
    # entry points take it)
    # ------------------------------------------------------------------
    def _live_index(self) -> _LiveIndex:
        if self._live is None:
            if self._segment is not None:
                self._live = _LiveIndex.from_segment(self._segment)
            else:
                self._live = _LiveIndex(self.num_layers)
        return self._live

    def _merge(self, record: ArchRecord) -> None:
        with self._lock:
            row = self._row_of.get(record.key)
            if row is None:
                row = self._live_index().append(record)
                self._row_of[record.key] = row
                self._order.append(record.key)
                self._records[record.key] = record
            else:
                self._live_index().update(row, record)
                existing = self._records.get(record.key)
                if existing is not None:
                    existing.merge(record)
                else:
                    # segment row not yet materialized — stage the merge
                    pending = self._pending.get(record.key)
                    if pending is None:
                        self._pending[record.key] = record
                    else:
                        pending.merge(record)
            self._snapshot = None

    def _ensure_records(self) -> None:
        """Materialize every record (lazy segment aux read)."""
        with self._lock:
            if self._aux_loaded or self._segment is None:
                self._aux_loaded = True
                return
            segment = self._segment
            count = 0
            for payload in segment.aux_payloads():
                try:
                    record = ArchRecord.from_payload(payload)
                except (KeyError, TypeError, ValueError) as exc:
                    raise ArchiveError(
                        f"segment {segment.path!r} row {count} has a "
                        f"malformed payload ({exc}) — delete the segment "
                        f"directory and recompact") from exc
                if count >= len(segment) or record.key != segment.keys[count]:
                    raise ArchiveError(
                        f"segment {segment.path!r} aux payloads do not "
                        f"align with its key array — the segment is "
                        f"damaged; delete it and recompact")
                pending = self._pending.pop(record.key, None)
                if pending is not None:
                    record.merge(pending)
                # appends may have already created a record for this key?
                # impossible: segment keys pre-exist in _row_of, so appends
                # to them stage into _pending instead.
                self._records[record.key] = record
                count += 1
            if count != len(segment):
                raise ArchiveError(
                    f"segment {segment.path!r} has {count} aux payloads "
                    f"for {len(segment)} records — the segment is damaged; "
                    f"delete it and recompact")
            self._aux_loaded = True

    def _require_writable(self, what: str) -> None:
        if self._handle is None:
            raise ArchiveError(
                f"archive {self.path!r} is open read-only — {what} needs a "
                f"writable archive")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def add_record(self, record: ArchRecord, flush: bool = True) -> None:
        """Append one record (merged into the in-memory view)."""
        if len(record.op_indices) != self.num_layers:
            raise ValueError(
                f"record has {len(record.op_indices)} layers, archive "
                f"expects {self.num_layers}")
        if record.key != arch_key(record.op_indices, self.num_operators):
            raise ValueError("record key does not match its op_indices")
        with self._lock:
            self._require_writable("add_record")
            self._handle.write(_frame(json.dumps(record.to_payload())))
            if flush:
                self._handle.flush()
            self._merge(record)

    def add(self, op_indices: Sequence[int], *,
            device: Optional[str] = None,
            latency_ms: Optional[float] = None,
            energy_mj: Optional[float] = None,
            measured_latency_ms: Optional[float] = None,
            measured_energy_mj: Optional[float] = None,
            macs_m: Optional[float] = None,
            params_m: Optional[float] = None,
            score: Optional[float] = None,
            extras: Optional[Dict[str, float]] = None,
            engine: str = "", seed: Optional[int] = None,
            config_fingerprint: str = "",
            flush: bool = True) -> ArchRecord:
        """Record one evaluated architecture (convenience over add_record)."""
        ops = tuple(int(i) for i in op_indices)
        metrics = {name: float(value) for name, value in (
            ("latency_ms", latency_ms), ("energy_mj", energy_mj),
            ("measured_latency_ms", measured_latency_ms),
            ("measured_energy_mj", measured_energy_mj),
        ) if value is not None}
        if metrics and device is None:
            raise ValueError("per-device metrics require device=...")
        provenance: Dict[str, object] = {}
        if engine:
            provenance["engine"] = engine
        if seed is not None:
            provenance["seed"] = int(seed)
        if config_fingerprint:
            provenance["fingerprint"] = config_fingerprint
        record = ArchRecord(
            op_indices=ops,
            key=arch_key(ops, self.num_operators),
            devices={device: metrics} if metrics else {},
            macs_m=None if macs_m is None else float(macs_m),
            params_m=None if params_m is None else float(params_m),
            score=None if score is None else float(score),
            extras={k: float(v) for k, v in (extras or {}).items()},
            provenance=provenance,
        )
        self.add_record(record, flush=flush)
        return record

    def add_population(self, ops: np.ndarray, *,
                       device: Optional[str] = None,
                       latency_ms: Optional[np.ndarray] = None,
                       energy_mj: Optional[np.ndarray] = None,
                       measured_latency_ms: Optional[np.ndarray] = None,
                       measured_energy_mj: Optional[np.ndarray] = None,
                       macs_m: Optional[np.ndarray] = None,
                       params_m: Optional[np.ndarray] = None,
                       score: Optional[np.ndarray] = None,
                       engine: str = "", seed: Optional[int] = None,
                       config_fingerprint: str = "") -> int:
        """Record a whole population with aligned per-arch metric arrays.

        Serialisation is necessarily per-record, but the file is flushed
        once for the whole batch; returns the number of records written.
        """
        ops = np.asarray(ops, dtype=np.int64)
        if ops.ndim != 2 or ops.shape[1] != self.num_layers:
            raise ValueError(
                f"ops must be (N, {self.num_layers}), got {ops.shape}")
        self._require_writable("add_population")

        def cell(array, i):
            return None if array is None else float(array[i])

        with self._lock:
            for i, row in enumerate(ops.tolist()):
                self.add(row, device=device,
                         latency_ms=cell(latency_ms, i),
                         energy_mj=cell(energy_mj, i),
                         measured_latency_ms=cell(measured_latency_ms, i),
                         measured_energy_mj=cell(measured_energy_mj, i),
                         macs_m=cell(macs_m, i), params_m=cell(params_m, i),
                         score=cell(score, i),
                         engine=engine, seed=seed,
                         config_fingerprint=config_fingerprint, flush=False)
            self._handle.flush()
        return len(ops)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> str:
        """Cut a fresh segment covering the entire WAL written so far.

        The next open of this archive mmaps the segment and replays only
        lines appended after this call.  Returns the committed segment
        directory.  Requires a writable archive (compaction must pin the
        exact WAL offset it covers).
        """
        with self._lock:
            self._require_writable("compact")
            self._handle.flush()
            wal_offset = os.path.getsize(self.path)
            self._ensure_records()
            snapshot = self.index()
            payloads = [self._records[key].to_payload()
                        for key in self._order]
            return write_segment(
                self.path,
                num_layers=self.num_layers,
                num_operators=self.num_operators,
                devices=snapshot.devices,
                cost_metrics=DEVICE_COST_METRICS,
                keys=tuple(self._order),
                ops=snapshot.ops, cost=snapshot.cost,
                score=snapshot.score, macs_m=snapshot.macs_m,
                params_m=snapshot.params_m,
                payloads=payloads, wal_offset=wal_offset)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def __contains__(self, op_indices) -> bool:
        key = arch_key(tuple(op_indices), self.num_operators)
        with self._lock:
            return key in self._row_of

    def get(self, op_indices) -> Optional[ArchRecord]:
        """The merged record for a genotype, or ``None``."""
        key = arch_key(tuple(op_indices), self.num_operators)
        with self._lock:
            if key not in self._row_of:
                return None
            self._ensure_records()
            return self._records.get(key)

    def records(self) -> Iterator[ArchRecord]:
        """Merged records in first-seen order."""
        with self._lock:
            self._ensure_records()
            materialized = [self._records[key] for key in self._order]
        yield from materialized

    def index(self) -> ArchiveIndex:
        """An immutable stacked snapshot (cached until the next append).

        When the archive booted from a segment and nothing was appended
        since, the snapshot's arrays are the mmap'd segment arrays — zero
        copies, shared across worker processes.  After appends it is a
        frozen copy of the incrementally-extended live arrays.
        """
        with self._lock:
            if self._snapshot is None:
                self._snapshot = self._build_snapshot()
            return self._snapshot

    def _build_snapshot(self) -> ArchiveIndex:
        if self._live is not None:
            return self._live.snapshot(tuple(self._order))
        if self._segment is not None:
            segment = self._segment
            return ArchiveIndex(
                ops=segment.ops, keys=segment.keys, score=segment.score,
                macs_m=segment.macs_m, params_m=segment.params_m,
                devices=segment.devices, cost=segment.cost)
        return ArchiveIndex.from_records([], self.num_layers)

    def stats(self) -> dict:
        """Summary counters for the ``/stats`` endpoint and ``repro query``."""
        index = self.index()
        per_device = {
            device: int(np.isfinite(
                index.cost[:, d, :]).any(axis=1).sum())
            for d, device in enumerate(index.devices)
        }
        return {
            "path": self.path,
            "records": len(self),
            "num_layers": self.num_layers,
            "num_operators": self.num_operators,
            "devices": per_device,
            "with_score": int(np.isfinite(index.score).sum()),
            "with_macs": int(np.isfinite(index.macs_m).sum()),
            "read_only": self.read_only,
            "boot": dict(self.boot),
        }

    # ------------------------------------------------------------------
    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._handle is None or self._handle.closed

    def __enter__(self) -> "ArchitectureArchive":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
