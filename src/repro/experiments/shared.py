"""Shared experiment context with disk caching.

Every benchmark needs the same substrate: the full search space, the
simulated Xavier, the accuracy oracle, and a predictor trained on the
10,000-architecture measurement campaign.  The campaign + fit takes ~40 s
of CPU, so :func:`full_context` caches the fitted predictor weights under
``benchmarks/results/cache`` keyed by the campaign seed; reruns load in
milliseconds.  Delete the cache directory to force a fresh campaign.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hardware.device import XAVIER_MAXN, DeviceProfile
from ..hardware.energy import EnergyModel
from ..hardware.latency import LatencyModel
from ..predictor.dataset import collect_energy_dataset, collect_latency_dataset
from ..predictor.mlp import MLPPredictor
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import SearchSpace
from .reporting import results_dir

__all__ = ["ExperimentContext", "full_context", "fit_latency_predictor",
           "fit_energy_predictor"]

CAMPAIGN_SIZE = 10_000
CAMPAIGN_SEED = 42
FIT_EPOCHS = 400
FIT_BATCH = 512
FIT_LR = 3e-3


@dataclass
class ExperimentContext:
    """Everything a full-space experiment needs."""

    space: SearchSpace
    device: DeviceProfile
    latency_model: LatencyModel
    energy_model: EnergyModel
    oracle: AccuracyOracle
    latency_predictor: MLPPredictor
    latency_predictor_rmse: float


def _device_fingerprint(device: DeviceProfile) -> str:
    """Short hash of the device constants — changing the simulated hardware
    must invalidate cached predictors fitted against the old profile."""
    import hashlib

    return hashlib.md5(repr(device).encode()).hexdigest()[:8]


def _space_tag(space: SearchSpace) -> str:
    """Cache-name component for the space geometry.  The paper-scale space
    keeps the historical (untagged) file names so existing caches stay
    valid; any other geometry gets its own entry instead of colliding."""
    default = SearchSpace()
    if (space.num_layers, space.num_operators) == (
            default.num_layers, default.num_operators):
        return ""
    return f"L{space.num_layers}K{space.num_operators}_"


def _cache_path(name: str) -> str:
    cache = os.path.join(results_dir(), "cache")
    os.makedirs(cache, exist_ok=True)
    return os.path.join(cache, name)


def _save_predictor(predictor: MLPPredictor, path: str, rmse: float) -> None:
    state = predictor.state_dict()
    state["__rmse"] = np.array(rmse)
    np.savez(path, **state)


def _load_predictor(space: SearchSpace, path: str) -> Optional[tuple]:
    if not os.path.exists(path):
        return None
    try:
        data = dict(np.load(path))
    except Exception as exc:
        raise RuntimeError(
            f"predictor cache {path!r} is unreadable ({exc}); delete the file "
            f"to re-run the measurement campaign"
        ) from exc
    if "__rmse" not in data:
        raise RuntimeError(
            f"predictor cache {path!r} has no '__rmse' entry — it was written "
            f"by an incompatible version or is corrupt; delete the file to "
            f"re-run the measurement campaign"
        )
    rmse = float(data.pop("__rmse"))
    predictor = MLPPredictor(space)
    try:
        predictor.load_state_dict(data)
    except (KeyError, ValueError) as exc:
        raise RuntimeError(
            f"predictor cache {path!r} does not match this space/predictor "
            f"({exc}) — delete the file to re-run the measurement campaign"
        ) from exc
    return predictor, rmse


def fit_latency_predictor(
    space: SearchSpace,
    latency_model: LatencyModel,
    seed: int = CAMPAIGN_SEED,
    num_samples: int = CAMPAIGN_SIZE,
    use_cache: bool = True,
) -> tuple:
    """Fit (or load) the campaign latency predictor; returns (pred, rmse)."""
    fingerprint = _device_fingerprint(latency_model.device)
    path = _cache_path(f"latency_predictor_{_space_tag(space)}"
                       f"s{seed}_n{num_samples}_{fingerprint}.npz")
    if use_cache:
        cached = _load_predictor(space, path)
        if cached is not None:
            return cached
    rng = np.random.default_rng(seed)
    data = collect_latency_dataset(latency_model, num_samples, rng)
    train, valid = data.split(0.8, rng)
    predictor = MLPPredictor(space, seed=seed)
    predictor.fit(train, epochs=FIT_EPOCHS, batch_size=FIT_BATCH, lr=FIT_LR,
                  weight_decay=0.0)
    rmse = predictor.rmse(valid)
    _save_predictor(predictor, path, rmse)
    return predictor, rmse


def fit_energy_predictor(
    space: SearchSpace,
    energy_model: EnergyModel,
    seed: int = CAMPAIGN_SEED,
    num_samples: int = CAMPAIGN_SIZE,
    use_cache: bool = True,
) -> tuple:
    """Fit (or load) the energy predictor of Figure 8; returns (pred, rmse)."""
    fingerprint = _device_fingerprint(energy_model.device)
    path = _cache_path(f"energy_predictor_{_space_tag(space)}"
                       f"s{seed}_n{num_samples}_{fingerprint}.npz")
    if use_cache:
        cached = _load_predictor(space, path)
        if cached is not None:
            return cached
    rng = np.random.default_rng(seed)
    data = collect_energy_dataset(energy_model, num_samples, rng)
    train, valid = data.split(0.8, rng)
    predictor = MLPPredictor(space, seed=seed)
    predictor.fit(train, epochs=FIT_EPOCHS, batch_size=FIT_BATCH, lr=FIT_LR,
                  weight_decay=0.0)
    rmse = predictor.rmse(valid)
    _save_predictor(predictor, path, rmse)
    return predictor, rmse


def full_context(use_cache: bool = True) -> ExperimentContext:
    """The standard full-space experiment context (cached predictor)."""
    space = SearchSpace()
    device = XAVIER_MAXN
    latency_model = LatencyModel(space, device)
    energy_model = EnergyModel(space, device, latency_model=latency_model)
    predictor, rmse = fit_latency_predictor(space, latency_model,
                                            use_cache=use_cache)
    return ExperimentContext(
        space=space,
        device=device,
        latency_model=latency_model,
        energy_model=energy_model,
        oracle=AccuracyOracle(space),
        latency_predictor=predictor,
        latency_predictor_rmse=rmse,
    )
