"""Reporting helpers shared by the benchmark harness.

Plain-text table rendering (the benchmarks print the same rows the paper's
tables report), simple ASCII series plots for trajectory figures, and JSON
artifact persistence under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["render_table", "ascii_series", "save_json", "results_dir"]


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def ascii_series(values: Sequence[float], width: int = 60, height: int = 10,
                 label: str = "") -> str:
    """Down-sampled ASCII line plot of one series (for trajectory figures)."""
    values = list(values)
    if not values:
        return f"{label}: (empty)"
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    grid = [[" "] * len(values) for _ in range(height)]
    for x, v in enumerate(values):
        y = int((v - lo) / span * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = [f"{label}  (min {lo:.3g}, max {hi:.3g})"]
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)


def results_dir() -> str:
    """Directory for benchmark artifacts (created on demand)."""
    path = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results"),
    )
    os.makedirs(path, exist_ok=True)
    return path


def save_json(name: str, payload: Dict) -> str:
    """Persist a benchmark artifact; returns the file path."""
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path
