"""`repro.experiments` — shared harness for the benchmark suite.

Cached full-space experiment context (space + device + fitted predictors)
and plain-text/JSON reporting utilities used by every ``benchmarks/bench_*``
module.
"""

from .reporting import ascii_series, render_table, results_dir, save_json
from .shared import (
    ExperimentContext,
    fit_energy_predictor,
    fit_latency_predictor,
    full_context,
)

__all__ = [
    "render_table",
    "ascii_series",
    "save_json",
    "results_dir",
    "ExperimentContext",
    "full_context",
    "fit_latency_predictor",
    "fit_energy_predictor",
]
