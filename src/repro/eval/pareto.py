"""Accuracy/latency Pareto-front analysis.

Table 2 and Figure 9 are, structurally, claims about *Pareto dominance*:
the searched LightNets should sit on (or define) the accuracy-latency
frontier, with every baseline on or behind it.  This module provides the
vocabulary to state and test that precisely:

* :func:`pareto_front` — the non-dominated subset (maximise quality,
  minimise cost);
* :func:`dominates` — the strict-domination predicate;
* :func:`hypervolume_2d` — the area dominated relative to a reference
  point, the standard scalar summary of a 2-D front;
* :func:`front_gap` — how far a point is behind a front (0 for points on
  or above it), used to assert "LightNets define the frontier" in the
  benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["FrontPoint", "dominates", "pareto_mask", "pareto_front",
           "hypervolume_2d", "front_gap"]


@dataclass(frozen=True)
class FrontPoint:
    """One candidate: a cost to minimise and a quality to maximise."""

    cost: float        # e.g. latency in ms
    quality: float     # e.g. top-1 %
    name: str = ""


def dominates(a: FrontPoint, b: FrontPoint) -> bool:
    """True iff ``a`` is at least as good in both axes and better in one."""
    return (a.cost <= b.cost and a.quality >= b.quality
            and (a.cost < b.cost or a.quality > b.quality))


def pareto_mask(costs: np.ndarray, qualities: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated subset of a population.

    Vectorized sweep: sort by (cost asc, quality desc) — a point is on the
    front iff its quality strictly exceeds every cheaper-or-equal point seen
    before it.  Duplicate-coordinate points keep only their first occurrence
    (in input order), matching :func:`pareto_front`.  ``O(N log N)`` with no
    per-point Python loop, so population-scale sweeps (Figure 9, Table 2)
    can score hundreds of thousands of candidates.
    """
    costs = np.asarray(costs, dtype=np.float64)
    qualities = np.asarray(qualities, dtype=np.float64)
    if costs.shape != qualities.shape or costs.ndim != 1:
        raise ValueError("costs and qualities must be equal-length 1-D arrays")
    if len(costs) == 0:
        return np.zeros(0, dtype=bool)
    order = np.lexsort((-qualities, costs))
    sorted_quality = qualities[order]
    best_before = np.concatenate(([-np.inf],
                                  np.maximum.accumulate(sorted_quality)[:-1]))
    mask = np.zeros(len(costs), dtype=bool)
    mask[order[sorted_quality > best_before]] = True
    return mask


def pareto_front(points: Sequence[FrontPoint]) -> List[FrontPoint]:
    """The non-dominated subset, sorted by ascending cost.

    Duplicate-coordinate points are kept once (the first occurrence wins).
    """
    if not points:
        return []
    costs = np.array([p.cost for p in points], dtype=np.float64)
    qualities = np.array([p.quality for p in points], dtype=np.float64)
    keep = np.nonzero(pareto_mask(costs, qualities))[0]
    return [points[i] for i in keep[np.argsort(costs[keep], kind="stable")]]


def hypervolume_2d(points: Sequence[FrontPoint],
                   reference: Tuple[float, float]) -> float:
    """Area dominated by the front, relative to ``reference``.

    ``reference`` is a (cost, quality) point that every candidate must
    dominate (a worst-case corner: high cost, low quality).  Larger is
    better; 0 for an empty front.
    """
    ref_cost, ref_quality = reference
    front = [p for p in pareto_front(points)
             if p.cost <= ref_cost and p.quality >= ref_quality]
    if not front:
        return 0.0
    area = 0.0
    # sweep from cheapest to costliest; each point owns the strip up to the
    # next point's cost (or the reference cost for the last one)
    for i, point in enumerate(front):
        next_cost = front[i + 1].cost if i + 1 < len(front) else ref_cost
        width = max(0.0, min(next_cost, ref_cost) - point.cost)
        height = max(0.0, point.quality - ref_quality)
        area += width * height
    return float(area)


def front_gap(point: FrontPoint, front: Sequence[FrontPoint]) -> float:
    """Quality gap between ``point`` and the front at the same cost budget.

    The front's quality at a cost ``c`` is the best quality among front
    points with cost ≤ ``c`` (a step function).  Returns
    ``max(0, front(c) − point.quality)``; 0 means the point matches or
    extends the front at its budget.
    """
    eligible = [p.quality for p in front if p.cost <= point.cost]
    if not eligible:
        return 0.0
    return float(max(0.0, max(eligible) - point.quality))
