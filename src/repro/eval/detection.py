"""SSDLite-on-COCO transferability surrogate (Table 3).

The paper drops each backbone into SSDLite, trains from scratch on COCO2017
under identical settings, and reports COCO AP plus detection latency.  We
cannot train COCO detectors here, so this module models the two facts Table
3 demonstrates:

* **backbone quality transfers** — detection AP is (noisily) monotone in
  backbone ImageNet accuracy.  We use an affine map fit to the paper's own
  (top-1, AP) pairs (slope ≈ 0.36 AP per top-1 point), with a deterministic
  per-architecture jitter of the same scale as the paper's deviations from
  that trend (±0.25 AP);
* **detection latency is dominated by the backbone at detection resolution
  plus a heavy head** — SSDLite runs the backbone at 320×320 (≈2× the
  classification pixels) and adds multi-scale heads; in the paper's Table 3
  a 20 ms classification backbone becomes a ≈67–77 ms detector.

The AP sub-metrics follow the paper's observed ratios (AP50 ≈ 1.68·AP,
AP75 ≈ 1.01·AP, APS ≈ 0.105·AP, APM ≈ 0.97·AP, APL ≈ 1.92·AP).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import Architecture, SearchSpace

__all__ = ["DetectionResult", "DetectionEvaluator"]


@dataclass(frozen=True)
class DetectionResult:
    """COCO-style detection metrics for one backbone."""

    name: str
    ap: float
    ap50: float
    ap75: float
    ap_small: float
    ap_medium: float
    ap_large: float
    latency_ms: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "AP": round(self.ap, 1),
            "AP50": round(self.ap50, 1),
            "AP75": round(self.ap75, 1),
            "APS": round(self.ap_small, 1),
            "APM": round(self.ap_medium, 1),
            "APL": round(self.ap_large, 1),
            "latency_ms": round(self.latency_ms, 1),
        }


class DetectionEvaluator:
    """SSDLite transfer evaluation of classification backbones."""

    #: affine top-1 → AP map fit to the paper's Table 2+3 pairs
    AP_SLOPE = 0.36
    AP_INTERCEPT = -5.5
    AP_JITTER = 0.25

    #: detection input is 320×320 vs 224×224 classification (pixel ratio ≈ 2.04)
    RESOLUTION_FACTOR = (320.0 / 224.0) ** 2
    #: SSDLite multi-scale heads + NMS on the simulated device (ms)
    HEAD_LATENCY_MS = 27.0

    #: sub-metric ratios observed across the paper's Table 3 rows
    RATIOS = {"ap50": 1.68, "ap75": 1.01, "ap_small": 0.105,
              "ap_medium": 0.97, "ap_large": 1.92}

    def __init__(self, space: SearchSpace, latency_model: Optional[LatencyModel] = None,
                 oracle: Optional[AccuracyOracle] = None) -> None:
        self.space = space
        self.latency_model = latency_model or LatencyModel(space)
        self.oracle = oracle or AccuracyOracle(space)

    def _jitter(self, arch: Architecture) -> float:
        digest = hashlib.md5(("det:" + str(arch.op_indices)).encode()).digest()
        unit = int.from_bytes(digest[:8], "little") / 2 ** 64
        return (2.0 * unit - 1.0) * self.AP_JITTER

    def evaluate(self, arch: Architecture, name: str) -> DetectionResult:
        """Evaluate one backbone as an SSDLite drop-in replacement."""
        top1 = self.oracle.evaluate(arch).top1
        ap = self.AP_SLOPE * top1 + self.AP_INTERCEPT + self._jitter(arch)
        backbone_ms = self.latency_model.latency_ms(arch)
        latency = backbone_ms * self.RESOLUTION_FACTOR + self.HEAD_LATENCY_MS
        return DetectionResult(
            name=name,
            ap=ap,
            ap50=ap * self.RATIOS["ap50"],
            ap75=ap * self.RATIOS["ap75"],
            ap_small=ap * self.RATIOS["ap_small"],
            ap_medium=ap * self.RATIOS["ap_medium"],
            ap_large=ap * self.RATIOS["ap_large"],
            latency_ms=latency,
        )
