"""`repro.eval` — evaluation protocols for searched architectures.

Stand-alone proxy-task retraining (§4.1), Table-2-style ImageNet rows via
the accuracy oracle, the SSDLite/COCO transfer surrogate (Table 3), and
search-cost accounting (Table 1).
"""

from .cost import (
    IMPLICIT_RUNS,
    PAPER_REPORTED_GPU_HOURS,
    MethodCost,
    simulated_gpu_hours,
    total_design_cost,
)
from .detection import DetectionEvaluator, DetectionResult
from .imagenet import ImageNetEvaluator, ImageNetRow
from .pareto import FrontPoint, dominates, front_gap, hypervolume_2d, pareto_front
from .trainer import TrainReport, accuracy, train_standalone

__all__ = [
    "train_standalone",
    "accuracy",
    "TrainReport",
    "ImageNetEvaluator",
    "ImageNetRow",
    "DetectionEvaluator",
    "DetectionResult",
    "FrontPoint",
    "dominates",
    "pareto_front",
    "hypervolume_2d",
    "front_gap",
    "MethodCost",
    "simulated_gpu_hours",
    "total_design_cost",
    "PAPER_REPORTED_GPU_HOURS",
    "IMPLICIT_RUNS",
]
