"""Search-cost accounting (Table 1 and the cost column of Table 2).

Two complementary accountings:

* :data:`PAPER_REPORTED_GPU_HOURS` — the costs each method's own paper
  reports for one *explicit* search run, which Table 1 cites.
* :func:`simulated_gpu_hours` — a path-step cost model over what our
  engines actually executed: every (operator × step) executed during search
  costs a fixed GPU-time quantum, calibrated so that a full-space LightNAS
  run (90 epochs × 50 steps × 21 single-path layers) costs the paper's 10
  GPU hours.  Multi-path baselines pay K× per step; sample-and-train
  methods (MnasNet-style RL) pay a per-candidate *training* cost instead.

The *implicit* cost of manual λ tuning (§2.2) multiplies the explicit cost
by the number of trial runs — empirically ≈10 for fixed-λ hardware-aware
methods, and exactly 1 for LightNAS ("you only search once").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "PAPER_REPORTED_GPU_HOURS",
    "IMPLICIT_RUNS",
    "MethodCost",
    "simulated_gpu_hours",
    "total_design_cost",
]

#: GPU hours for one explicit search run, as reported in the paper's Table 1
#: and §4 (FBNet-Xavier ≈ 186 is the paper's own re-run of FBNet).
PAPER_REPORTED_GPU_HOURS: Dict[str, float] = {
    "darts": 24.0,
    "snas": 36.0,
    "mnasnet-rl": 40_000.0,
    "ofa-evolution": 1_275.0,
    "proxylessnas": 200.0,
    "fbnet": 216.0,
    "unas": 103.0,
    "lightnas": 10.0,
    "random": 24.0,
}

#: search runs needed to hit a *specified* latency target (implicit cost):
#: fixed-λ methods sweep λ by trial and error (§2.2, empirically ×10);
#: accuracy-only methods cannot target latency at all (∞ would be honest,
#: we report the sweep count a practitioner would attempt).
IMPLICIT_RUNS: Dict[str, int] = {
    "darts": 10,
    "snas": 10,
    "fbnet": 10,
    "proxylessnas": 10,
    "unas": 10,
    "mnasnet-rl": 1,
    "ofa-evolution": 1,
    "lightnas": 1,
    "random": 1,
}

#: GPU-time quantum per executed (operator, step): calibrated so a full
#: LightNAS run (4,500 steps × 21 active ops) = 10 GPU hours.
GPU_HOURS_PER_PATH_STEP: float = 10.0 / (4500 * 21)

#: GPU hours to quick-train one sampled candidate (RL accounting): MnasNet's
#: 40,000 GPU hours over ≈8,000 sampled models ⇒ 5 GPU hours per sample.
GPU_HOURS_PER_TRAINED_SAMPLE: float = 5.0

#: amortised supernet-training cost OFA pays before any specialisation.
OFA_AMORTISED_GPU_HOURS: float = 1_200.0


@dataclass(frozen=True)
class MethodCost:
    """Cost breakdown for one method reaching one latency target."""

    method: str
    explicit_gpu_hours: float
    runs_needed: int

    @property
    def total_gpu_hours(self) -> float:
        return self.explicit_gpu_hours * self.runs_needed


def simulated_gpu_hours(
    method: str,
    num_steps: int,
    paths_per_step: int,
    trained_samples: int = 0,
    amortised: float = 0.0,
) -> float:
    """Cost of what an engine actually executed, in GPU-hour equivalents.

    Parameters
    ----------
    num_steps / paths_per_step:
        Gradient steps and operator instances per step (from
        :class:`repro.core.result.SearchResult`).
    trained_samples:
        Candidates trained from scratch (RL-style accounting).
    amortised:
        One-off substrate cost (e.g. the OFA supernet).
    """
    if num_steps < 0 or paths_per_step < 0 or trained_samples < 0:
        raise ValueError("cost inputs must be non-negative")
    hours = num_steps * paths_per_step * GPU_HOURS_PER_PATH_STEP
    hours += trained_samples * GPU_HOURS_PER_TRAINED_SAMPLE
    return hours + amortised


def total_design_cost(method: str, explicit_gpu_hours: Optional[float] = None
                      ) -> MethodCost:
    """Explicit × implicit design cost of reaching one specified target."""
    if method not in IMPLICIT_RUNS:
        raise KeyError(f"unknown method {method!r}")
    explicit = (
        explicit_gpu_hours
        if explicit_gpu_hours is not None
        else PAPER_REPORTED_GPU_HOURS[method]
    )
    return MethodCost(method=method, explicit_gpu_hours=explicit,
                      runs_needed=IMPLICIT_RUNS[method])
