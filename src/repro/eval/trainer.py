"""Stand-alone architecture training on the proxy task (§4.1 protocol).

Retrains a derived architecture from scratch, following the paper's
evaluation recipe at proxy scale: SGD with momentum 0.9, weight decay 4e-5,
cosine learning-rate decay with linear warmup over the first ~1.4 % of
training (the paper warms 5 of 360 epochs), and Dropout 0.2 before the
classifier.  Used by the integration tests and the supernet-equality
ablation; the ImageNet-scale numbers of Table 2 come from the accuracy
oracle instead (see :mod:`repro.eval.imagenet`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .. import nn
from ..nn import functional as F
from ..proxy.dataset import Batch, SyntheticTask
from ..proxy.supernet import build_standalone
from ..search_space.space import Architecture, SearchSpace

__all__ = ["TrainReport", "train_standalone", "accuracy"]


@dataclass
class TrainReport:
    """Outcome of one stand-alone training run."""

    train_losses: List[float]
    valid_accuracy: float
    train_accuracy: float
    epochs: int

    def summary(self) -> Dict[str, float]:
        return {
            "train_accuracy": self.train_accuracy,
            "valid_accuracy": self.valid_accuracy,
            "final_loss": self.train_losses[-1] if self.train_losses else float("nan"),
            "epochs": self.epochs,
        }


def accuracy(model: nn.Module, batch: Batch) -> float:
    """Top-1 accuracy of a model on one batch (eval mode).

    Runs under ``nn.no_grad()``, so with the tape-free ops engine the
    forward allocates no backward closures and keeps no intermediates.
    """
    model.eval()
    with nn.no_grad():
        logits = model(nn.Tensor(batch.images))
    model.train(True)
    predictions = logits.data.argmax(axis=1)
    return float((predictions == batch.labels).mean())


def train_standalone(
    space: SearchSpace,
    arch: Architecture,
    task: SyntheticTask,
    epochs: int = 20,
    batch_size: int = 32,
    base_lr: float = 0.1,
    warmup_epochs: int = 2,
    weight_decay: float = 4e-5,
    dropout: float = 0.2,
    with_se_last: int = 0,
    seed: int = 0,
    compute_dtype: str = "float64",
    use_plans: bool = True,
) -> TrainReport:
    """Train ``arch`` from scratch on ``task`` and report accuracies.

    ``compute_dtype="float32"`` opts the whole run into the engine's
    reduced-precision mode (same semantics as
    ``LightNASConfig.compute_dtype``); the float64 default keeps seeded
    runs bit-identical to the historical engine.  ``use_plans`` compiles
    the fixed train step into a trace-once/replay-many plan (bit-identical
    — Dropout masks and BatchNorm statistics advance through replay
    effects exactly as the eager tape would).
    """
    rng = np.random.default_rng(seed)
    with nn.dtype_scope(compute_dtype):
        model = build_standalone(space, arch, rng, dropout=dropout,
                                 with_se_last=with_se_last)
        optimizer = nn.SGD(model.parameters(), lr=base_lr, momentum=0.9,
                           weight_decay=weight_decay)
        schedule = nn.CosineSchedule(
            base_lr, total_steps=epochs,
            warmup_steps=min(warmup_epochs, epochs - 1),
            warmup_start_lr=base_lr / 5.0,
        )
        # the architecture is fixed, so one plan per batch shape covers the
        # whole run (the ragged last batch gets its own key)
        program = nn.StepProgram("standalone", compile_threshold=1)
        num_classes = space.macro.num_classes

        def step_fn(ts):
            logits = model(ts["images"])
            return {"loss": F.cross_entropy(logits, targets=ts["targets"])}

        losses: List[float] = []
        for epoch in range(epochs):
            schedule.apply(optimizer, epoch)
            epoch_loss, batches = 0.0, 0
            for batch in task.batches(task.train, batch_size):
                if use_plans:
                    targets = F.one_hot(batch.labels, num_classes)
                    optimizer.zero_grad()
                    out = program.run(
                        ("train", batch.images.shape),
                        {"images": batch.images, "targets": targets},
                        step_fn)
                    optimizer.step()
                    epoch_loss += float(out["loss"])
                else:
                    logits = model(nn.Tensor(batch.images))
                    loss = F.cross_entropy(logits, batch.labels)
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return TrainReport(
            train_losses=losses,
            valid_accuracy=accuracy(model, task.valid),
            train_accuracy=accuracy(model, task.train),
            epochs=epochs,
        )
