"""Table-2-style ImageNet evaluation rows.

Combines, for any architecture: oracle top-1/top-5 (the 360-epoch
retraining substitute), simulated on-device latency, FLOPs/multi-adds, and
parameter count — everything a Table 2 / Table 4 row needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.flops import arch_cost
from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import Architecture, SearchSpace

__all__ = ["ImageNetRow", "ImageNetEvaluator"]


@dataclass(frozen=True)
class ImageNetRow:
    """One evaluation row (an architecture under a named method)."""

    name: str
    method: str
    top1: float
    top5: float
    latency_ms: float
    macs_m: float
    params_m: float
    search_cost_gpu_hours: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "method": self.method,
            "top1": round(self.top1, 2),
            "top5": round(self.top5, 2),
            "latency_ms": round(self.latency_ms, 2),
            "macs_m": round(self.macs_m, 1),
            "params_m": round(self.params_m, 2),
            "search_cost_gpu_hours": self.search_cost_gpu_hours,
        }


class ImageNetEvaluator:
    """Evaluates architectures into :class:`ImageNetRow` records."""

    def __init__(self, space: SearchSpace, latency_model: Optional[LatencyModel] = None,
                 oracle: Optional[AccuracyOracle] = None) -> None:
        self.space = space
        self.latency_model = latency_model or LatencyModel(space)
        self.oracle = oracle or AccuracyOracle(space)

    def evaluate(
        self,
        arch: Architecture,
        name: str,
        method: str = "differentiable",
        with_se_last: int = 0,
        epochs: int = 360,
        search_cost_gpu_hours: Optional[float] = None,
    ) -> ImageNetRow:
        """Full-protocol evaluation of one architecture."""
        result = self.oracle.evaluate(arch, epochs=epochs, with_se=with_se_last > 0)
        cost = arch_cost(self.space, arch, with_se_last=with_se_last)
        return ImageNetRow(
            name=name,
            method=method,
            top1=result.top1,
            top5=result.top5,
            latency_ms=self.latency_model.latency_ms(arch, with_se_last=with_se_last),
            macs_m=cost.macs / 1e6,
            params_m=cost.params / 1e6,
            search_cost_gpu_hours=search_cost_gpu_hours,
        )
