"""Command-line interface: ``python -m repro <command>``.

Gives the library a downstream-usable surface without writing any code:

* ``info``      — search-space / device summary.
* ``search``    — one hardware-constrained search (latency, energy or MACs).
* ``predict``   — predict all metrics for an architecture (or a batch file).
* ``evaluate``  — Table-2-style evaluation row for an architecture.
* ``sweep``     — one search per target; prints the comparison table
  (``--jobs N`` fans the targets across forked worker processes,
  bit-identical to the sequential run).
* ``stability`` — Fig.-7-style multi-seed stability campaign: one search
  per (target, seed) pair, mean ± std per target (``--jobs`` as above).
* ``serve``     — batched JSON prediction/query API over HTTP
  (``--workers N`` forks an ``SO_REUSEPORT`` group sharing the archive's
  memory-mapped segments).
* ``query``     — offline top-k / Pareto / nearest queries over an archive.
* ``compact``   — cut a memory-mapped segment so the next archive open is
  an mmap + tail replay instead of a full log parse.
* ``fleet``     — parametric device fleets: list generated devices,
  retarget an archive sweep to N devices through proxy transfer maps,
  calibrate per-device transfer maps (``--jobs`` fans devices across
  workers), or run one constrained search against a fleet device.

Architectures are passed as comma-separated operator indices, e.g.
``--arch 1,1,5,5,...`` (one per searchable layer), matching
``Architecture.op_indices`` and the JSON emitted by ``search``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import time
from typing import List, Optional

import numpy as np

from .archive import query as archive_query
from .archive.store import ArchitectureArchive, ArchiveError
from .core.lightnas import LightNAS, LightNASConfig, METRIC_ALIASES
from .eval.imagenet import ImageNetEvaluator
from .experiments.reporting import render_table
from .experiments.shared import fit_energy_predictor, fit_latency_predictor
from .hardware.device import device_hints, known_devices, resolve_device
# importing the fleet package registers its device-name resolver, so every
# --device flag (and the archive service) accepts fleet names like phone-03
from . import fleet as fleet_pkg
from .hardware.energy import EnergyModel
from .hardware.flops import count_macs, count_macs_many, count_params, \
    count_params_many
from .hardware.latency import LatencyModel
from .predictor.analytic import AnalyticCostPredictor
from .proxy.accuracy_model import AccuracyOracle
from .runtime.checkpoint import CheckpointError, latest_checkpoint
from .runtime.parallel import FleetTask, RunFleet, TaskFailure
from .runtime.telemetry import NullJournal, RunJournal, read_journal, \
    summarize_fleet, summarize_runs
from .search_space.macro import MacroConfig
from .search_space.space import Architecture, SearchSpace

__all__ = ["main", "build_parser"]


def _space(args) -> SearchSpace:
    if getattr(args, "tiny", False):
        return SearchSpace(MacroConfig.tiny())
    return SearchSpace()


def _parse_arch(text: str, space: SearchSpace) -> Architecture:
    try:
        arch = Architecture(tuple(int(x) for x in text.split(",")))
    except ValueError as exc:
        raise SystemExit(f"error: malformed --arch {text!r}: {exc}")
    try:
        space.validate(arch)
    except ValueError as exc:
        raise SystemExit(f"error: architecture does not fit the space: {exc}")
    return arch


def _device(args):
    try:
        return resolve_device(getattr(args, "device", "xavier"))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _device_help(default: str = "") -> str:
    """``--device`` help text derived from the device registry.

    Static names come from ``DEVICE_ALIASES`` (deduplicated), dynamic name
    patterns from the registered resolvers (fleet families) — so the help
    can never drift from what ``resolve_device`` actually accepts.
    """
    names = ", ".join(known_devices())
    hints = device_hints()
    extra = f"; fleet devices: {', '.join(hints)}" if hints else ""
    tail = f" (default {default})" if default else ""
    return f"device profile: {names}{extra}{tail}"


def _read_arch_file(path: str, space: SearchSpace) -> np.ndarray:
    """Read one comma-separated architecture per line into an (N, L) matrix.

    Blank lines and ``#`` comments are skipped; any malformed line aborts
    with the offending line number.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise SystemExit(f"error: cannot read --arch-file: {exc}")
    rows = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            rows.append(_parse_arch(text, space).op_indices)
        except SystemExit as exc:
            raise SystemExit(f"{exc} ({path}:{lineno})")
    if not rows:
        raise SystemExit(f"error: --arch-file {path!r} holds no architectures")
    return np.asarray(rows, dtype=np.int64)


def _metric_predictor(metric: str, space: SearchSpace,
                      latency_model: LatencyModel,
                      energy_model: EnergyModel):
    # small (test/toy) spaces need far less campaign data than the paper's
    # 10k protocol — keep the CLI responsive on them
    samples = 1500 if space.num_layers <= 8 else 10_000
    if metric == "latency":
        predictor, _ = fit_latency_predictor(space, latency_model,
                                             num_samples=samples)
        return predictor
    if metric == "energy":
        predictor, _ = fit_energy_predictor(space, energy_model,
                                            num_samples=samples)
        return predictor
    if metric == "macs":
        return AnalyticCostPredictor(space, "macs_m")
    raise SystemExit(f"error: unknown metric {metric!r}")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def cmd_info(args) -> int:
    space = _space(args)
    latency_model = LatencyModel(space)
    device = latency_model.device
    rows = [
        ["searchable layers (L−1)", space.num_layers],
        ["operators per layer (K)", space.num_operators],
        ["space size |A|", f"{space.size:.3g}"],
        ["input resolution", space.macro.input_resolution],
        ["device", device.name],
        ["batch size", device.batch_size],
    ]
    print(render_table(["property", "value"], rows, title="LightNAS space"))
    return 0


def _resume_path(args) -> Optional[str]:
    """Resolve --resume against --checkpoint-dir.

    Returns the latest checkpoint, or ``None`` (with a notice) when the
    directory holds none yet — so re-running the same command after a
    crash works whether or not a checkpoint was ever written.
    """
    if not getattr(args, "resume", False):
        return None
    if not args.checkpoint_dir:
        raise SystemExit("error: --resume requires --checkpoint-dir")
    latest = latest_checkpoint(args.checkpoint_dir)
    if latest is None:
        print(f"no checkpoint in {args.checkpoint_dir!r} yet; starting fresh",
              file=sys.stderr)
        return None
    print(f"resuming from {latest}", file=sys.stderr)
    return latest


def _journal(args) -> RunJournal:
    return RunJournal(args.trace) if getattr(args, "trace", "") else NullJournal()


def _run_cli_fleet(args, tasks: List[FleetTask], *, seed: int) -> List:
    """Run tasks through a :class:`RunFleet` built from the shared flags.

    Returns the task values in task order.  Failures abort with a
    ``SystemExit`` after dumping worker tracebacks to stderr; with
    ``--jobs > 1`` a one-line pool summary goes to stderr (the full stats
    table lives in the journal: ``repro trace-summary``).
    """
    journal = _journal(args)
    fleet = RunFleet(jobs=args.jobs, seed=seed, journal=journal,
                     checkpoint_root=getattr(args, "checkpoint_dir", "")
                     or None)
    try:
        report = fleet.run(tasks)
    finally:
        journal.close()
    if report.interrupted:
        done = sum(1 for r in report.results if r.ok)
        raise SystemExit(
            f"interrupted: {done}/{len(report.results)} tasks completed")
    try:
        values = report.values()
    except TaskFailure as exc:
        for failure in report.failures():
            if failure.traceback:
                print(failure.traceback, file=sys.stderr)
        raise SystemExit(f"error: {exc}")
    stats = report.stats
    if args.jobs > 1:
        print(f"fleet: {stats['completed']}/{stats['tasks']} tasks on "
              f"{stats['jobs']} workers, {stats['retries']} retries, "
              f"speedup {stats['parallel_speedup']:.2f}x, "
              f"utilization {stats['utilization'] * 100:.0f}%",
              file=sys.stderr)
    return values


def cmd_search(args) -> int:
    space = _space(args)
    latency_model = LatencyModel(space)
    energy_model = EnergyModel(space, latency_model=latency_model)
    overrides = {"compute_dtype": args.dtype, "profile_ops": args.profile_ops,
                 "use_plans": not args.no_plans,
                 "use_fusion": not args.no_fusion}
    if args.epochs:
        overrides["epochs"] = args.epochs
    try:
        if args.tiny:
            if args.metric != "latency":
                raise SystemExit(
                    f"error: --tiny runs the bi-level supernet search, which "
                    f"supports --metric latency only (got {args.metric!r}); "
                    f"drop --tiny to constrain {args.metric}"
                )
            config = LightNASConfig.tiny(latency_target_ms=args.target,
                                         seed=args.seed, **overrides)
            engine = LightNAS(config)
        else:
            predictor = _metric_predictor(args.metric, space, latency_model,
                                          energy_model)
            # LightNASConfig.__post_init__ canonicalises the metric shorthand
            # ("latency" → "latency_ms", ...) and validates it.
            config = LightNASConfig.paper(args.target, space=space,
                                          seed=args.seed,
                                          metric_name=args.metric, **overrides)
            engine = LightNAS(config, predictor=predictor)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    journal = _journal(args)
    try:
        result = engine.search(
            verbose=args.verbose,
            checkpoint_dir=args.checkpoint_dir or None,
            checkpoint_every=args.checkpoint_every,
            resume_from=_resume_path(args),
            journal=journal,
        )
    except CheckpointError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        journal.close()

    payload = result.summary()
    payload["true_latency_ms"] = latency_model.latency_ms(result.architecture)
    payload["true_energy_mj"] = energy_model.energy_mj(result.architecture)
    payload["macs_m"] = count_macs(space, result.architecture) / 1e6
    print(json.dumps(payload, indent=2))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"saved to {args.output}", file=sys.stderr)
    return 0


def cmd_predict(args) -> int:
    space = _space(args)
    device = _device(args)
    latency_model = LatencyModel(space, device)
    energy_model = EnergyModel(space, device, latency_model=latency_model)
    if bool(args.arch) == bool(args.arch_file):
        raise SystemExit("error: give exactly one of --arch or --arch-file")
    if args.arch_file:
        # batch path: one vectorized forward per metric over all rows
        ops = _read_arch_file(args.arch_file, space)
        payload = {
            "device": device.name,
            "count": len(ops),
            "archs": ops.tolist(),
            "latency_ms": [round(v, 6) for v in
                           latency_model.latency_many(ops).tolist()],
            "energy_mj": [round(v, 6) for v in
                          energy_model.energy_many(ops).tolist()],
            "macs_m": [round(v, 6) for v in
                       (count_macs_many(space, ops) / 1e6).tolist()],
            "params_m": [round(v, 6) for v in
                         (count_params_many(space, ops) / 1e6).tolist()],
        }
        print(json.dumps(payload, indent=2))
        return 0
    arch = _parse_arch(args.arch, space)
    rows = [
        ["device", device.name],
        ["latency (model)", f"{latency_model.latency_ms(arch):.3f} ms"],
        ["energy (model)", f"{energy_model.energy_mj(arch):.1f} mJ"],
        ["multi-adds", f"{count_macs(space, arch) / 1e6:.1f} M"],
        ["parameters", f"{count_params(space, arch) / 1e6:.2f} M"],
        ["depth (non-skip)", arch.depth(space.skip_index)],
    ]
    print(render_table(["metric", "value"], rows,
                       title="architecture metrics"))
    return 0


def cmd_evaluate(args) -> int:
    space = _space(args)
    arch = _parse_arch(args.arch, space)
    evaluator = ImageNetEvaluator(space)
    row = evaluator.evaluate(arch, name=args.name, with_se_last=args.se)
    print(json.dumps(row.as_dict(), indent=2))
    return 0


_METRIC_UNITS = {"latency": "ms", "energy": "mJ", "macs": "M"}


def _sweep_task(config, predictor, oracle, true_value, resume: bool,
                checkpoint_every: int) -> FleetTask:
    """One search-per-target task: built in the parent, run in a worker.

    Everything heavy (the fitted predictor, cost tables) is captured by
    the closure *before* the fleet forks, so workers share it
    copy-on-write; the task returns only a small plain-dict row.
    """
    target = config.target

    def fn(ctx):
        resume_from = None
        if resume and ctx.checkpoint_dir:
            resume_from = latest_checkpoint(ctx.checkpoint_dir)
        result = LightNAS(config, predictor=predictor).search(
            checkpoint_dir=ctx.checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            journal=ctx.journal,
        )
        evaluation = oracle.evaluate(result.architecture)
        return {
            "target": target,
            "seed": config.seed,
            "true_value": true_value(result.architecture),
            "predicted": float(result.predicted_metric),
            "top1": evaluation.top1,
            "top5": evaluation.top5,
            "arch": list(result.architecture.op_indices),
        }

    # the sub-directory name is part of the checkpoint layout contract:
    # a jobs=1 sweep must resume a jobs=N sweep's checkpoints and back
    return FleetTask(name=f"target_{target:g}", fn=fn,
                     subdir=f"target_{target:g}",
                     header={"target": target, "seed": config.seed,
                             "metric": config.metric_name})


def cmd_sweep(args) -> int:
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("error: --resume requires --checkpoint-dir")
    space = _space(args)
    latency_model = LatencyModel(space)
    energy_model = EnergyModel(space, latency_model=latency_model)
    predictor = _metric_predictor(args.metric, space, latency_model,
                                  energy_model)
    true_value = {
        "latency": latency_model.latency_ms,
        "energy": energy_model.energy_mj,
        "macs": lambda arch: count_macs(space, arch) / 1e6,
    }[args.metric]
    unit = _METRIC_UNITS[args.metric]
    oracle = AccuracyOracle(space)
    targets = [float(t) for t in args.targets.split(",")]
    overrides = {"epochs": args.epochs} if args.epochs else {}
    try:
        # LightNASConfig.__post_init__ canonicalises the metric shorthand
        # ("latency" → "latency_ms", ...) and validates every target in
        # the parent, before any worker forks.
        configs = [LightNASConfig.paper(target, space=space,
                                        seed=args.seed,
                                        metric_name=args.metric,
                                        compute_dtype=args.dtype,
                                        profile_ops=args.profile_ops,
                                        use_plans=not args.no_plans,
                                        use_fusion=not args.no_fusion,
                                        **overrides)
                   for target in targets]
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    tasks = [_sweep_task(config, predictor, oracle, true_value,
                         args.resume, args.checkpoint_every)
             for config in configs]
    values = _run_cli_fleet(args, tasks, seed=args.seed)
    rows = [[f"{row['target']:g} {unit}", row["true_value"],
             row["top1"], row["top5"],
             ",".join(str(i) for i in row["arch"])]
            for row in values]
    print(render_table(
        ["target", f"{args.metric} {unit}", "top-1 %", "top-5 %",
         "architecture"],
        rows, title="one search per target — no λ tuning"))
    return 0


def cmd_stability(args) -> int:
    """Fig.-7-style stability campaign: (targets × seeds) searches."""
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("error: --resume requires --checkpoint-dir")
    space = _space(args)
    latency_model = LatencyModel(space)
    energy_model = EnergyModel(space, latency_model=latency_model)
    predictor = _metric_predictor(args.metric, space, latency_model,
                                  energy_model)
    true_value = {
        "latency": latency_model.latency_ms,
        "energy": energy_model.energy_mj,
        "macs": lambda arch: count_macs(space, arch) / 1e6,
    }[args.metric]
    unit = _METRIC_UNITS[args.metric]
    targets = [float(t) for t in args.targets.split(",")]
    try:
        seeds = [int(s) for s in args.seeds.split(",")]
    except ValueError as exc:
        raise SystemExit(f"error: malformed --seeds: {exc}")
    if not seeds:
        raise SystemExit("error: --seeds names no seeds")
    if len(set(seeds)) != len(seeds):
        raise SystemExit("error: duplicate seeds in --seeds")
    overrides = {"epochs": args.epochs} if args.epochs else {}
    try:
        grid = [LightNASConfig.paper(target, space=space, seed=seed,
                                     metric_name=args.metric,
                                     compute_dtype=args.dtype,
                                     profile_ops=args.profile_ops,
                                     use_plans=not args.no_plans,
                                     use_fusion=not args.no_fusion,
                                     **overrides)
                for target in targets for seed in seeds]
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    oracle = AccuracyOracle(space)
    tasks = []
    for config in grid:
        task = _sweep_task(config, predictor, oracle, true_value,
                           args.resume, args.checkpoint_every)
        name = f"target_{config.target:g}_seed_{config.seed}"
        task.name = name
        task.subdir = name
        tasks.append(task)
    values = _run_cli_fleet(args, tasks, seed=min(seeds))

    per_target = {target: [] for target in targets}
    for row in values:
        per_target[row["target"]].append(row)
    rows = []
    for target in targets:
        runs = per_target[target]
        finals = np.asarray([r["true_value"] for r in runs], dtype=np.float64)
        archs = {tuple(r["arch"]) for r in runs}
        rows.append([f"{target:g} {unit}", len(runs),
                     f"{finals.mean():.3f} ± {finals.std():.3f}",
                     f"{finals.min():.3f} / {finals.max():.3f}",
                     len(archs)])
    print(render_table(
        ["target", "seeds", f"{args.metric} {unit} (mean ± std)",
         "min / max", "distinct archs"],
        rows,
        title=f"multi-seed stability — seeds {args.seeds}"))
    if args.output:
        payload = {"metric": args.metric, "targets": targets,
                   "seeds": seeds, "runs": values}
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"saved to {args.output}", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    from .archive.service import ArchiveService, make_server

    space = _space(args)
    device = _device(args)
    workers = max(1, args.workers)
    multi = workers > 1
    if multi and not hasattr(socket, "SO_REUSEPORT"):
        raise SystemExit("error: --workers > 1 needs SO_REUSEPORT, which "
                         "this platform does not provide")
    if multi and not hasattr(os, "fork"):
        raise SystemExit("error: --workers > 1 needs os.fork, which this "
                         "platform does not provide")

    # everything forked workers share is built BEFORE the fork, while the
    # process is still single-threaded: the predictor (copy-on-write numpy
    # arrays) and the archive, whose mmap'd segment pages are physically
    # shared across the whole worker group through the page cache
    latency_model = LatencyModel(space, device)
    energy_model = EnergyModel(space, device, latency_model=latency_model)
    predictor = _metric_predictor(args.metric, space, latency_model,
                                  energy_model)
    archive = None
    if args.archive:
        try:
            # a worker group has no single writer, so it opens read-only
            # (multi-process appends to one WAL would interleave frames)
            archive = ArchitectureArchive(args.archive, space=space,
                                          read_only=multi)
        except ArchiveError as exc:
            raise SystemExit(f"error: {exc}")

    host, port = args.host, args.port
    probe = None
    if multi and port == 0:
        # reserve one concrete port for the whole SO_REUSEPORT group; the
        # probe stays open until worker 0's real listener has joined
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((host, 0))
        port = probe.getsockname()[1]

    children: List[int] = []
    worker_id = 0
    for i in range(1, workers):
        pid = os.fork()
        if pid == 0:
            worker_id = i
            children = []
            break
        children.append(pid)
    if probe is not None and worker_id != 0:
        probe.close()
        probe = None

    # per process from here: the batcher thread and the listener socket
    # must be created after the fork
    service = ArchiveService(
        space, predictor,
        metric_name=METRIC_ALIASES.get(args.metric, args.metric),
        device_name=device.name,
        archive=archive,
        window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        default_page_limit=args.page_limit or None,
    )
    server = make_server(service, host=host, port=port,
                         verbose=args.verbose, reuse_port=multi)
    bound_host, bound_port = server.server_address[:2]
    if probe is not None:
        probe.close()
    if worker_id == 0:
        # flushed so wrappers (the CI smoke test) can scrape the bound port
        suffix = f" ({workers} workers)" if multi else ""
        print(f"serving on http://{bound_host}:{bound_port}{suffix}",
              flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
        for pid in children:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        for pid in children:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
    return 0


def cmd_compact(args) -> int:
    try:
        # geometry comes from the archive header; a missing file is an error
        archive = ArchitectureArchive(args.archive)
    except ArchiveError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        start = time.perf_counter()
        segment = archive.compact()
        print(json.dumps({
            "archive": args.archive,
            "segment": segment,
            "records": len(archive),
            "wall_seconds": round(time.perf_counter() - start, 3),
        }, indent=2))
        return 0
    except ArchiveError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        archive.close()


def _parse_budgets(pairs) -> dict:
    budgets = {}
    for pair in pairs or []:
        metric, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(
                f"error: --budget needs METRIC=VALUE, got {pair!r}")
        metric = METRIC_ALIASES.get(metric.strip(), metric.strip())
        try:
            budgets[metric] = float(value)
        except ValueError:
            raise SystemExit(
                f"error: --budget value {value!r} is not a number")
    return budgets


def cmd_query(args) -> int:
    try:
        # geometry comes from the archive header; a missing file is an error
        # (creating an empty archive here would just mask a typoed path)
        archive = ArchitectureArchive(args.archive)
    except ArchiveError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        if args.stats:
            print(json.dumps(archive.stats(), indent=2))
            return 0
        device = resolve_device(args.device).name if args.device else None
        index = archive.index()
        if args.pareto:
            if device is None:
                raise SystemExit("error: --pareto requires --device")
            rows = archive_query.pareto_rows(
                index, device=device, cost_metric=args.cost_metric)
            results = archive_query.describe_rows(index, rows, device)
        elif args.nearest:
            try:
                ops = [int(x) for x in args.nearest.split(",")]
            except ValueError as exc:
                raise SystemExit(f"error: malformed --nearest: {exc}")
            rows, distances = archive_query.hamming_neighbors(
                index, ops, args.k)
            results = archive_query.describe_rows(index, rows, device)
            for entry, distance in zip(results, distances.tolist()):
                entry["hamming_layers"] = distance
        else:
            objective = METRIC_ALIASES.get(args.objective, args.objective)
            rows = archive_query.top_k(
                index, args.k, objective=objective, device=device,
                budgets=_parse_budgets(args.budget))
            results = archive_query.describe_rows(index, rows, device)
        print(json.dumps({"count": len(results), "results": results},
                         indent=2))
        return 0
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        archive.close()


def cmd_trace_summary(args) -> int:
    try:
        events = read_journal(args.journal)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    runs = summarize_runs(events)
    fleet = summarize_fleet(events)
    if not runs and not fleet:
        raise SystemExit(f"error: {args.journal!r} contains no run_header "
                         f"events — not a run journal?")
    if fleet:
        stats = fleet.get("stats") or {}
        timers = ", ".join(
            f"{name} {info['total_s']:.2f}s/{info['calls']}"
            for name, info in (fleet.get("phase_timers") or {}).items()
        ) or "—"
        retries = "; ".join(
            f"task {r.get('task')} ({r.get('name')}) attempt "
            f"{r.get('attempt')}"
            for r in fleet["retries"]
        ) or "—"
        utilization = stats.get("utilization")
        rows = [
            ["jobs", fleet["jobs"]],
            ["tasks", f"{stats.get('completed', '?')} ok / "
                      f"{stats.get('failed', 0)} failed / "
                      f"{stats.get('cancelled', 0)} cancelled of "
                      f"{fleet['declared_tasks']}"],
            ["retries", retries],
            ["workers spawned", stats.get("workers_spawned", "—")],
            ["fleet wall time (s)", stats.get("wall_s", "—")],
            ["Σ task wall / cpu (s)",
             f"{stats.get('task_wall_s', 0)} / {stats.get('task_cpu_s', 0)}"],
            ["parallel speedup", stats.get("parallel_speedup", "—")],
            ["worker utilization",
             f"{utilization * 100:.0f}%" if utilization is not None else "—"],
            ["phase timers (Σ)", timers],
        ]
        print(render_table(["field", "value"], rows, title="run fleet"))
    for index, run in enumerate(runs):
        timers = ", ".join(
            f"{name} {info['total_s']:.2f}s/{info['calls']}"
            for name, info in run["phase_timers"].items()
        ) or "—"
        arch = run["architecture"]
        rows = []
        task = run.get("task")
        if task:
            rows.append(["fleet task",
                         f"{task.get('task')}: {task.get('name')} "
                         f"({task.get('status')}, "
                         f"{task.get('retries', 0)} retries)"])
        rows += [
            ["engine", run["engine"]],
            ["metric / target", f"{run['metric_name']} / {run['target']}"],
            ["seed", run["seed"]],
            ["resumed from epoch", run["resumed_from_epoch"] or "—"],
            ["epochs recorded", run["epochs_recorded"]],
            ["checkpoints written", run["checkpoints_written"]],
            ["final predicted metric", run["final_predicted_metric"]],
            ["final λ", run["final_lambda"]],
            ["final valid loss", run["final_valid_loss"]],
            ["architecture",
             ",".join(str(i) for i in arch) if arch else "—"],
            ["wall time (s)", run["wall_time_s"]],
            ["phase timers", timers],
        ]
        plans = run.get("plan_stats") or {}
        if plans:
            rows.append(["step plans",
                         f"{plans.get('plans_compiled', 0)} compiled, "
                         f"{plans.get('replays', 0)} replays, "
                         f"{plans.get('eager_steps', 0)} eager, "
                         f"arena {plans.get('arena_bytes', 0) / 1e6:.1f} MB"])
            rows.append(["fused kernels",
                         f"{plans.get('kernels_fused', 0)} bound, "
                         f"{plans.get('fusion_rejected', 0)} rejected by "
                         f"bitwise probe"])
            rows.append(["epoch plans",
                         f"{plans.get('epoch_plans_compiled', 0)} compiled, "
                         f"{plans.get('epoch_plan_hits', 0)} whole-epoch "
                         f"replays, "
                         f"{plans.get('epoch_plan_invalidations', 0)} "
                         f"invalidated"])
        print(render_table(["field", "value"], rows,
                           title=f"run {index + 1}/{len(runs)}"))
        if args.ops:
            profile = run.get("op_profile") or {}
            if not profile:
                print("no op profile in this run — re-run the search with "
                      "--profile-ops", file=sys.stderr)
                continue
            op_rows = [
                [kind, f"{info['total_ms']:.1f}", info["calls"],
                 f"{info['mean_ms']:.4f}",
                 f"{info.get('alloc_bytes', 0) / 1e6:.2f}"]
                for kind, info in profile.items()
            ]
            print(render_table(
                ["op", "total ms", "calls", "mean ms", "alloc MB"], op_rows,
                title=f"per-op profile — run {index + 1}/{len(runs)}"))
    return 0


# ----------------------------------------------------------------------
# Fleet commands
# ----------------------------------------------------------------------

#: Default retargeting fleet: three members of every family (12 devices).
_DEFAULT_FLEET_SPEC = "phone=3,mcu=3,server-cpu=3,edge-gpu=3"


def _parse_fleet_devices(args) -> List:
    """Resolve ``--devices`` (explicit names) or ``--fleet`` (FAMILY=N
    spec) into a list of :class:`DeviceProfile`, preserving order."""
    if getattr(args, "devices", ""):
        names = [n.strip() for n in args.devices.split(",") if n.strip()]
        if not names:
            raise SystemExit("error: --devices names no devices")
        try:
            return [resolve_device(name) for name in names]
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    spec = getattr(args, "fleet", "") or _DEFAULT_FLEET_SPEC
    seed = getattr(args, "fleet_seed", fleet_pkg.DEFAULT_FLEET_SEED)
    devices = []
    for part in spec.split(","):
        family, sep, count = part.strip().partition("=")
        if not sep:
            raise SystemExit(
                f"error: --fleet needs FAMILY=COUNT pairs, got {part!r}")
        try:
            devices.extend(
                fleet_pkg.generate_fleet(family, int(count), seed))
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    return devices


def _proxy_predictor(space: SearchSpace, latency_model: LatencyModel):
    """The proxy device's campaign latency predictor (cached)."""
    samples = 1500 if space.num_layers <= 8 else 10_000
    predictor, _ = fit_latency_predictor(space, latency_model,
                                         num_samples=samples)
    return predictor


def cmd_fleet_list(args) -> int:
    from .fleet import FLEET_FAMILIES, generate_fleet
    if args.family:
        try:
            devices = generate_fleet(args.family, args.count, args.seed)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        if args.json:
            print(json.dumps([{
                "name": d.name,
                "batch_size": d.batch_size,
                "peak_macs_per_ms": d.peak_macs_per_ms,
                "depthwise_efficiency": d.depthwise_efficiency,
                "bandwidth_bytes_per_ms": d.bandwidth_bytes_per_ms,
                "kernel_launch_ms": d.kernel_launch_ms,
                "network_overhead_ms": d.network_overhead_ms,
                "fusion_saving_ms": d.fusion_saving_ms,
            } for d in devices], indent=2))
            return 0
        rows = [[d.name, d.batch_size, f"{d.peak_macs_per_ms:.3g}",
                 f"{d.bandwidth_bytes_per_ms:.3g}",
                 f"{d.depthwise_efficiency:.3f}",
                 f"{d.kernel_launch_ms:.4f}", f"{d.network_overhead_ms:.2f}"]
                for d in devices]
        print(render_table(
            ["device", "batch", "MACs/ms", "bytes/ms", "dw eff",
             "launch ms", "overhead ms"],
            rows, title=f"fleet family {args.family!r} (seed {args.seed})"))
        return 0
    spec_rows = [[spec.name, spec.batch_size,
                  f"{spec.speed[0]:g}-{spec.speed[1]:g}x", spec.description]
                 for spec in FLEET_FAMILIES.values()]
    print(render_table(
        ["family", "batch", "speed vs proxy", "description"], spec_rows,
        title="parametric device families — members resolve as FAMILY-NN"))
    return 0


def cmd_fleet_retarget(args) -> int:
    from .fleet import ProxyTransfer, retarget_archive

    space = _space(args)
    devices = _parse_fleet_devices(args)
    latency_model = LatencyModel(space)
    proxy = latency_model.device
    predictor = _proxy_predictor(space, latency_model)
    try:
        transfer = ProxyTransfer.calibrate(
            predictor, space, devices, num_samples=args.calibration,
            seed=args.seed, proxy_device=proxy.name)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        archive = ArchitectureArchive(args.archive, space=space)
    except ArchiveError as exc:
        raise SystemExit(f"error: {exc}")
    try:
        if not len(archive):
            raise SystemExit(
                f"error: archive {args.archive!r} holds no architectures")
        report = retarget_archive(archive, transfer, predictor,
                                  args.target, write_back=args.write_back)
    finally:
        archive.close()
    print(json.dumps(report, indent=2))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"saved to {args.output}", file=sys.stderr)
    return 0


def cmd_fleet_calibrate(args) -> int:
    from .fleet import ProxyTransfer

    space = _space(args)
    devices = _parse_fleet_devices(args)
    latency_model = LatencyModel(space)
    proxy = latency_model.device
    predictor = _proxy_predictor(space, latency_model)
    # one task per device: the shared calibration set and the fitted
    # proxy predictor are built here, pre-fork, and inherited by workers
    fleet = RunFleet(jobs=args.jobs, seed=args.seed)
    try:
        transfer = ProxyTransfer.calibrate(
            predictor, space, devices, num_samples=args.calibration,
            seed=args.seed, proxy_device=proxy.name,
            fleet=fleet if args.jobs > 1 else None)
    except (ValueError, TaskFailure) as exc:
        raise SystemExit(f"error: {exc}")
    rows = []
    for device in devices:
        fmap = transfer.map_for(device.name)
        rows.append([device.name, fmap.calibration_size, len(fmap.x_knots),
                     f"{fmap.y_knots[0]:.3f}-{fmap.y_knots[-1]:.3f}"])
    print(render_table(
        ["device", "calibration pairs", "knots", "measured range (ms)"],
        rows,
        title=f"proxy transfer maps — proxy {proxy.name}, "
              f"seed {args.seed}"))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(transfer.to_payload(), handle, indent=2)
        print(f"saved to {args.output}", file=sys.stderr)
    return 0


def cmd_fleet_search(args) -> int:
    from .fleet import ProxyTransfer

    space = _space(args)
    try:
        device = resolve_device(args.device)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    latency_model = LatencyModel(space)
    proxy = latency_model.device
    predictor = _proxy_predictor(space, latency_model)
    transfer = ProxyTransfer.calibrate(
        predictor, space, [device], num_samples=args.calibration,
        seed=args.seed, proxy_device=proxy.name)
    fleet_map = transfer.map_for(device.name)

    # Strict monotonicity makes the transfer map bijective, so a latency
    # budget on the target device is exactly a budget on the proxy:
    # map(LAT) <= T  <=>  LAT <= map^-1(T).  The ordinary proxy-device
    # search runs unchanged against the inverted target.
    proxy_target = fleet_map.inverse(args.target)
    if not (proxy_target > 0):
        raise SystemExit(
            f"error: target {args.target:g} ms maps to a non-positive "
            f"proxy budget ({proxy_target:.3g} ms) — it is below what "
            f"{device.name!r} can reach on this space")
    overrides = {}
    if args.epochs:
        overrides["epochs"] = args.epochs
    try:
        config = LightNASConfig.paper(proxy_target, space=space,
                                      seed=args.seed,
                                      metric_name="latency", **overrides)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    result = LightNAS(config, predictor=predictor).search(
        verbose=args.verbose)

    arch = result.architecture
    proxy_predicted = float(result.predicted_metric)
    device_truth = LatencyModel(space, device).latency_ms(arch)
    payload = result.summary()
    payload.update({
        "device": device.name,
        "target_ms": float(args.target),
        "proxy_device": proxy.name,
        "proxy_target_ms": proxy_target,
        "calibration_size": fleet_map.calibration_size,
        "predicted_device_latency_ms": fleet_map.transfer(proxy_predicted),
        "true_device_latency_ms": device_truth,
        "satisfied": bool(device_truth <= args.target),
    })
    print(json.dumps(payload, indent=2))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"saved to {args.output}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LightNAS (DAC 2022) reproduction — one-time "
                    "hardware-constrained differentiable NAS",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="search-space and device summary")
    p_info.add_argument("--tiny", action="store_true")
    p_info.set_defaults(func=cmd_info)

    p_search = sub.add_parser("search", help="run one constrained search")
    p_search.add_argument("--target", type=float, required=True,
                          help="constraint value (ms, mJ or M MACs)")
    p_search.add_argument("--metric", choices=("latency", "energy", "macs"),
                          default="latency")
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--epochs", type=int, default=0,
                          help="override search epochs (0 = paper default)")
    p_search.add_argument("--tiny", action="store_true",
                          help="toy space with real bi-level supernet training")
    p_search.add_argument("--output", default="",
                          help="also write the result JSON to this path")
    p_search.add_argument("--verbose", action="store_true")
    _add_runtime_flags(p_search)
    p_search.set_defaults(func=cmd_search)

    p_predict = sub.add_parser("predict", help="predict metrics of an arch")
    p_predict.add_argument("--arch", default="",
                           help="comma-separated operator indices")
    p_predict.add_argument("--arch-file", default="",
                           help="file with one comma-separated architecture "
                                "per line; prints a batch prediction JSON")
    p_predict.add_argument("--device", default="xavier",
                           help=_device_help(default="xavier"))
    p_predict.add_argument("--tiny", action="store_true")
    p_predict.set_defaults(func=cmd_predict)

    p_eval = sub.add_parser("evaluate", help="Table-2-style evaluation row")
    p_eval.add_argument("--arch", required=True)
    p_eval.add_argument("--name", default="custom")
    p_eval.add_argument("--se", type=int, default=0,
                        help="apply SE to the last N layers")
    p_eval.add_argument("--tiny", action="store_true")
    p_eval.set_defaults(func=cmd_evaluate)

    p_sweep = sub.add_parser("sweep", help="one search per target")
    p_sweep.add_argument("--targets", required=True,
                         help="comma-separated targets, e.g. 20,24,28")
    p_sweep.add_argument("--metric", choices=("latency", "energy", "macs"),
                         default="latency")
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--epochs", type=int, default=0,
                         help="override search epochs (0 = paper default)")
    p_sweep.add_argument("--tiny", action="store_true")
    _add_runtime_flags(p_sweep)
    _add_jobs_flag(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_stability = sub.add_parser(
        "stability",
        help="multi-seed stability campaign: one search per "
             "(target, seed) pair, Fig.-7-style mean ± std per target")
    p_stability.add_argument("--targets", required=True,
                             help="comma-separated targets, e.g. 20,24,28")
    p_stability.add_argument("--seeds", default="0,1,2",
                             help="comma-separated seeds (default 0,1,2)")
    p_stability.add_argument("--metric",
                             choices=("latency", "energy", "macs"),
                             default="latency")
    p_stability.add_argument("--epochs", type=int, default=0,
                             help="override search epochs "
                                  "(0 = paper default)")
    p_stability.add_argument("--output", default="",
                             help="also write every run's row to this JSON")
    p_stability.add_argument("--tiny", action="store_true")
    _add_runtime_flags(p_stability)
    _add_jobs_flag(p_stability)
    p_stability.set_defaults(func=cmd_stability)

    p_serve = sub.add_parser(
        "serve", help="batched JSON prediction/query API over HTTP")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = pick an ephemeral port; the "
                              "bound address is printed either way)")
    p_serve.add_argument("--metric", choices=("latency", "energy", "macs"),
                         default="latency")
    p_serve.add_argument("--device", default="xavier",
                         help=_device_help(default="xavier"))
    p_serve.add_argument("--archive", default="",
                         help="serve /query, /pareto and /nearest from this "
                              "archive file")
    p_serve.add_argument("--batch-window-ms", type=float, default=4.0,
                         help="how long /predict waits for concurrent "
                              "requests to coalesce into one batch")
    p_serve.add_argument("--max-batch", type=int, default=8192,
                         help="dispatch a batch early at this many archs")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="serve from this many processes accepting on "
                              "one SO_REUSEPORT socket group; the archive "
                              "is opened read-only and its mmap'd segments "
                              "are shared across the group (compact the "
                              "archive first: repro compact)")
    p_serve.add_argument("--page-limit", type=int, default=0,
                         help="default page size for /query, /pareto and "
                              "/nearest when the request sends no 'limit' "
                              "(0 = unpaginated responses by default)")
    p_serve.add_argument("--tiny", action="store_true")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each HTTP request")
    p_serve.set_defaults(func=cmd_serve)

    p_query = sub.add_parser(
        "query", help="offline top-k / Pareto / nearest over an archive")
    p_query.add_argument("--archive", required=True,
                         help="archive file written by a search or campaign")
    p_query.add_argument("--stats", action="store_true",
                         help="print the archive summary and exit")
    p_query.add_argument("--pareto", action="store_true",
                         help="per-device cost/score Pareto frontier "
                              "(requires --device)")
    p_query.add_argument("--nearest", default="", metavar="ARCH",
                         help="Hamming nearest neighbours of this "
                              "comma-separated architecture")
    p_query.add_argument("--k", type=int, default=10)
    p_query.add_argument("--objective", default="score",
                         help="top-k objective: score (maximised) or a cost "
                              "metric such as latency_ms (minimised)")
    p_query.add_argument("--device", default="",
                         help=_device_help())
    p_query.add_argument("--cost-metric", default="latency_ms",
                         help="x-axis of the --pareto frontier")
    p_query.add_argument("--budget", action="append", metavar="METRIC=VALUE",
                         help="feasibility budget for top-k, repeatable — "
                              "e.g. --budget latency_ms=24 --budget macs_m=300")
    p_query.set_defaults(func=cmd_query)

    p_compact = sub.add_parser(
        "compact",
        help="compact an archive into a memory-mapped segment so the next "
             "open is an mmap + WAL-tail replay, not a full log parse")
    p_compact.add_argument("--archive", required=True,
                           help="archive file written by a search or "
                                "campaign")
    p_compact.set_defaults(func=cmd_compact)

    p_fleet = sub.add_parser(
        "fleet",
        help="parametric device fleets + proxy-device retargeting")
    fleet_sub = p_fleet.add_subparsers(dest="fleet_command", required=True)

    pf_list = fleet_sub.add_parser(
        "list", help="list device families, or the members of one")
    pf_list.add_argument("--family", default="",
                         help="expand this family's members instead of "
                              "listing all families")
    pf_list.add_argument("--count", type=int, default=8,
                         help="members to expand (default 8)")
    pf_list.add_argument("--seed", type=int,
                         default=fleet_pkg.DEFAULT_FLEET_SEED)
    pf_list.add_argument("--json", action="store_true",
                         help="emit full device constants as JSON")
    pf_list.set_defaults(func=cmd_fleet_list)

    pf_retarget = fleet_sub.add_parser(
        "retarget",
        help="sweep one archive against every fleet device: per-device "
             "constraint satisfaction + Pareto fronts via proxy transfer")
    pf_retarget.add_argument("--archive", required=True,
                             help="archive file written by a search or "
                                  "campaign")
    pf_retarget.add_argument("--target", type=float, required=True,
                             help="per-device latency budget (ms)")
    pf_retarget.add_argument("--devices", default="",
                             help="comma-separated device names (fleet or "
                                  "static); overrides --fleet")
    pf_retarget.add_argument("--fleet", default="",
                             help="FAMILY=COUNT spec, e.g. phone=4,mcu=4 "
                                  f"(default {_DEFAULT_FLEET_SPEC})")
    pf_retarget.add_argument("--fleet-seed", type=int,
                             default=fleet_pkg.DEFAULT_FLEET_SEED,
                             help="fleet generation seed for --fleet")
    pf_retarget.add_argument("--calibration", type=int, default=100,
                             help="calibration architectures per device "
                                  "(default 100)")
    pf_retarget.add_argument("--seed", type=int, default=0,
                             help="calibration sampling/measurement seed")
    pf_retarget.add_argument("--write-back", action="store_true",
                             help="append per-device predicted latencies "
                                  "to the archive so repro query/serve "
                                  "answer for fleet devices")
    pf_retarget.add_argument("--output", default="",
                             help="also write the report JSON to this path")
    pf_retarget.add_argument("--tiny", action="store_true")
    pf_retarget.set_defaults(func=cmd_fleet_retarget)

    pf_calibrate = fleet_sub.add_parser(
        "calibrate",
        help="fit per-device proxy transfer maps and save them as JSON "
             "(--jobs fans the devices across forked workers)")
    pf_calibrate.add_argument("--devices", default="",
                              help="comma-separated device names (fleet or "
                                   "static); overrides --fleet")
    pf_calibrate.add_argument("--fleet", default="",
                              help="FAMILY=COUNT spec, e.g. phone=4,mcu=4 "
                                   f"(default {_DEFAULT_FLEET_SPEC})")
    pf_calibrate.add_argument("--fleet-seed", type=int,
                              default=fleet_pkg.DEFAULT_FLEET_SEED,
                              help="fleet generation seed for --fleet")
    pf_calibrate.add_argument("--calibration", type=int, default=100,
                              help="calibration architectures per device "
                                   "(default 100)")
    pf_calibrate.add_argument("--seed", type=int, default=0,
                              help="calibration sampling/measurement seed")
    pf_calibrate.add_argument("--output", default="",
                              help="write the transfer-map payload JSON "
                                   "(ProxyTransfer.from_payload reads it "
                                   "back)")
    pf_calibrate.add_argument("--tiny", action="store_true")
    _add_jobs_flag(pf_calibrate)
    pf_calibrate.set_defaults(func=cmd_fleet_calibrate)

    pf_search = fleet_sub.add_parser(
        "search",
        help="one constrained search against a fleet device (the latency "
             "budget is inverted through the transfer map onto the proxy)")
    pf_search.add_argument("--target", type=float, required=True,
                           help="latency budget on the target device (ms)")
    pf_search.add_argument("--device", required=True,
                           help=_device_help())
    pf_search.add_argument("--calibration", type=int, default=100)
    pf_search.add_argument("--seed", type=int, default=0)
    pf_search.add_argument("--epochs", type=int, default=0,
                           help="override search epochs (0 = paper default)")
    pf_search.add_argument("--output", default="",
                           help="also write the result JSON to this path")
    pf_search.add_argument("--verbose", action="store_true")
    pf_search.add_argument("--tiny", action="store_true")
    pf_search.set_defaults(func=cmd_fleet_search)

    p_trace = sub.add_parser(
        "trace-summary",
        help="summarise a JSON-lines run journal written with --trace")
    p_trace.add_argument("journal", help="path to the .jsonl journal")
    p_trace.add_argument("--ops", action="store_true",
                         help="also print the per-op wall-time profile "
                              "(journals recorded with --profile-ops)")
    p_trace.set_defaults(func=cmd_trace_summary)

    return parser


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="fan the independent runs across N forked "
                             "worker processes; results are bit-identical "
                             "to --jobs 1 (needs os.fork)")


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """Checkpoint/resume/telemetry flags shared by search and sweep."""
    parser.add_argument("--checkpoint-dir", default="",
                        help="write resumable checkpoints to this directory")
    parser.add_argument("--checkpoint-every", type=int, default=10,
                        help="checkpoint every N epochs (default 10)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the latest checkpoint in "
                             "--checkpoint-dir (starts fresh if none)")
    parser.add_argument("--trace", default="",
                        help="write a JSON-lines run journal to this path "
                             "(read it back with: repro trace-summary)")
    parser.add_argument("--dtype", choices=("float64", "float32"),
                        default="float64",
                        help="engine compute dtype; float64 (default) keeps "
                             "seeded runs bit-identical, float32 trades "
                             "precision for speed")
    parser.add_argument("--profile-ops", action="store_true",
                        help="record per-op wall time in the journal epochs "
                             "(view with: repro trace-summary --ops)")
    parser.add_argument("--no-plans", action="store_true",
                        help="disable compiled step plans (trace-once/"
                             "replay-many execution); the eager engine "
                             "computes bit-identical results, just slower")
    parser.add_argument("--no-fusion", action="store_true",
                        help="disable fused replay kernels and whole-epoch "
                             "compilation (plans still replay unfused, "
                             "bit-identically); use to isolate a suspected "
                             "fusion issue")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - python -m repro.cli
    sys.exit(main())
