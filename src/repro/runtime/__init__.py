"""Run-time infrastructure for the search engines.

"You only search once" makes one search run the unit of value — a crashed
run at epoch 85/90 loses everything, and an unobserved run cannot be
debugged after the fact.  This subpackage supplies the two pieces every
engine shares:

* :mod:`repro.runtime.checkpoint` — atomic ``.npz`` snapshots of the full
  search state (parameters, optimizer moments, RNG bit-generator state,
  trajectory, counters) with config fingerprinting, so an interrupted run
  resumes **bit-for-bit** identical to an uninterrupted one.
* :mod:`repro.runtime.telemetry` — a JSON-lines event journal (run header,
  per-epoch records, checkpoint markers, phase-timer aggregates) with a
  near-zero-cost no-op mode, plus a reader for ``python -m repro
  trace-summary``.
* :mod:`repro.runtime.parallel` — the :class:`~repro.runtime.parallel.
  RunFleet` executor fanning independent runs (sweep targets, stability
  seeds, fleet-device calibrations, campaign shards) across forked worker
  processes, bit-identical to the sequential run and fault-tolerant.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointManager,
    fingerprint_of,
    latest_checkpoint,
    load_checkpoint,
    resolve_checkpoint,
    restore_rng,
    rng_state_json,
    save_checkpoint,
)
from .parallel import (
    FleetReport,
    FleetTask,
    RunFleet,
    TaskContext,
    TaskFailure,
    TaskResult,
)
from .telemetry import (
    NullJournal,
    PhaseTimers,
    RunJournal,
    read_journal,
    summarize_fleet,
    summarize_runs,
)

__all__ = [
    "CheckpointError",
    "CheckpointManager",
    "fingerprint_of",
    "latest_checkpoint",
    "load_checkpoint",
    "resolve_checkpoint",
    "restore_rng",
    "rng_state_json",
    "save_checkpoint",
    "FleetReport",
    "FleetTask",
    "NullJournal",
    "PhaseTimers",
    "RunFleet",
    "RunJournal",
    "TaskContext",
    "TaskFailure",
    "TaskResult",
    "read_journal",
    "summarize_fleet",
    "summarize_runs",
]
