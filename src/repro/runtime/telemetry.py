"""Structured run telemetry: a JSON-lines event journal + phase timers.

Every search engine can write one **journal** per run: a plain-text file
with one JSON object per line, append-only and flushed per event, so a
crashed run leaves a readable record up to the crash.  Event kinds:

``run_header``
    Opens a run: engine name, config digest, seed, library versions.
``epoch``
    One record per search epoch: predicted metric, λ, τ, the epoch's true
    mean validation loss, the derived architecture, wall time.
``checkpoint``
    A checkpoint was written (epoch + path).
``run_end``
    Closes a run: final metric/λ, total wall time, per-phase timer
    aggregates.

:class:`NullJournal` is the no-op twin — engines call it unconditionally
and pay only an attribute lookup plus an empty method call per event, so
telemetry-off runs stay at full speed.  :func:`read_journal` and
:func:`summarize_runs` back the ``python -m repro trace-summary`` CLI.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

import numpy as np

from ..nn.profiler import merge_profiles

__all__ = ["PhaseTimers", "RunJournal", "NullJournal", "read_journal",
           "summarize_fleet", "summarize_runs"]


class PhaseTimers:
    """Lightweight context-manager timers aggregated per phase name.

    >>> timers = PhaseTimers()
    >>> with timers.phase("update_alpha"):
    ...     pass
    >>> timers.as_dict()["update_alpha"]["calls"]
    1
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{phase: {"total_s": ..., "calls": ...}}`` for the journal."""
        return {
            name: {"total_s": round(self._totals[name], 6),
                   "calls": self._counts[name]}
            for name in sorted(self._totals)
        }


class RunJournal:
    """Append-only JSON-lines event writer for one or more runs."""

    enabled = True

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a" if append else "w", encoding="utf-8")
        self._start = time.perf_counter()

    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: object) -> None:
        """Write one event line (flushed, so crashes lose nothing)."""
        record: Dict[str, object] = {
            "event": kind,
            "elapsed_s": round(time.perf_counter() - self._start, 6),
        }
        record.update(fields)
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def run_header(self, engine: str, **fields: object) -> None:
        self.event(
            "run_header",
            engine=engine,
            python=sys.version.split()[0],
            numpy=np.__version__,
            unix_time=round(time.time(), 3),
            **fields,
        )

    def epoch(self, **fields: object) -> None:
        self.event("epoch", **fields)

    def run_end(self, **fields: object) -> None:
        self.event("run_end", **fields)

    def append_lines(self, lines) -> None:
        """Append pre-formatted JSON-lines events verbatim (one flush).

        Used by the :class:`~repro.runtime.parallel.RunFleet` merge: each
        task's journal already holds well-formed event lines whose
        ``elapsed_s`` is relative to the *task's* start, and re-encoding
        them would only risk perturbing float reprs.
        """
        for line in lines:
            line = line.rstrip("\n")
            if line:
                self._handle.write(line + "\n")
        self._handle.flush()

    # ------------------------------------------------------------------
    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullJournal(RunJournal):
    """No-op journal: every event is a single empty method call."""

    enabled = False

    def __init__(self) -> None:  # no file, no clock
        self.path = None

    def event(self, kind: str, **fields: object) -> None:
        pass

    def run_header(self, engine: str, **fields: object) -> None:
        pass

    def epoch(self, **fields: object) -> None:
        pass

    def run_end(self, **fields: object) -> None:
        pass

    def append_lines(self, lines) -> None:
        pass

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------

def read_journal(path: str) -> List[dict]:
    """Parse a JSON-lines journal; loud on malformed lines."""
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed journal line ({exc})"
                ) from exc
    return events


def summarize_runs(events: List[dict]) -> List[dict]:
    """Digest a journal into one summary dict per run.

    Runs are delimited by ``run_header`` events (a sweep journal holds
    several).  Epoch records before the first header (possible only for a
    hand-edited file) are ignored.  In a merged :class:`~repro.runtime.
    parallel.RunFleet` journal each run follows its ``task_header``; the
    task attribution (index, name, target/seed/... extras) is attached to
    the run summary as ``run["task"]``, and the fleet-level ``run_end``
    (the one carrying ``fleet_stats``) is kept out of per-run fields —
    read it with :func:`summarize_fleet`.
    """
    summaries: List[dict] = []
    current: Optional[dict] = None
    pending_task: Optional[dict] = None
    for event in events:
        kind = event.get("event")
        if kind == "task_header":
            pending_task = {key: value for key, value in event.items()
                            if key not in ("event", "elapsed_s")}
            continue
        if kind == "run_end" and event.get("fleet_stats") is not None:
            continue  # fleet-level close, not part of any single run
        if kind == "run_header":
            current = {
                "engine": event.get("engine", "?"),
                "target": event.get("target"),
                "metric_name": event.get("metric_name"),
                "seed": event.get("seed"),
                "resumed_from_epoch": event.get("start_epoch") or None,
                "epochs_recorded": 0,
                "checkpoints_written": 0,
                "final_predicted_metric": None,
                "final_lambda": None,
                "final_valid_loss": None,
                "architecture": None,
                "wall_time_s": None,
                "phase_timers": {},
                "op_profile": {},
                "plan_stats": {},
                "task": pending_task,
            }
            pending_task = None
            summaries.append(current)
        elif current is None:
            continue
        elif kind == "epoch":
            current["epochs_recorded"] += 1
            current["final_predicted_metric"] = event.get("predicted_metric")
            current["final_lambda"] = event.get("lambda")
            current["final_valid_loss"] = event.get("valid_loss")
            current["architecture"] = event.get("architecture")
            if event.get("op_profile"):
                current["op_profile"] = merge_profiles(
                    current["op_profile"], event["op_profile"])
        elif kind == "checkpoint":
            current["checkpoints_written"] += 1
        elif kind == "run_end":
            current["wall_time_s"] = event.get("wall_time_s",
                                               event.get("elapsed_s"))
            current["phase_timers"] = event.get("phase_timers", {})
            for key in ("final_predicted_metric", "final_lambda",
                        "architecture", "plan_stats"):
                if event.get(key) is not None:
                    current[key] = event[key]
    return summaries


def summarize_fleet(events: List[dict]) -> Optional[dict]:
    """Digest a merged run-fleet journal into one pool summary.

    Returns ``None`` for ordinary (non-fleet) journals.  Fields: ``jobs``,
    ``tasks`` (``task_header`` digests in task order), ``retries``
    (``task_retry`` events), ``stats`` (the ``fleet_stats`` payload of the
    fleet-level ``run_end``) and ``phase_timers`` (aggregated across
    tasks).
    """
    fleet: Optional[dict] = None
    for event in events:
        kind = event.get("event")
        if kind == "fleet_header":
            fleet = {
                "jobs": event.get("jobs"),
                "declared_tasks": event.get("tasks"),
                "seed": event.get("seed"),
                "tasks": [],
                "retries": [],
                "stats": {},
                "phase_timers": {},
            }
        elif fleet is None:
            continue
        elif kind == "task_header":
            fleet["tasks"].append(
                {key: value for key, value in event.items()
                 if key not in ("event", "elapsed_s")})
        elif kind == "task_retry":
            fleet["retries"].append(
                {key: value for key, value in event.items()
                 if key not in ("event", "elapsed_s")})
        elif kind == "run_end" and event.get("fleet_stats") is not None:
            fleet["stats"] = event["fleet_stats"]
            fleet["phase_timers"] = event.get("phase_timers", {})
    return fleet
