"""Checkpoint/resume for the search engines.

A checkpoint is one ``.npz`` file holding

* an ``__meta__`` JSON record — engine kind, format version, a config
  *fingerprint*, scalar counters (next epoch, optimisation steps taken),
  and the serialized RNG bit-generator states, and
* the state arrays themselves — α and optimizer moments, λ and its
  history, supernet weights and SGD velocities, the trajectory so far.

Design rules, mirroring the predictor-cache handling in
:mod:`repro.experiments.shared`:

* **Atomic writes** — the file is written to a temp path in the same
  directory and ``os.replace``-d into place, so a crash mid-write never
  leaves a truncated checkpoint where a good one should be.
* **Loud failures** — an unreadable, truncated, or incompatible file
  raises :class:`CheckpointError` with a remedy, never silently restarts.
* **Fingerprinted configs** — resuming under a different configuration
  (target, space, seed, hyper-parameters) is refused: the restored state
  would be silently meaningless.
* **Exact state** — float64 arrays and the RNG bit-generator state
  round-trip bit-for-bit, which is what makes the resume-parity tests
  (interrupted run ≡ uninterrupted run) possible.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "fingerprint_of",
    "latest_checkpoint",
    "load_checkpoint",
    "resolve_checkpoint",
    "restore_rng",
    "rng_state_json",
    "save_checkpoint",
]

CHECKPOINT_VERSION = 1

_FILE_RE = re.compile(r"^ckpt_epoch(\d+)\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or matched to this run."""


# ----------------------------------------------------------------------
# Fingerprints and RNG state
# ----------------------------------------------------------------------

def fingerprint_of(*parts: object) -> str:
    """Short stable hash of the run-defining values.

    Engines hash everything that determines the search dynamics (config
    fields, space geometry, seed); a checkpoint whose fingerprint does not
    match the resuming run is refused.
    """
    return hashlib.md5(repr(parts).encode()).hexdigest()[:12]


def rng_state_json(rng: np.random.Generator) -> str:
    """Serialize a generator's bit-generator state (JSON keeps big ints)."""
    return json.dumps(rng.bit_generator.state)


def restore_rng(rng: np.random.Generator, state_json: str) -> None:
    """Restore a generator to a state captured by :func:`rng_state_json`."""
    rng.bit_generator.state = json.loads(state_json)


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------

def save_checkpoint(path: str, meta: Dict[str, object],
                    arrays: Dict[str, np.ndarray]) -> None:
    """Atomically write ``meta`` + ``arrays`` to ``path`` (an ``.npz``)."""
    if "__meta__" in arrays:
        raise ValueError("'__meta__' is a reserved checkpoint key")
    meta = dict(meta)
    meta.setdefault("version", CHECKPOINT_VERSION)
    payload = {key: np.asarray(value) for key, value in arrays.items()}
    payload["__meta__"] = np.array(json.dumps(meta))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(path: str) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Read a checkpoint; loud :class:`CheckpointError` on any defect."""
    if not os.path.exists(path):
        raise CheckpointError(f"checkpoint {path!r} does not exist")
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is unreadable ({exc}); it is corrupt or "
            f"truncated — delete it and resume from an earlier checkpoint "
            f"or restart the search"
        ) from exc
    if "__meta__" not in arrays:
        raise CheckpointError(
            f"checkpoint {path!r} has no '__meta__' record — it was written "
            f"by an incompatible version or is corrupt; delete it and "
            f"restart the search"
        )
    try:
        meta = json.loads(str(arrays.pop("__meta__")[()]))
    except (json.JSONDecodeError, IndexError) as exc:
        raise CheckpointError(
            f"checkpoint {path!r} has a corrupt '__meta__' record ({exc}); "
            f"delete it and restart the search"
        ) from exc
    if meta.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {meta.get('version')!r}, "
            f"expected {CHECKPOINT_VERSION} — it was written by an "
            f"incompatible version of this library"
        )
    return meta, arrays


def latest_checkpoint(directory: str) -> Optional[str]:
    """Path of the highest-epoch checkpoint in ``directory``, if any."""
    if not os.path.isdir(directory):
        return None
    best_epoch, best_name = -1, None
    for name in os.listdir(directory):
        match = _FILE_RE.match(name)
        if match and int(match.group(1)) > best_epoch:
            best_epoch, best_name = int(match.group(1)), name
    if best_name is None:
        return None
    return os.path.join(directory, best_name)


def resolve_checkpoint(path: str) -> str:
    """Resolve a checkpoint argument: a file, or a directory's latest."""
    if os.path.isdir(path):
        latest = latest_checkpoint(path)
        if latest is None:
            raise CheckpointError(
                f"no checkpoint files (ckpt_epoch*.npz) in directory {path!r}"
            )
        return latest
    return path


class CheckpointManager:
    """Periodic checkpoint writer for one search run.

    Parameters
    ----------
    directory:
        Where checkpoints are written (created if missing).
    every:
        Save after every ``every``-th epoch (1 = every epoch).
    """

    def __init__(self, directory: str, every: int = 10) -> None:
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.directory = directory
        self.every = int(every)
        os.makedirs(directory, exist_ok=True)

    def due(self, epoch: int) -> bool:
        """Whether a checkpoint should be written after 0-indexed ``epoch``."""
        return (epoch + 1) % self.every == 0

    def path_for(self, epoch: int) -> str:
        return os.path.join(self.directory, f"ckpt_epoch{epoch:05d}.npz")

    def save(self, epoch: int, meta: Dict[str, object],
             arrays: Dict[str, np.ndarray]) -> str:
        path = self.path_for(epoch)
        save_checkpoint(path, meta, arrays)
        return path

    def latest(self) -> Optional[str]:
        return latest_checkpoint(self.directory)
