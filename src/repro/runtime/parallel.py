"""Parallel run-fleet executor: fork-based fan-out for independent runs.

"You only search once" makes every *multi-run* workload embarrassingly
parallel: a λ/target sweep is one independent search per target, the
Fig. 7 stability study one per seed, fleet calibration one measurement
campaign per device, and a predictor campaign a set of independent
measurement shards.  :class:`RunFleet` fans those tasks across ``jobs``
worker processes while keeping the results **bit-identical** to the
sequential run:

* **Pre-fork construction + copy-on-write sharing.**  Tasks are plain
  closures built in the parent *before* the workers fork, so big read-only
  state (fitted predictors, per-(layer, op) cost tables, an archive's
  memory-mapped segments) is inherited by every worker through fork
  semantics at ~zero per-worker setup cost.  Nothing is pickled on the way
  *in* — only each task's (small) result comes back through a pipe.
* **Deterministic decomposition.**  Parallelism never changes *what* is
  computed, only *where*: each task owns an explicit RNG stream
  (``ctx.rng`` = ``default_rng([fleet_seed, task_index])`` for tasks that
  want one; engine tasks usually carry their own seeds) and its own
  checkpoint sub-directory, so ``jobs=1`` and ``jobs=N`` produce
  bit-identical values and individually resumable runs.
* **Ordered journal merge.**  Each task writes its own JSON-lines journal
  (same event schema as a sequential run); after the fleet drains, the
  per-task journals are stitched into the caller's
  :class:`~repro.runtime.telemetry.RunJournal` in **task order** behind a
  ``task_header`` event per task, followed by one fleet-level ``run_end``
  carrying pool statistics and the phase timers aggregated across tasks.
  A merged ``jobs=N`` journal is therefore identical to the ``jobs=1``
  journal up to wall-clock fields and worker attribution.
* **Fault tolerance.**  A worker that dies mid-task (crash, OOM kill,
  SIGKILL) or exceeds ``task_timeout`` has its task retried once on a
  freshly forked worker; a second death reports a structured failure
  without sinking the rest of the fleet.  Exceptions *inside* a task are
  deterministic, so they are never retried — they come back as failed
  :class:`TaskResult`\\ s with the worker's traceback.  SIGINT drains
  cleanly: completed results are kept, outstanding tasks are marked
  cancelled, and the journal merge still happens.

``jobs=1`` (the default everywhere) never forks — it runs the identical
task/journal/merge pipeline in-process, so platforms without ``os.fork``
and recorded benchmark results are unaffected.
"""

from __future__ import annotations

import errno
import os
import pickle
import selectors
import shutil
import signal
import struct
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from .telemetry import NullJournal, RunJournal

__all__ = ["FleetReport", "FleetTask", "RunFleet", "TaskContext",
           "TaskFailure", "TaskResult"]

#: result-frame header: task index, attempt, length of the pickled envelope
_FRAME = struct.Struct("!III")
#: command frame: task index + attempt (``_STOP`` tells a worker to exit)
_CMD = struct.Struct("!II")
_STOP = 0xFFFFFFFF


class TaskFailure(RuntimeError):
    """Raised by :meth:`FleetReport.values` when any task failed."""


@dataclass
class FleetTask:
    """One independent unit of work.

    ``fn`` runs in a worker process (or in-process for ``jobs=1``) and
    receives a :class:`TaskContext`; its return value must be picklable
    (plain dicts/arrays — engine results qualify).  ``subdir`` names the
    task's checkpoint sub-directory under the fleet's ``checkpoint_root``
    (defaults to a zero-padded task index); ``header`` rides along on the
    merged journal's ``task_header`` event so ``trace-summary`` can
    attribute the task's epochs (e.g. ``{"target": 24.0, "seed": 1}``).
    """

    name: str
    fn: Callable[["TaskContext"], Any]
    subdir: str = ""
    header: Dict[str, Any] = field(default_factory=dict)


@dataclass
class TaskContext:
    """What a running task knows about itself."""

    index: int
    name: str
    fleet_seed: int
    attempt: int
    in_worker: bool
    journal: RunJournal
    checkpoint_dir: Optional[str] = None

    @property
    def rng(self) -> np.random.Generator:
        """The task's own spawned stream: ``default_rng([seed, index])``.

        Independent of fleet size and of every other task, so any task
        that consumes it computes the same numbers at any ``jobs``.
        """
        return np.random.default_rng([self.fleet_seed, self.index])


@dataclass
class TaskResult:
    """Outcome of one task: ``ok``, ``failed`` or ``cancelled``."""

    index: int
    name: str
    status: str
    value: Any = None
    error: str = ""
    traceback: str = ""
    retries: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    worker: int = -1

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class FleetReport:
    """Ordered task results plus pool statistics."""

    results: List[TaskResult]
    stats: Dict[str, Any]
    interrupted: bool = False

    def values(self) -> List[Any]:
        """Task values in task order; loud on any failure/cancellation."""
        bad = [r for r in self.results if not r.ok]
        if bad:
            lines = "; ".join(
                f"task {r.index} ({r.name}): {r.status}"
                + (f" — {r.error}" if r.error else "")
                for r in bad
            )
            raise TaskFailure(f"{len(bad)} task(s) did not complete: {lines}")
        return [r.value for r in self.results]

    def failures(self) -> List[TaskResult]:
        return [r for r in self.results if r.status == "failed"]


# ----------------------------------------------------------------------
# Worker plumbing
# ----------------------------------------------------------------------

class _Worker:
    """Parent-side handle of one forked worker process."""

    __slots__ = ("id", "pid", "cmd_w", "res_r", "buffer", "task",
                 "attempt", "started", "busy_s")

    def __init__(self, worker_id: int, pid: int, cmd_w: int, res_r: int):
        self.id = worker_id
        self.pid = pid
        self.cmd_w = cmd_w          # parent → worker task assignments
        self.res_r = res_r          # worker → parent result frames
        self.buffer = b""
        self.task: Optional[int] = None
        self.attempt = 0
        self.started = 0.0
        self.busy_s = 0.0

    def close(self) -> None:
        for fd in (self.cmd_w, self.res_r):
            try:
                os.close(fd)
            except OSError:
                pass


def _read_exact(fd: int, count: int) -> bytes:
    chunks = []
    while count:
        chunk = os.read(fd, count)
        if not chunk:
            return b""
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class RunFleet:
    """Multi-process executor for independent, deterministic tasks.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs in-process without
        forking; ``N > 1`` requires ``os.fork``.
    seed:
        Fleet seed feeding every task's ``ctx.rng`` stream.
    journal:
        The caller's :class:`RunJournal`.  When enabled, each task writes
        its own journal file which is merged here, in task order, after
        the fleet drains.
    checkpoint_root:
        If set, task ``i`` checkpoints under
        ``checkpoint_root/<task.subdir or task_%03d>`` — the same layout a
        sequential run would use, so per-task resume works at any ``jobs``.
    task_timeout:
        Seconds a single task attempt may run before its worker is killed
        and the task retried (``None`` = no timeout).
    max_retries:
        Fresh-worker retries per task after a worker death/timeout
        (exceptions inside the task are deterministic and never retried).
    """

    def __init__(self, jobs: int = 1, *, seed: int = 0,
                 journal: Optional[RunJournal] = None,
                 checkpoint_root: Optional[str] = None,
                 task_timeout: Optional[float] = None,
                 max_retries: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs > 1 and not hasattr(os, "fork"):
            raise ValueError(
                "jobs > 1 needs os.fork, which this platform does not "
                "provide; run with jobs=1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.jobs = jobs
        self.seed = seed
        self.journal = journal if journal is not None else NullJournal()
        self.checkpoint_root = checkpoint_root
        self.task_timeout = task_timeout
        self.max_retries = max_retries

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[FleetTask]) -> FleetReport:
        """Execute every task; results come back in task order."""
        tasks = list(tasks)
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError("fleet task names must be unique")
        if not tasks:
            return FleetReport(results=[], stats=self._stats([], 0.0, 0, 0))

        scratch = None
        if self.journal.enabled:
            scratch = tempfile.mkdtemp(prefix="runfleet-")
        self.journal.event(
            "fleet_header",
            jobs=self.jobs,
            tasks=len(tasks),
            seed=self.seed,
            task_names=names,
        )
        start = time.perf_counter()
        interrupted = False
        try:
            # jobs>1 forks even for one task: the forked path is what
            # enforces task_timeout and isolates crashes
            if self.jobs == 1:
                results, spawned, interrupted = self._run_inline(
                    tasks, scratch)
            else:
                results, spawned, interrupted = self._run_forked(
                    tasks, scratch)
            wall_s = time.perf_counter() - start
            self._merge_journals(tasks, results, scratch)
            stats = self._stats(results, wall_s, spawned,
                                min(self.jobs, len(tasks)))
            self.journal.run_end(
                engine="runfleet",
                fleet_stats=stats,
                phase_timers=self._aggregate_timers(tasks, results, scratch),
                wall_time_s=round(wall_s, 6),
            )
            return FleetReport(results=results, stats=stats,
                               interrupted=interrupted)
        finally:
            if scratch is not None:
                shutil.rmtree(scratch, ignore_errors=True)

    # ------------------------------------------------------------------
    def _task_journal_path(self, scratch: Optional[str], index: int) -> str:
        return os.path.join(scratch, f"task_{index:05d}.jsonl")

    def _context(self, task: FleetTask, index: int, attempt: int,
                 in_worker: bool, scratch: Optional[str]) -> TaskContext:
        journal: RunJournal = NullJournal()
        if scratch is not None:
            # mode "w": a retried attempt discards the dead attempt's
            # partial events, so the merged journal holds one clean record
            journal = RunJournal(self._task_journal_path(scratch, index))
        checkpoint_dir = None
        if self.checkpoint_root:
            checkpoint_dir = os.path.join(
                self.checkpoint_root, task.subdir or f"task_{index:03d}")
        return TaskContext(index=index, name=task.name,
                           fleet_seed=self.seed, attempt=attempt,
                           in_worker=in_worker, journal=journal,
                           checkpoint_dir=checkpoint_dir)

    # ------------------------------------------------------------------
    # jobs=1: the identical pipeline, no fork
    # ------------------------------------------------------------------
    def _run_inline(self, tasks, scratch):
        results = []
        for index, task in enumerate(tasks):
            ctx = self._context(task, index, attempt=0, in_worker=False,
                                scratch=scratch)
            start_wall = time.perf_counter()
            start_cpu = time.process_time()
            try:
                value = task.fn(ctx)
                results.append(TaskResult(
                    index=index, name=task.name, status="ok", value=value,
                    wall_s=time.perf_counter() - start_wall,
                    cpu_s=time.process_time() - start_cpu, worker=0))
            except KeyboardInterrupt:
                results.append(TaskResult(
                    index=index, name=task.name, status="cancelled",
                    error="interrupted"))
                results.extend(
                    TaskResult(index=i, name=t.name, status="cancelled",
                               error="interrupted")
                    for i, t in enumerate(tasks) if i > index)
                return results, 0, True
            except Exception as exc:  # deterministic → no retry
                import traceback as tb
                results.append(TaskResult(
                    index=index, name=task.name, status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=tb.format_exc(),
                    wall_s=time.perf_counter() - start_wall,
                    cpu_s=time.process_time() - start_cpu, worker=0))
            finally:
                ctx.journal.close()
        return results, 0, False

    # ------------------------------------------------------------------
    # jobs>1: forked pool
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int, tasks, scratch) -> _Worker:
        cmd_r, cmd_w = os.pipe()
        res_r, res_w = os.pipe()
        # buffered writes (the journal, verbose prints) must not be
        # duplicated into the child
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:  # child
            os.close(cmd_w)
            os.close(res_r)
            try:
                self._worker_loop(cmd_r, res_w, tasks, scratch)
                os._exit(0)
            except BaseException:
                os._exit(1)
        os.close(cmd_r)
        os.close(res_w)
        return _Worker(worker_id, pid, cmd_w, res_r)

    def _worker_loop(self, cmd_r: int, res_w: int, tasks, scratch) -> None:
        # the parent orchestrates shutdown: on Ctrl-C the terminal signals
        # the whole process group, so workers must ignore SIGINT and wait
        # for the parent's SIGTERM instead of dying mid-write
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        while True:
            frame = _read_exact(cmd_r, _CMD.size)
            if not frame:
                return
            index, attempt = _CMD.unpack(frame)
            if index == _STOP:
                return
            task = tasks[index]
            ctx = self._context(task, index, attempt=attempt, in_worker=True,
                                scratch=scratch)
            start_cpu = time.process_time()
            envelope: Dict[str, Any]
            try:
                value = task.fn(ctx)
                envelope = {"status": "ok", "value": value}
            except Exception as exc:
                import traceback as tb
                envelope = {"status": "failed",
                            "error": f"{type(exc).__name__}: {exc}",
                            "traceback": tb.format_exc()}
            finally:
                ctx.journal.close()
            envelope["cpu_s"] = time.process_time() - start_cpu
            try:
                payload = pickle.dumps(envelope, pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                payload = pickle.dumps(
                    {"status": "failed",
                     "error": f"unpicklable task result: {exc}",
                     "traceback": "", "cpu_s": envelope["cpu_s"]},
                    pickle.HIGHEST_PROTOCOL)
            _write_all(res_w, _FRAME.pack(index, attempt, len(payload)))
            _write_all(res_w, payload)

    def _run_forked(self, tasks, scratch):
        pending: List[tuple] = [(i, 0) for i in range(len(tasks))]
        pending.reverse()  # pop() from the low-index end
        slots: Dict[int, Optional[TaskResult]] = {i: None
                                                  for i in range(len(tasks))}
        retries: Dict[int, int] = {}
        outstanding = len(tasks)
        next_worker_id = 0
        spawned = 0
        interrupted = False

        sel = selectors.DefaultSelector()
        workers: Dict[int, _Worker] = {}  # keyed by res_r fd

        def spawn_worker():
            nonlocal next_worker_id, spawned
            worker = self._spawn(next_worker_id, tasks, scratch)
            next_worker_id += 1
            spawned += 1
            workers[worker.res_r] = worker
            sel.register(worker.res_r, selectors.EVENT_READ, worker)
            return worker

        def assign(worker: _Worker) -> None:
            if not pending:
                return
            index, attempt = pending.pop()
            worker.task = index
            worker.attempt = attempt
            worker.started = time.perf_counter()
            try:
                _write_all(worker.cmd_w, _CMD.pack(index, attempt))
            except OSError:
                # worker died before it could take the task; requeue and
                # let the EOF path below reap + respawn
                pending.append((index, attempt))
                worker.task = None

        def finish(worker: _Worker, result: TaskResult) -> None:
            nonlocal outstanding
            result.name = tasks[result.index].name
            result.retries = retries.get(result.index, 0)
            slots[result.index] = result
            worker.task = None
            outstanding -= 1

        def reap(worker: _Worker) -> None:
            sel.unregister(worker.res_r)
            workers.pop(worker.res_r, None)
            worker.close()
            try:
                os.waitpid(worker.pid, 0)
            except ChildProcessError:
                pass

        def worker_died(worker: _Worker, reason: str) -> None:
            """A worker vanished (crash/kill/timeout): retry or fail its
            task on a *fresh* worker, then replace the dead one."""
            nonlocal outstanding
            index = worker.task
            if index is not None:
                count = retries.get(index, 0)
                if count < self.max_retries:
                    retries[index] = count + 1
                    pending.append((index, worker.attempt + 1))
                else:
                    slots[index] = TaskResult(
                        index=index, name=tasks[index].name, status="failed",
                        error=f"worker died ({reason}) after "
                              f"{count + 1} attempt(s)",
                        retries=count, worker=worker.id)
                    outstanding -= 1
                worker.task = None
            reap(worker)
            assign_all()

        def assign_all() -> None:
            while pending:
                idle = [w for w in workers.values() if w.task is None]
                if not idle:
                    if len(workers) < min(self.jobs, outstanding):
                        idle = [spawn_worker()]
                    else:
                        break
                assign(idle[0])

        try:
            for _ in range(min(self.jobs, len(tasks))):
                spawn_worker()
            assign_all()
            while outstanding > 0:
                timeout = None
                if self.task_timeout is not None:
                    now = time.perf_counter()
                    deadlines = [
                        worker.started + self.task_timeout - now
                        for worker in workers.values()
                        if worker.task is not None
                    ]
                    if deadlines:
                        timeout = max(0.0, min(deadlines))
                for key, _ in sel.select(timeout=timeout):
                    worker: _Worker = key.data
                    done = self._drain_worker(worker)
                    if done is None:      # EOF — the worker died
                        worker_died(worker, "worker process exited "
                                            "mid-task")
                        continue
                    for result in done:
                        finish(worker, result)
                    if done:
                        assign(worker)
                if self.task_timeout is not None:
                    now = time.perf_counter()
                    for worker in list(workers.values()):
                        if worker.task is not None and \
                                now - worker.started > self.task_timeout:
                            try:
                                os.kill(worker.pid, signal.SIGKILL)
                            except ProcessLookupError:
                                pass
                            worker_died(
                                worker,
                                f"task exceeded {self.task_timeout:g}s "
                                f"timeout")
        except KeyboardInterrupt:
            interrupted = True
        finally:
            self._shutdown(sel, workers)

        results = []
        for index, task in enumerate(tasks):
            result = slots[index]
            if result is None:
                result = TaskResult(index=index, name=task.name,
                                    status="cancelled",
                                    error="interrupted",
                                    retries=retries.get(index, 0))
            results.append(result)
        return results, spawned, interrupted

    def _drain_worker(self, worker: _Worker) -> Optional[List[TaskResult]]:
        """Read whatever the worker sent; None means EOF (worker death)."""
        try:
            chunk = os.read(worker.res_r, 1 << 20)
        except OSError as exc:
            if exc.errno == errno.EAGAIN:
                return []
            return None
        if not chunk:
            return None
        worker.buffer += chunk
        done: List[TaskResult] = []
        while len(worker.buffer) >= _FRAME.size:
            index, attempt, length = _FRAME.unpack(
                worker.buffer[:_FRAME.size])
            if len(worker.buffer) < _FRAME.size + length:
                break
            payload = worker.buffer[_FRAME.size:_FRAME.size + length]
            worker.buffer = worker.buffer[_FRAME.size + length:]
            try:
                envelope = pickle.loads(payload)
            except Exception as exc:
                envelope = {"status": "failed",
                            "error": f"undecodable task result: {exc}",
                            "traceback": "", "cpu_s": 0.0}
            done.append(TaskResult(
                index=index, name="", status=envelope["status"],
                value=envelope.get("value"),
                error=envelope.get("error", ""),
                traceback=envelope.get("traceback", ""),
                wall_s=time.perf_counter() - worker.started,
                cpu_s=float(envelope.get("cpu_s", 0.0)),
                worker=worker.id))
        return done

    def _shutdown(self, sel, workers: Dict[int, _Worker]) -> None:
        for worker in workers.values():
            try:
                _write_all(worker.cmd_w, _CMD.pack(_STOP, 0))
            except OSError:
                pass
            try:
                os.close(worker.cmd_w)
            except OSError:
                pass
        deadline = time.monotonic() + 5.0
        for worker in workers.values():
            remaining = max(0.0, deadline - time.monotonic())
            if not self._wait_worker(worker, remaining):
                for sig in (signal.SIGTERM, signal.SIGKILL):
                    try:
                        os.kill(worker.pid, sig)
                    except ProcessLookupError:
                        break
                    if self._wait_worker(worker, 2.0):
                        break
            try:
                sel.unregister(worker.res_r)
            except (KeyError, ValueError):
                pass
            try:
                os.close(worker.res_r)
            except OSError:
                pass
        sel.close()

    @staticmethod
    def _wait_worker(worker: _Worker, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while True:
            try:
                pid, _ = os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:
                return True
            if pid == worker.pid:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    # ------------------------------------------------------------------
    # Journal merge + stats
    # ------------------------------------------------------------------
    def _merge_journals(self, tasks, results, scratch) -> None:
        if scratch is None:
            return
        for result in results:
            task = tasks[result.index]
            for attempt in range(result.retries):
                self.journal.event(
                    "task_retry", task=result.index, name=task.name,
                    attempt=attempt,
                    reason="worker death or timeout — retried on a fresh "
                           "worker")
            self.journal.event(
                "task_header",
                task=result.index,
                name=task.name,
                status=result.status,
                retries=result.retries,
                worker=result.worker,
                wall_time_s=round(result.wall_s, 6),
                cpu_time_s=round(result.cpu_s, 6),
                **task.header,
            )
            if result.status == "failed" and result.error:
                self.journal.event("task_error", task=result.index,
                                   name=task.name, error=result.error)
            path = self._task_journal_path(scratch, result.index)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    self.journal.append_lines(handle)

    def _aggregate_timers(self, tasks, results, scratch) -> Dict[str, Dict]:
        """Sum each task journal's ``run_end`` phase timers across tasks."""
        if scratch is None:
            return {}
        import json

        totals: Dict[str, float] = {}
        calls: Dict[str, int] = {}
        for result in results:
            path = self._task_journal_path(scratch, result.index)
            if not os.path.exists(path):
                continue
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue
                    if event.get("event") != "run_end":
                        continue
                    for name, info in (event.get("phase_timers")
                                       or {}).items():
                        totals[name] = totals.get(name, 0.0) \
                            + float(info.get("total_s", 0.0))
                        calls[name] = calls.get(name, 0) \
                            + int(info.get("calls", 0))
        return {name: {"total_s": round(totals[name], 6),
                       "calls": calls[name]}
                for name in sorted(totals)}

    def _stats(self, results, wall_s, spawned, pool_size) -> Dict[str, Any]:
        completed = sum(1 for r in results if r.status == "ok")
        failed = sum(1 for r in results if r.status == "failed")
        cancelled = sum(1 for r in results if r.status == "cancelled")
        retries = sum(r.retries for r in results)
        busy_s = sum(r.wall_s for r in results)
        cpu_s = sum(r.cpu_s for r in results)
        pool = max(1, pool_size)
        return {
            "jobs": self.jobs,
            "tasks": len(results),
            "completed": completed,
            "failed": failed,
            "cancelled": cancelled,
            "retries": retries,
            "workers_spawned": spawned,
            "wall_s": round(wall_s, 6),
            "task_wall_s": round(busy_s, 6),
            "task_cpu_s": round(cpu_s, 6),
            # how much of the pool's capacity did useful task work
            "utilization": round(busy_s / (pool * wall_s), 4)
            if wall_s > 0 else 0.0,
            # sequential-equivalent wall time / fleet wall time
            "parallel_speedup": round(busy_s / wall_s, 4)
            if wall_s > 0 else 0.0,
        }
