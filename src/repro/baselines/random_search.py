"""Random search under a latency constraint — the sanity baseline.

Samples architectures uniformly, keeps those whose predicted latency
satisfies the target, and returns the feasible candidate with the best
quick-evaluation accuracy.  Any method that does not beat this is not
searching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.result import SearchResult, SearchTrajectory
from ..predictor.mlp import MLPPredictor
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import Architecture, SearchSpace

__all__ = ["RandomSearchConfig", "RandomSearch"]


@dataclass
class RandomSearchConfig:
    space: SearchSpace = field(default_factory=SearchSpace)
    target: float = 24.0
    num_samples: int = 1000
    seed: int = 0


class RandomSearch:
    """Constraint-filtered random sampling."""

    name = "random"

    def __init__(self, config: RandomSearchConfig, predictor: MLPPredictor,
                 oracle: Optional[AccuracyOracle] = None) -> None:
        self.config = config
        self.space = config.space
        self.predictor = predictor
        self.oracle = oracle or AccuracyOracle(self.space)
        self.rng = np.random.default_rng(config.seed)

    def search(self, verbose: bool = False) -> SearchResult:
        cfg = self.config
        trajectory = SearchTrajectory()
        best: Optional[Architecture] = None
        best_top1 = -np.inf
        # Sample and feasibility-score the whole population in one shot;
        # only the survivors pay the (per-architecture) quick evaluation.
        ops = self.space.sample_indices(cfg.num_samples, self.rng)
        preds = self.predictor.predict_population(ops)
        for i in np.nonzero(preds <= cfg.target)[0]:
            arch = Architecture(tuple(ops[i].tolist()))
            top1 = self.oracle.evaluate(arch, epochs=50).top1
            if top1 > best_top1:
                best, best_top1 = arch, top1
                trajectory.record(int(i), float(preds[i]), 0.0, -top1, 0.0, arch)
                if verbose:
                    print(f"[random] sample {i:5d} new best top-1 {top1:.2f}")
        if best is None:
            raise RuntimeError(
                f"no feasible architecture in {cfg.num_samples} samples for "
                f"target {cfg.target}"
            )
        return SearchResult(
            architecture=best,
            predicted_metric=self.predictor.predict_arch(best),
            target=cfg.target,
            final_lambda=0.0,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=cfg.num_samples,
            metric_name="latency_ms",
        )
