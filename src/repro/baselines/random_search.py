"""Random search under a latency constraint — the sanity baseline.

Samples architectures uniformly, keeps those whose predicted latency
satisfies the target, and returns the feasible candidate with the best
quick-evaluation accuracy.  Any method that does not beat this is not
searching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..archive.cache import EvalCache
from ..core.result import SearchResult, SearchTrajectory
from ..predictor.mlp import MLPPredictor
from ..proxy.accuracy_model import AccuracyOracle
from ..runtime.telemetry import NullJournal, RunJournal
from ..search_space.space import Architecture, SearchSpace

__all__ = ["RandomSearchConfig", "RandomSearch"]


@dataclass
class RandomSearchConfig:
    space: SearchSpace = field(default_factory=SearchSpace)
    target: float = 24.0
    num_samples: int = 1000
    seed: int = 0


class RandomSearch:
    """Constraint-filtered random sampling."""

    name = "random"

    def __init__(self, config: RandomSearchConfig, predictor: MLPPredictor,
                 oracle: Optional[AccuracyOracle] = None,
                 cache: Optional[EvalCache] = None) -> None:
        self.config = config
        self.space = config.space
        self.predictor = predictor
        self.oracle = oracle or AccuracyOracle(self.space)
        self.rng = np.random.default_rng(config.seed)
        if cache is not None and cache.predictor is not predictor:
            raise ValueError(
                "the EvalCache must wrap this engine's predictor")
        self.cache = cache

    # ------------------------------------------------------------------
    def _predict_arch(self, arch: Architecture) -> float:
        if self.cache is not None:
            return self.cache.predict_arch(arch)
        return self.predictor.predict_arch(arch)

    def _quick_top1(self, arch: Architecture) -> float:
        if self.cache is not None and self.cache.oracle is self.oracle:
            return self.cache.fitness(arch, epochs=50)
        return self.oracle.evaluate(arch, epochs=50).top1

    def search(self, verbose: bool = False, *,
               journal: Optional[RunJournal] = None) -> SearchResult:
        # One-shot vectorized sampling: no loop state worth checkpointing,
        # so this baseline gets telemetry only.
        cfg = self.config
        journal = journal if journal is not None else NullJournal()
        run_start = time.perf_counter()
        journal.run_header(engine=self.name, metric_name="latency_ms",
                           target=cfg.target, seed=cfg.seed,
                           num_samples=cfg.num_samples)
        trajectory = SearchTrajectory()
        best: Optional[Architecture] = None
        best_top1 = -np.inf
        # Sample and feasibility-score the whole population in one shot;
        # only the survivors pay the (per-architecture) quick evaluation.
        ops = self.space.sample_indices(cfg.num_samples, self.rng)
        preds = (self.cache.predict_population(ops)
                 if self.cache is not None
                 else self.predictor.predict_population(ops))
        for i in np.nonzero(preds <= cfg.target)[0]:
            arch = Architecture(tuple(ops[i].tolist()))
            top1 = self._quick_top1(arch)
            if top1 > best_top1:
                best, best_top1 = arch, top1
                trajectory.record(int(i), float(preds[i]), 0.0, -top1, 0.0, arch)
                journal.epoch(epoch=int(i),
                              predicted_metric=round(float(preds[i]), 6),
                              target=cfg.target, best_top1=round(top1, 4),
                              architecture=list(arch.op_indices))
                if verbose:
                    print(f"[random] sample {i:5d} new best top-1 {top1:.2f}")
        if best is None:
            raise RuntimeError(
                f"no feasible architecture in {cfg.num_samples} samples for "
                f"target {cfg.target}"
            )
        journal.run_end(
            final_predicted_metric=round(
                float(self._predict_arch(best)), 6),
            best_top1=round(best_top1, 4),
            architecture=list(best.op_indices),
            num_search_steps=cfg.num_samples,
            wall_time_s=round(time.perf_counter() - run_start, 6),
            **(self.cache.counters() if self.cache is not None else {}),
        )
        if self.cache is not None:
            self.cache.flush(engine=self.name, seed=cfg.seed)
        return SearchResult(
            architecture=best,
            predicted_metric=self._predict_arch(best),
            target=cfg.target,
            final_lambda=0.0,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=cfg.num_samples,
            metric_name="latency_ms",
        )
