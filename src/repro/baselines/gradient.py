"""Differentiable NAS baselines: DARTS, SNAS, FBNet, ProxylessNAS.

These are the methods LightNAS is compared against in Table 1/2 and the
λ-sweep motivation of Figure 3.  All four share the same skeleton — relax
the discrete choice per layer, descend a loss on the relaxation — and
differ in exactly two places, which the :class:`GradientNAS` base class
exposes as hooks:

* **the relaxation** (how α becomes per-layer operator weights, and how
  many paths that activates):

  - DARTS (Eq. 1): deterministic row-softmax ⇒ all K paths active;
  - SNAS: soft Gumbel-Softmax sample ⇒ all K paths active;
  - FBNet: soft Gumbel-Softmax sample ⇒ all K paths active;
  - ProxylessNAS: two sampled paths with renormalised weights ⇒ 2 paths.

* **the latency term**: DARTS/SNAS are hardware-agnostic; FBNet and
  ProxylessNAS add the *fixed-coefficient* penalty of Eq. (3),
  ``λ · LAT(α)``, which is precisely the hyper-parameter LightNAS replaces
  with a learned multiplier — running these baselines across a λ grid
  reproduces the trial-and-error sweep of §2.2 / Figure 3.

The search operates in surrogate mode (differentiable accuracy oracle) so
that full-space baseline sweeps are feasible on one CPU core; the multi-path
memory cost is still accounted through ``search_paths_per_step``, which the
Table-1 and ablation benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..core.gumbel import TemperatureSchedule
from ..core.result import SearchResult, SearchTrajectory
from ..predictor.mlp import MLPPredictor
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import Architecture, SearchSpace

__all__ = [
    "GradientNASConfig",
    "GradientNAS",
    "DARTSSearch",
    "SNASSearch",
    "FBNetSearch",
    "ProxylessSearch",
]


@dataclass
class GradientNASConfig:
    """Shared configuration of the gradient-based baselines."""

    space: SearchSpace = field(default_factory=SearchSpace)
    epochs: int = 90
    steps_per_epoch: int = 50
    alpha_lr: float = 1e-3
    alpha_weight_decay: float = 1e-3
    #: fixed trade-off coefficient λ of Eq. (3); ignored by DARTS/SNAS
    latency_lambda: float = 0.0
    tau_initial: float = 5.0
    tau_floor: float = 0.1
    seed: int = 0


class GradientNAS:
    """Skeleton of a differentiable architecture search baseline.

    Subclasses override :meth:`relax` (and set :attr:`name`,
    :attr:`paths_per_layer`, :attr:`uses_latency`).
    """

    name = "gradient-nas"
    paths_per_layer = 1
    uses_latency = False

    def __init__(
        self,
        config: GradientNASConfig,
        oracle: Optional[AccuracyOracle] = None,
        predictor: Optional[MLPPredictor] = None,
    ) -> None:
        self.config = config
        self.space = config.space
        self.rng = np.random.default_rng(config.seed)
        self.oracle = oracle or AccuracyOracle(self.space)
        self.predictor = predictor
        if self.uses_latency and config.latency_lambda > 0 and predictor is None:
            raise ValueError(f"{self.name} with λ>0 needs a latency predictor")
        self.schedule = TemperatureSchedule(
            config.tau_initial, config.tau_floor, config.epochs
        )

    # ------------------------------------------------------------------
    def relax(self, alpha: nn.Tensor, epoch: int) -> nn.Tensor:
        """Map α to per-layer operator weights (rows on the simplex)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _latency_tensor(self, weights: nn.Tensor) -> nn.Tensor:
        flat = nn.ops.reshape(weights, (1, weights.shape[0] * weights.shape[1]))
        return self.predictor.predict_tensor(flat)[0]

    def search(self, verbose: bool = False) -> SearchResult:
        """Run the baseline search; λ stays fixed throughout (Eq. 3)."""
        cfg = self.config
        alpha = nn.Parameter(self.space.uniform_alpha(), name="alpha")
        optimizer = nn.Adam([alpha], lr=cfg.alpha_lr,
                            weight_decay=cfg.alpha_weight_decay)
        trajectory = SearchTrajectory()
        steps = 0
        for epoch in range(cfg.epochs):
            for _ in range(cfg.steps_per_epoch):
                weights = self.relax(alpha, epoch)
                loss = self.oracle.differentiable_loss(weights)
                if self.uses_latency and cfg.latency_lambda > 0:
                    loss = loss + self._latency_tensor(weights) * cfg.latency_lambda
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                steps += 1
            arch = Architecture.from_alpha(alpha.data)
            predicted = (
                self.predictor.predict_arch(arch) if self.predictor is not None else 0.0
            )
            trajectory.record(epoch, predicted, cfg.latency_lambda, float(loss.data),
                              self.schedule.at(epoch), arch)
            if verbose:
                print(f"[{self.name}] epoch {epoch:3d} loss {float(loss.data):.4f}")

        arch = Architecture.from_alpha(alpha.data)
        return SearchResult(
            architecture=arch,
            predicted_metric=(
                self.predictor.predict_arch(arch) if self.predictor is not None else 0.0
            ),
            target=float("nan"),
            final_lambda=cfg.latency_lambda,
            trajectory=trajectory,
            search_paths_per_step=self.paths_per_layer * self.space.num_layers,
            num_search_steps=steps,
            metric_name="latency_ms" if self.uses_latency else "none",
        )


class DARTSSearch(GradientNAS):
    """DARTS (Liu et al., ICLR 2019): deterministic softmax relaxation.

    Hardware-agnostic and multi-path: every candidate of every layer is
    active in each step (Eq. 1), the memory bottleneck §3.3 addresses.
    """

    name = "darts"
    uses_latency = False

    def __init__(self, config: GradientNASConfig,
                 oracle: Optional[AccuracyOracle] = None,
                 predictor: Optional[MLPPredictor] = None) -> None:
        super().__init__(config, oracle, predictor)
        self.paths_per_layer = self.space.num_operators

    def relax(self, alpha: nn.Tensor, epoch: int) -> nn.Tensor:
        return F.softmax(alpha, axis=-1)


class SNASSearch(GradientNAS):
    """SNAS (Xie et al., ICLR 2019): soft Gumbel-Softmax samples.

    Stochastic but still multi-path — the soft sample keeps every
    candidate's output in the blend.
    """

    name = "snas"
    uses_latency = False

    def __init__(self, config: GradientNASConfig,
                 oracle: Optional[AccuracyOracle] = None,
                 predictor: Optional[MLPPredictor] = None) -> None:
        super().__init__(config, oracle, predictor)
        self.paths_per_layer = self.space.num_operators

    def relax(self, alpha: nn.Tensor, epoch: int) -> nn.Tensor:
        log_probs = F.log_softmax(alpha, axis=-1)
        noise = F.gumbel_noise(alpha.shape, self.rng)
        return F.gumbel_softmax(log_probs, tau=self.schedule.at(epoch), noise=noise)


class FBNetSearch(SNASSearch):
    """FBNet (Wu et al., CVPR 2019): SNAS relaxation + fixed-λ latency term.

    The paper's Figure-3 motivation runs exactly this engine over a grid of
    λ values to show the manual trial-and-error LightNAS eliminates.
    """

    name = "fbnet"
    uses_latency = True


class ProxylessSearch(GradientNAS):
    """ProxylessNAS (Cai et al., ICLR 2019): two-path binary gates.

    Each step samples two candidate paths per layer from the current
    distribution and renormalises their probabilities, so memory scales
    with 2 paths instead of K; the latency penalty uses fixed λ.
    """

    name = "proxylessnas"
    paths_per_layer = 2
    uses_latency = True

    def relax(self, alpha: nn.Tensor, epoch: int) -> nn.Tensor:
        probs = F.softmax(alpha, axis=-1)
        mask = np.zeros(alpha.shape)
        for row, p in enumerate(probs.data):
            chosen = self.rng.choice(self.space.num_operators, size=2, replace=False,
                                     p=p / p.sum())
            mask[row, chosen] = 1.0
        masked = probs * nn.Tensor(mask)
        return masked / nn.ops.sum_(masked, axis=-1, keepdims=True)
