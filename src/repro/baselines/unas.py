"""UNAS-style hybrid baseline (Vahdat et al., CVPR 2020 — Table 1/2's [10]).

UNAS combines differentiable architecture search with reinforcement
learning: the differentiable part handles the (reparameterisable) accuracy
objective, while a REINFORCE estimator handles objectives that need not be
differentiable — notably *measured* latency, so no predictor or LUT is
required.  This implementation keeps that division of labour:

* the accuracy term updates α through the Gumbel soft relaxation (as in
  SNAS/FBNet);
* the latency term updates α with a policy gradient: sample discrete
  architectures from softmax(α), *measure* them on the device, and push α
  by ``(measurement/T_norm) · ∇ log π`` with an exponential-moving-average
  baseline for variance reduction;
* the trade-off coefficient λ is fixed (UNAS, like FBNet/ProxylessNAS,
  must be re-run to hit a specific latency — the implicit cost LightNAS
  removes).

On-device measurement inside the loop is what made UNAS's 103 GPU hours
(Table 1) pricier than FBNet's per-run cost at similar step counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..core.gumbel import TemperatureSchedule
from ..core.result import SearchResult, SearchTrajectory
from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import Architecture, SearchSpace

__all__ = ["UNASConfig", "UNASSearch"]


@dataclass
class UNASConfig:
    """Hyper-parameters of the hybrid search."""

    space: SearchSpace = field(default_factory=SearchSpace)
    epochs: int = 60
    steps_per_epoch: int = 30
    alpha_lr: float = 1e-3
    alpha_weight_decay: float = 1e-3
    #: fixed trade-off coefficient on the normalised latency reward
    latency_lambda: float = 0.1
    #: latency normaliser (keeps the REINFORCE signal O(1))
    latency_scale_ms: float = 24.0
    #: discrete architectures measured per step for the policy gradient
    samples_per_step: int = 2
    baseline_momentum: float = 0.9
    tau_initial: float = 5.0
    tau_floor: float = 0.1
    seed: int = 0


class UNASSearch:
    """Differentiable accuracy + REINFORCE latency, fixed λ."""

    name = "unas"

    def __init__(self, config: UNASConfig, latency_model: LatencyModel,
                 oracle: Optional[AccuracyOracle] = None) -> None:
        self.config = config
        self.space = config.space
        self.latency_model = latency_model
        self.oracle = oracle or AccuracyOracle(self.space)
        self.rng = np.random.default_rng(config.seed)
        self.schedule = TemperatureSchedule(config.tau_initial, config.tau_floor,
                                            config.epochs)

    # ------------------------------------------------------------------
    def _policy_gradient(self, probs: np.ndarray, baseline: float
                         ) -> tuple[np.ndarray, float]:
        """REINFORCE gradient of the expected normalised latency wrt α."""
        cfg = self.config
        grad = np.zeros_like(probs)
        for _ in range(cfg.samples_per_step):
            choices = [int(self.rng.choice(self.space.num_operators, p=row))
                       for row in probs]
            arch = Architecture(tuple(choices))
            cost = self.latency_model.measure(arch, self.rng) / cfg.latency_scale_ms
            advantage = cost - baseline
            baseline = (cfg.baseline_momentum * baseline
                        + (1 - cfg.baseline_momentum) * cost)
            for layer, k in enumerate(choices):
                # ∇_α log π = one_hot(k) − softmax(α) per layer
                grad[layer] -= probs[layer] * advantage
                grad[layer, k] += advantage
        return grad / cfg.samples_per_step, baseline

    def search(self, verbose: bool = False) -> SearchResult:
        cfg = self.config
        alpha = nn.Parameter(self.space.uniform_alpha(), name="alpha")
        optimizer = nn.Adam([alpha], lr=cfg.alpha_lr,
                            weight_decay=cfg.alpha_weight_decay)
        trajectory = SearchTrajectory()
        baseline = 1.0
        steps = 0
        measured_samples = 0

        for epoch in range(cfg.epochs):
            tau = self.schedule.at(epoch)
            for _ in range(cfg.steps_per_epoch):
                # differentiable accuracy term through the soft relaxation
                log_probs = F.log_softmax(alpha, axis=-1)
                noise = F.gumbel_noise(alpha.shape, self.rng)
                weights = F.gumbel_softmax(log_probs, tau=tau, noise=noise)
                loss = self.oracle.differentiable_loss(weights)
                optimizer.zero_grad()
                loss.backward()
                # REINFORCE latency term added directly to the α gradient
                probs = F.softmax(alpha, axis=-1).data
                pg, baseline = self._policy_gradient(probs, baseline)
                measured_samples += cfg.samples_per_step
                alpha.grad = alpha.grad + cfg.latency_lambda * pg
                optimizer.step()
                steps += 1

            arch = Architecture.from_alpha(alpha.data)
            trajectory.record(epoch, self.latency_model.latency_ms(arch),
                              cfg.latency_lambda, float(loss.data), tau, arch)
            if verbose:
                print(f"[unas] epoch {epoch:3d} "
                      f"lat {trajectory.predicted_metric[-1]:.2f} ms")

        arch = Architecture.from_alpha(alpha.data)
        return SearchResult(
            architecture=arch,
            predicted_metric=self.latency_model.latency_ms(arch),
            target=float("nan"),
            final_lambda=cfg.latency_lambda,
            trajectory=trajectory,
            search_paths_per_step=(
                self.space.num_layers * self.space.num_operators),
            num_search_steps=steps,
            metric_name="latency_ms",
        )
