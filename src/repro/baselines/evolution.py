"""OFA-style constrained evolutionary search (regularized evolution).

Once-for-All (Cai et al., ICLR 2020) amortises a single expensive supernet
training and then runs, per deployment target, an evolutionary search over
sub-networks guided by accuracy/latency predictors.  This module implements
that *specialisation* stage as regularized evolution (Real et al., AAAI
2019 — the paper's reference [7]):

* a population of architectures that satisfy the latency constraint,
* tournament parent selection, single-operator mutation,
* oldest individual dies (ageing), fitness from the accuracy oracle.

The latency constraint is enforced by rejection: mutants whose *predicted*
latency exceeds the target are discarded, mirroring OFA's predictor-guided
feasibility filtering.  Like OFA (and unlike LightNAS) this can target any
T in one specialisation run — but only after the huge amortised supernet
cost that Table 1 reports (1,275 GPU hours).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..archive.cache import EvalCache
from ..core.result import SearchResult, SearchTrajectory
from ..predictor.mlp import MLPPredictor
from ..proxy.accuracy_model import AccuracyOracle
from ..runtime.checkpoint import (
    CheckpointError,
    CheckpointManager,
    fingerprint_of,
    load_checkpoint,
    resolve_checkpoint,
    restore_rng,
    rng_state_json,
)
from ..runtime.telemetry import NullJournal, RunJournal
from ..search_space.space import Architecture, SearchSpace

__all__ = ["EvolutionConfig", "EvolutionSearch"]


@dataclass
class EvolutionConfig:
    """Regularized-evolution hyper-parameters."""

    space: SearchSpace = field(default_factory=SearchSpace)
    target: float = 24.0
    population_size: int = 64
    tournament_size: int = 16
    cycles: int = 400
    seed: int = 0
    #: give up after this many consecutive infeasible mutants per cycle
    max_rejects: int = 200

    def __post_init__(self) -> None:
        if self.tournament_size > self.population_size:
            raise ValueError("tournament cannot exceed the population")
        if self.population_size < 2:
            raise ValueError("population must hold at least 2 individuals")


class EvolutionSearch:
    """Latency-constrained regularized evolution over the search space."""

    name = "ofa-evolution"

    def __init__(
        self,
        config: EvolutionConfig,
        predictor: MLPPredictor,
        oracle: Optional[AccuracyOracle] = None,
        cache: Optional[EvalCache] = None,
    ) -> None:
        self.config = config
        self.space = config.space
        self.predictor = predictor
        self.oracle = oracle or AccuracyOracle(self.space)
        self.rng = np.random.default_rng(config.seed)
        if cache is not None and cache.predictor is not predictor:
            raise ValueError(
                "the EvalCache must wrap this engine's predictor")
        self.cache = cache

    # ------------------------------------------------------------------
    def _predict_arch(self, arch: Architecture) -> float:
        if self.cache is not None:
            return self.cache.predict_arch(arch)
        return self.predictor.predict_arch(arch)

    def _predict_population(self, ops: np.ndarray) -> np.ndarray:
        if self.cache is not None:
            return self.cache.predict_population(ops)
        return self.predictor.predict_population(ops)

    def _feasible(self, arch: Architecture) -> bool:
        return self._predict_arch(arch) <= self.config.target

    def _fitness(self, arch: Architecture) -> float:
        if self.cache is not None and self.cache.oracle is self.oracle:
            return self.cache.fitness(arch)
        return self.oracle.evaluate(arch).top1

    def _random_feasible(self) -> Architecture:
        for _ in range(self.config.max_rejects):
            arch = self.space.sample(self.rng)
            if self._feasible(arch):
                return arch
        # Fall back to thinning a random architecture with skips until it fits.
        arch = self.space.sample(self.rng)
        indices = list(arch.op_indices)
        order = self.rng.permutation(len(indices))
        for layer in order:
            if self._feasible(Architecture(tuple(indices))):
                break
            indices[layer] = self.space.skip_index
        return Architecture(tuple(indices))

    def _random_feasible_population(self, count: int) -> List[Architecture]:
        """Draw ``count`` feasible individuals by batched rejection.

        Candidates are sampled and feasibility-scored a population at a
        time (one predictor forward per batch) instead of one predictor
        call per rejection sample.
        """
        feasible: List[Architecture] = []
        budget = self.config.max_rejects * count
        drawn = 0
        batch = max(2 * count, 32)
        while len(feasible) < count and drawn < budget:
            ops = self.space.sample_indices(batch, self.rng)
            drawn += batch
            preds = self._predict_population(ops)
            for row in ops[preds <= self.config.target].tolist():
                feasible.append(Architecture(tuple(row)))
                if len(feasible) == count:
                    break
        while len(feasible) < count:  # rejection exhausted: thin with skips
            feasible.append(self._random_feasible())
        return feasible

    def _mutate_feasible(self, parent: Architecture) -> Optional[Architecture]:
        """First feasible single-op mutant of ``parent``, scored in batches."""
        parent_ops = np.asarray(parent.op_indices, dtype=np.int64)
        num_ops = self.space.num_operators
        remaining = self.config.max_rejects
        while remaining > 0:
            batch = min(remaining, 64)
            remaining -= batch
            candidates = np.tile(parent_ops, (batch, 1))
            layers = self.rng.integers(len(parent_ops), size=batch)
            # uniform over the K−1 operators that differ from the parent's
            shifts = self.rng.integers(1, num_ops, size=batch)
            candidates[np.arange(batch), layers] = (
                (candidates[np.arange(batch), layers] + shifts) % num_ops
            )
            preds = self._predict_population(candidates)
            hits = np.nonzero(preds <= self.config.target)[0]
            if hits.size:
                return Architecture(tuple(candidates[hits[0]].tolist()))
        return None

    # ------------------------------------------------------------------
    def _fingerprint(self) -> str:
        cfg = self.config
        return fingerprint_of(
            "evolution", cfg.target, cfg.population_size, cfg.tournament_size,
            cfg.cycles, cfg.seed, cfg.max_rejects, self.space.num_layers,
            self.space.num_operators, repr(self.space.macro),
        )

    def _capture_state(self, cycle: int, population, best_arch, best_fit,
                       evaluations: int, trajectory: SearchTrajectory
                       ) -> Tuple[Dict, Dict]:
        meta = {
            "kind": "evolution",
            "fingerprint": self._fingerprint(),
            "next_cycle": cycle + 1,
            "evaluations": evaluations,
            "best_fitness": best_fit,
            "rng_state": rng_state_json(self.rng),
        }
        arrays = {
            "population_ops": np.array([a.op_indices for a, _ in population],
                                       dtype=np.int64),
            "population_fitness": np.array([f for _, f in population],
                                           dtype=np.float64),
            "best_ops": np.array(best_arch.op_indices, dtype=np.int64),
        }
        arrays.update(trajectory.as_arrays())
        return meta, arrays

    # ------------------------------------------------------------------
    def search(
        self,
        verbose: bool = False,
        *,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 100,
        resume_from: Optional[str] = None,
        journal: Optional[RunJournal] = None,
    ) -> SearchResult:
        cfg = self.config
        journal = journal if journal is not None else NullJournal()
        run_start = time.perf_counter()
        population: Deque[Tuple[Architecture, float]] = deque()
        start_cycle = 0
        if resume_from is not None:
            path = resolve_checkpoint(resume_from)
            meta, arrays = load_checkpoint(path)
            if meta.get("kind") != "evolution":
                raise CheckpointError(
                    f"checkpoint {path!r} belongs to engine "
                    f"{meta.get('kind')!r}, not to evolution search"
                )
            if meta.get("fingerprint") != self._fingerprint():
                raise CheckpointError(
                    f"checkpoint {path!r} was written by a run with a "
                    f"different configuration; resume with the original one"
                )
            for row, fit in zip(arrays["population_ops"].tolist(),
                                arrays["population_fitness"]):
                population.append((Architecture(tuple(row)), float(fit)))
            best_arch = Architecture(tuple(arrays["best_ops"].tolist()))
            best_fit = float(meta["best_fitness"])
            evaluations = int(meta["evaluations"])
            start_cycle = int(meta["next_cycle"])
            restore_rng(self.rng, meta["rng_state"])
            trajectory = SearchTrajectory.from_arrays(arrays)
        else:
            for arch in self._random_feasible_population(cfg.population_size):
                population.append((arch, self._fitness(arch)))
            trajectory = SearchTrajectory()
            best_arch, best_fit = max(population, key=lambda item: item[1])
            evaluations = cfg.population_size
        manager = (CheckpointManager(checkpoint_dir, every=checkpoint_every)
                   if checkpoint_dir else None)
        journal.run_header(
            engine=self.name, metric_name="latency_ms", target=cfg.target,
            seed=cfg.seed, cycles=cfg.cycles,
            population_size=cfg.population_size, start_epoch=start_cycle,
            fingerprint=self._fingerprint(),
        )

        for cycle in range(start_cycle, cfg.cycles):
            contestants = [
                population[i]
                for i in self.rng.choice(len(population), size=cfg.tournament_size,
                                         replace=False)
            ]
            parent = max(contestants, key=lambda item: item[1])[0]
            child = self._mutate_feasible(parent)
            if child is None:
                continue
            fit = self._fitness(child)
            evaluations += 1
            population.append((child, fit))
            population.popleft()  # ageing: the oldest dies
            if fit > best_fit:
                best_arch, best_fit = child, fit
            if cycle % 25 == 0:
                predicted_best = self._predict_arch(best_arch)
                trajectory.record(cycle, predicted_best,
                                  0.0, -best_fit, 0.0, best_arch)
                journal.epoch(epoch=cycle,
                              predicted_metric=round(float(predicted_best), 6),
                              target=cfg.target,
                              best_top1=round(best_fit, 4),
                              architecture=list(best_arch.op_indices))
                if verbose:
                    print(f"[{self.name}] cycle {cycle:4d} best top-1 {best_fit:.2f}")
            if manager is not None and manager.due(cycle):
                meta, arrays = self._capture_state(cycle, population, best_arch,
                                                   best_fit, evaluations,
                                                   trajectory)
                path = manager.save(cycle, meta, arrays)
                journal.event("checkpoint", epoch=cycle, path=path)

        journal.run_end(
            final_predicted_metric=round(
                float(self._predict_arch(best_arch)), 6),
            best_top1=round(best_fit, 4),
            architecture=list(best_arch.op_indices),
            num_search_steps=evaluations,
            wall_time_s=round(time.perf_counter() - run_start, 6),
            **(self.cache.counters() if self.cache is not None else {}),
        )
        if self.cache is not None:
            self.cache.flush(engine=self.name, seed=cfg.seed,
                             config_fingerprint=self._fingerprint())
        return SearchResult(
            architecture=best_arch,
            predicted_metric=self._predict_arch(best_arch),
            target=cfg.target,
            final_lambda=0.0,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=evaluations,
            metric_name="latency_ms",
        )
