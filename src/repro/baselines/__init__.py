"""`repro.baselines` — the methods LightNAS is compared against.

Gradient-based: DARTS, SNAS, FBNet (fixed-λ latency penalty, the Figure-3
sweep), ProxylessNAS (two-path binary gates).  Search-based: OFA-style
constrained regularized evolution, MnasNet-style REINFORCE, random search.
Plus the MobileNetV2 width/resolution scaling baseline of Figure 9.
"""

from .campaign import multi_seed_campaign, stability_summary
from .evolution import EvolutionConfig, EvolutionSearch
from .gradient import (
    DARTSSearch,
    FBNetSearch,
    GradientNAS,
    GradientNASConfig,
    ProxylessSearch,
    SNASSearch,
)
from .random_search import RandomSearch, RandomSearchConfig
from .rl_search import RLSearch, RLSearchConfig
from .scaling import ScaledModel, ScalingBaseline
from .unas import UNASConfig, UNASSearch

__all__ = [
    "GradientNASConfig",
    "GradientNAS",
    "DARTSSearch",
    "SNASSearch",
    "FBNetSearch",
    "ProxylessSearch",
    "EvolutionConfig",
    "EvolutionSearch",
    "RLSearchConfig",
    "RLSearch",
    "RandomSearchConfig",
    "RandomSearch",
    "ScalingBaseline",
    "ScaledModel",
    "UNASConfig",
    "UNASSearch",
    "multi_seed_campaign",
    "stability_summary",
]
