"""Model-scaling baseline (Figure 9): MobileNetV2 width/resolution scaling.

The alternative to NAS for hitting a latency target is to take a fixed
reference network — MobileNetV2, i.e. the uniform ``mbconv_k3_e6`` stack in
our space — and scale its width multiplier and/or input resolution until it
fits the budget.  :class:`ScalingBaseline` binary-searches the scale factor
against the simulated device and evaluates the scaled model with the
accuracy oracle, producing the scaling curves that LightNets dominate in
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Tuple

import numpy as np

from ..hardware.device import DeviceProfile, XAVIER_MAXN
from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.macro import MacroConfig
from ..search_space.space import Architecture, SearchSpace

__all__ = ["ScaledModel", "ScalingBaseline"]


@dataclass(frozen=True)
class ScaledModel:
    """One point on a scaling curve."""

    width_mult: float
    resolution: int
    latency_ms: float
    top1: float
    top5: float


class ScalingBaseline:
    """Width/resolution scaling of the uniform MobileNetV2-like network."""

    name = "mobilenetv2-scaling"

    #: operator index of ``mbconv_k3_e6`` in the canonical vocabulary —
    #: MobileNetV2 stacks exactly this block.
    UNIFORM_OP = 1

    def __init__(self, base_macro: Optional[MacroConfig] = None,
                 device: DeviceProfile = XAVIER_MAXN, seed: int = 0) -> None:
        self.base_macro = base_macro or MacroConfig.lightnas()
        self.device = device
        self.seed = seed

    # ------------------------------------------------------------------
    def _evaluate_scale(self, width_mult: float, resolution: int,
                        epochs: int = 360) -> ScaledModel:
        macro = self.base_macro.scaled(width_mult=width_mult, resolution=resolution)
        space = SearchSpace(macro)
        arch = Architecture(tuple([self.UNIFORM_OP] * space.num_layers))
        latency = LatencyModel(space, self.device).latency_ms(arch)
        oracle = AccuracyOracle(space, width_mult=width_mult, resolution=resolution,
                                seed=self.seed)
        result = oracle.evaluate(arch, epochs=epochs)
        return ScaledModel(width_mult, resolution, latency, result.top1, result.top5)

    def reference(self, epochs: int = 360) -> ScaledModel:
        """The unscaled MobileNetV2 analogue (Table 2's manual baseline)."""
        return self._evaluate_scale(1.0, self.base_macro.input_resolution,
                                    epochs=epochs)

    # ------------------------------------------------------------------
    def fit_width_to_latency(self, target_ms: float, epochs: int = 360,
                             tolerance: float = 0.05) -> ScaledModel:
        """Binary-search the width multiplier to meet a latency target."""
        low, high = 0.25, 2.5
        resolution = self.base_macro.input_resolution
        for _ in range(30):
            mid = 0.5 * (low + high)
            latency = self._evaluate_scale(mid, resolution, epochs).latency_ms
            if abs(latency - target_ms) <= tolerance:
                break
            if latency > target_ms:
                high = mid
            else:
                low = mid
        return self._evaluate_scale(0.5 * (low + high), resolution, epochs)

    def fit_resolution_to_latency(self, target_ms: float,
                                  epochs: int = 360) -> ScaledModel:
        """Pick the input resolution (multiple of 32) closest to the target."""
        candidates = [r for r in range(96, 321, 32)]
        best: Optional[ScaledModel] = None
        for resolution in candidates:
            model = self._evaluate_scale(1.0, resolution, epochs)
            if model.latency_ms <= target_ms and (
                best is None or model.top1 > best.top1
            ):
                best = model
        return best or self._evaluate_scale(1.0, candidates[0], epochs)

    # ------------------------------------------------------------------
    def width_curve(self, multipliers: Tuple[float, ...] = (0.5, 0.75, 1.0, 1.25, 1.4),
                    epochs: int = 50) -> List[ScaledModel]:
        """The width-scaling series of Figure 9 (50-epoch quick protocol)."""
        return [
            self._evaluate_scale(m, self.base_macro.input_resolution, epochs)
            for m in multipliers
        ]

    def resolution_curve(self, resolutions: Tuple[int, ...] = (128, 160, 192, 224),
                         epochs: int = 50) -> List[ScaledModel]:
        """The resolution-scaling series of Figure 9."""
        return [self._evaluate_scale(1.0, r, epochs) for r in resolutions]
