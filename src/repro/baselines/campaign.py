"""Multi-seed search campaigns over the :class:`RunFleet` executor.

Fig. 7 of the paper reports search *stability*: the same constrained
search repeated under different seeds should land on (nearly) the same
architecture.  Measuring that takes a grid of independent runs — exactly
the embarrassingly-parallel shape the run-fleet executor fans out.

:func:`multi_seed_campaign` is engine-agnostic: any engine constructed by
``engine_factory(seed)`` whose ``search`` accepts a ``journal`` keyword
(all the baselines and LightNAS itself qualify) can be campaigned.  The
factory runs in the *parent*, so expensive shared state captured by the
factory's closure (fitted predictors, cost tables) is built once and
inherited copy-on-write by every worker; only the per-seed
:class:`~repro.core.lightnas.SearchResult` travels back.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..runtime.parallel import FleetTask, RunFleet

__all__ = ["multi_seed_campaign", "stability_summary"]


def multi_seed_campaign(engine_factory: Callable[[int], Any],
                        seeds: Sequence[int],
                        *,
                        fleet: Optional[RunFleet] = None,
                        header: Optional[Dict[str, Any]] = None) -> List:
    """Run ``engine_factory(seed).search()`` once per seed, in seed order.

    With a ``fleet`` the seeds fan across its workers — bit-identical to
    the sequential run because each engine is seeded independently and no
    state crosses seeds.  Results come back in ``seeds`` order regardless
    of completion order; any failed seed raises a
    :class:`~repro.runtime.parallel.TaskFailure` naming it.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("seeds must name at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError("duplicate seeds in campaign")

    def make_task(seed: int) -> FleetTask:
        def fn(ctx):
            engine = engine_factory(seed)
            return engine.search(journal=ctx.journal)

        return FleetTask(name=f"seed_{seed}", fn=fn,
                         subdir=f"seed_{seed}",
                         header={"seed": seed, **(header or {})})

    tasks = [make_task(seed) for seed in seeds]
    if fleet is None:
        fleet = RunFleet(jobs=1, seed=min(seeds))
    return fleet.run(tasks).values()


def stability_summary(results: Sequence, target: float) -> Dict[str, Any]:
    """Digest one target's multi-seed results into Fig.-7-style numbers."""
    if not results:
        raise ValueError("no results to summarise")
    finals = np.asarray([float(r.predicted_metric) for r in results],
                        dtype=np.float64)
    archs = {tuple(r.architecture.op_indices) for r in results}
    return {
        "target": float(target),
        "seeds": len(results),
        "mean": float(finals.mean()),
        "std": float(finals.std()),
        "min": float(finals.min()),
        "max": float(finals.max()),
        "worst_abs_err": float(np.abs(finals - target).max()),
        "distinct_architectures": len(archs),
    }
