"""MnasNet-style reinforcement-learning architecture search.

MnasNet (Tan et al., CVPR 2019) trains an RNN controller with REINFORCE on
the latency-aware reward ``ACC(m) · [LAT(m)/T]^w`` and evaluates each
sampled architecture by training it — the source of its 40,000-GPU-hour
cost in Table 1.  We keep the essential algorithm with a factorised
per-layer categorical policy (the controller state the search space actually
needs) and the oracle's quick-evaluation protocol as the per-sample reward,
with on-device latency *measurements* (not predictions) per sample, exactly
the expensive loop the paper contrasts against.

The exponent ``w = -0.07`` follows MnasNet's hard-constraint variant: the
penalty applies only when latency exceeds the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.result import SearchResult, SearchTrajectory
from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..search_space.space import Architecture, SearchSpace

__all__ = ["RLSearchConfig", "RLSearch"]


@dataclass
class RLSearchConfig:
    """REINFORCE controller hyper-parameters."""

    space: SearchSpace = field(default_factory=SearchSpace)
    target: float = 24.0
    iterations: int = 600
    batch_archs: int = 8
    policy_lr: float = 0.15
    reward_exponent: float = -0.07
    baseline_momentum: float = 0.95
    seed: int = 0


class RLSearch:
    """Factorised-policy REINFORCE with the MnasNet reward."""

    name = "mnasnet-rl"

    def __init__(
        self,
        config: RLSearchConfig,
        latency_model: LatencyModel,
        oracle: Optional[AccuracyOracle] = None,
    ) -> None:
        self.config = config
        self.space = config.space
        self.latency_model = latency_model
        self.oracle = oracle or AccuracyOracle(self.space)
        self.rng = np.random.default_rng(config.seed)

    # ------------------------------------------------------------------
    def _latency_penalty(self, top1: float, latency: float) -> float:
        """MnasNet hard-constraint reward: penalise only above the target."""
        if latency <= self.config.target:
            return top1
        return top1 * (latency / self.config.target) ** self.config.reward_exponent

    def _reward(self, arch: Architecture) -> float:
        """MnasNet reward: quick-eval accuracy × latency penalty."""
        top1 = self.oracle.evaluate(arch, epochs=50).top1 / 100.0
        latency = self.latency_model.measure(arch, self.rng)
        return self._latency_penalty(top1, latency)

    def _sample_batch(self, probs: np.ndarray, count: int) -> np.ndarray:
        """Sample ``count`` architectures from the factorised policy.

        Inverse-CDF sampling over one ``(count, L)`` uniform block replaces
        ``count × L`` sequential ``rng.choice`` calls.
        """
        cdf = probs.cumsum(axis=1)
        u = self.rng.random((count, probs.shape[0]))
        ops = (u[:, :, None] > cdf[None, :, :]).sum(axis=2)
        return np.minimum(ops, probs.shape[1] - 1)

    def search(self, verbose: bool = False) -> SearchResult:
        cfg = self.config
        logits = np.zeros((self.space.num_layers, self.space.num_operators))
        baseline = 0.0
        trajectory = SearchTrajectory()
        best_arch: Optional[Architecture] = None
        best_reward = -np.inf
        evaluations = 0

        for iteration in range(cfg.iterations):
            probs = np.exp(logits - logits.max(axis=1, keepdims=True))
            probs /= probs.sum(axis=1, keepdims=True)
            grad = np.zeros_like(logits)
            batch_ops = self._sample_batch(probs, cfg.batch_archs)
            # One on-device measurement sweep for the whole batch; only the
            # accuracy oracle (a per-network training run) stays per-arch.
            latencies = self.latency_model.measure_many(batch_ops, self.rng)
            for choices, latency in zip(batch_ops.tolist(), latencies):
                arch = Architecture(tuple(choices))
                top1 = self.oracle.evaluate(arch, epochs=50).top1 / 100.0
                reward = self._latency_penalty(top1, float(latency))
                evaluations += 1
                if reward > best_reward:
                    best_arch, best_reward = arch, reward
                advantage = reward - baseline
                baseline = (
                    cfg.baseline_momentum * baseline
                    + (1 - cfg.baseline_momentum) * reward
                )
                # ∇ log π for a factorised categorical policy
                grad -= probs * advantage
                grad[np.arange(len(choices)), choices] += advantage
            logits += cfg.policy_lr * grad / cfg.batch_archs
            if iteration % 25 == 0:
                current = Architecture(tuple(int(i) for i in logits.argmax(axis=1)))
                trajectory.record(
                    iteration, self.latency_model.latency_ms(current), 0.0,
                    -best_reward, 0.0, current,
                )
                if verbose:
                    print(f"[{self.name}] iter {iteration:4d} best reward {best_reward:.4f}")

        assert best_arch is not None
        return SearchResult(
            architecture=best_arch,
            predicted_metric=self.latency_model.latency_ms(best_arch),
            target=cfg.target,
            final_lambda=0.0,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=evaluations,
            metric_name="latency_ms",
        )
