"""MnasNet-style reinforcement-learning architecture search.

MnasNet (Tan et al., CVPR 2019) trains an RNN controller with REINFORCE on
the latency-aware reward ``ACC(m) · [LAT(m)/T]^w`` and evaluates each
sampled architecture by training it — the source of its 40,000-GPU-hour
cost in Table 1.  We keep the essential algorithm with a factorised
per-layer categorical policy (the controller state the search space actually
needs) and the oracle's quick-evaluation protocol as the per-sample reward,
with on-device latency *measurements* (not predictions) per sample, exactly
the expensive loop the paper contrasts against.

The exponent ``w = -0.07`` follows MnasNet's hard-constraint variant: the
penalty applies only when latency exceeds the target.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..archive.cache import EvalCache
from ..core.result import SearchResult, SearchTrajectory
from ..hardware.latency import LatencyModel
from ..proxy.accuracy_model import AccuracyOracle
from ..runtime.checkpoint import (
    CheckpointError,
    CheckpointManager,
    fingerprint_of,
    load_checkpoint,
    resolve_checkpoint,
    restore_rng,
    rng_state_json,
)
from ..runtime.telemetry import NullJournal, RunJournal
from ..search_space.space import Architecture, SearchSpace

__all__ = ["RLSearchConfig", "RLSearch"]


@dataclass
class RLSearchConfig:
    """REINFORCE controller hyper-parameters."""

    space: SearchSpace = field(default_factory=SearchSpace)
    target: float = 24.0
    iterations: int = 600
    batch_archs: int = 8
    policy_lr: float = 0.15
    reward_exponent: float = -0.07
    baseline_momentum: float = 0.95
    seed: int = 0


class RLSearch:
    """Factorised-policy REINFORCE with the MnasNet reward."""

    name = "mnasnet-rl"

    def __init__(
        self,
        config: RLSearchConfig,
        latency_model: LatencyModel,
        oracle: Optional[AccuracyOracle] = None,
        cache: Optional[EvalCache] = None,
    ) -> None:
        self.config = config
        self.space = config.space
        self.latency_model = latency_model
        self.oracle = oracle or AccuracyOracle(self.space)
        self.rng = np.random.default_rng(config.seed)
        # Only the deterministic oracle rewards are cacheable: the noisy
        # on-device latency measurements consume the seeded RNG stream and
        # must stay live for runs to stay reproducible.
        if cache is not None and cache.oracle is not self.oracle:
            raise ValueError("the EvalCache must wrap this engine's oracle")
        self.cache = cache

    def _quick_top1(self, arch: Architecture) -> float:
        if self.cache is not None:
            return self.cache.fitness(arch, epochs=50)
        return self.oracle.evaluate(arch, epochs=50).top1

    # ------------------------------------------------------------------
    def _latency_penalty(self, top1: float, latency: float) -> float:
        """MnasNet hard-constraint reward: penalise only above the target."""
        if latency <= self.config.target:
            return top1
        return top1 * (latency / self.config.target) ** self.config.reward_exponent

    def _reward(self, arch: Architecture) -> float:
        """MnasNet reward: quick-eval accuracy × latency penalty."""
        top1 = self._quick_top1(arch) / 100.0
        latency = self.latency_model.measure(arch, self.rng)
        return self._latency_penalty(top1, latency)

    def _sample_batch(self, probs: np.ndarray, count: int) -> np.ndarray:
        """Sample ``count`` architectures from the factorised policy.

        Inverse-CDF sampling over one ``(count, L)`` uniform block replaces
        ``count × L`` sequential ``rng.choice`` calls.
        """
        cdf = probs.cumsum(axis=1)
        u = self.rng.random((count, probs.shape[0]))
        ops = (u[:, :, None] > cdf[None, :, :]).sum(axis=2)
        return np.minimum(ops, probs.shape[1] - 1)

    def _fingerprint(self) -> str:
        cfg = self.config
        return fingerprint_of(
            "rl", cfg.target, cfg.iterations, cfg.batch_archs, cfg.policy_lr,
            cfg.reward_exponent, cfg.baseline_momentum, cfg.seed,
            self.space.num_layers, self.space.num_operators,
            repr(self.space.macro),
        )

    def _capture_state(self, iteration: int, logits: np.ndarray,
                       baseline: float, best_arch: Optional[Architecture],
                       best_reward: float, evaluations: int,
                       trajectory: SearchTrajectory) -> Tuple[Dict, Dict]:
        meta = {
            "kind": "rl",
            "fingerprint": self._fingerprint(),
            "next_iteration": iteration + 1,
            "evaluations": evaluations,
            "baseline": baseline,
            "best_reward": best_reward,
            "rng_state": rng_state_json(self.rng),
        }
        arrays = {
            "logits": logits.copy(),
            "best_ops": np.array(
                best_arch.op_indices if best_arch is not None else [],
                dtype=np.int64),
        }
        arrays.update(trajectory.as_arrays())
        return meta, arrays

    def search(
        self,
        verbose: bool = False,
        *,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 100,
        resume_from: Optional[str] = None,
        journal: Optional[RunJournal] = None,
    ) -> SearchResult:
        cfg = self.config
        journal = journal if journal is not None else NullJournal()
        run_start = time.perf_counter()
        logits = np.zeros((self.space.num_layers, self.space.num_operators))
        baseline = 0.0
        trajectory = SearchTrajectory()
        best_arch: Optional[Architecture] = None
        best_reward = -np.inf
        evaluations = 0
        start_iteration = 0
        if resume_from is not None:
            path = resolve_checkpoint(resume_from)
            meta, arrays = load_checkpoint(path)
            if meta.get("kind") != "rl":
                raise CheckpointError(
                    f"checkpoint {path!r} belongs to engine "
                    f"{meta.get('kind')!r}, not to RL search"
                )
            if meta.get("fingerprint") != self._fingerprint():
                raise CheckpointError(
                    f"checkpoint {path!r} was written by a run with a "
                    f"different configuration; resume with the original one"
                )
            logits = arrays["logits"].copy()
            baseline = float(meta["baseline"])
            best_reward = float(meta["best_reward"])
            if arrays["best_ops"].size:
                best_arch = Architecture(tuple(arrays["best_ops"].tolist()))
            evaluations = int(meta["evaluations"])
            start_iteration = int(meta["next_iteration"])
            restore_rng(self.rng, meta["rng_state"])
            trajectory = SearchTrajectory.from_arrays(arrays)
        manager = (CheckpointManager(checkpoint_dir, every=checkpoint_every)
                   if checkpoint_dir else None)
        journal.run_header(
            engine=self.name, metric_name="latency_ms", target=cfg.target,
            seed=cfg.seed, iterations=cfg.iterations,
            start_epoch=start_iteration, fingerprint=self._fingerprint(),
        )

        for iteration in range(start_iteration, cfg.iterations):
            probs = np.exp(logits - logits.max(axis=1, keepdims=True))
            probs /= probs.sum(axis=1, keepdims=True)
            grad = np.zeros_like(logits)
            batch_ops = self._sample_batch(probs, cfg.batch_archs)
            # One on-device measurement sweep for the whole batch; only the
            # accuracy oracle (a per-network training run) stays per-arch.
            latencies = self.latency_model.measure_many(batch_ops, self.rng)
            for choices, latency in zip(batch_ops.tolist(), latencies):
                arch = Architecture(tuple(choices))
                top1 = self._quick_top1(arch) / 100.0
                reward = self._latency_penalty(top1, float(latency))
                evaluations += 1
                if reward > best_reward:
                    best_arch, best_reward = arch, reward
                advantage = reward - baseline
                baseline = (
                    cfg.baseline_momentum * baseline
                    + (1 - cfg.baseline_momentum) * reward
                )
                # ∇ log π for a factorised categorical policy
                grad -= probs * advantage
                grad[np.arange(len(choices)), choices] += advantage
            logits += cfg.policy_lr * grad / cfg.batch_archs
            if iteration % 25 == 0:
                current = Architecture(tuple(int(i) for i in logits.argmax(axis=1)))
                current_latency = self.latency_model.latency_ms(current)
                trajectory.record(
                    iteration, current_latency, 0.0,
                    -best_reward, 0.0, current,
                )
                journal.epoch(epoch=iteration,
                              predicted_metric=round(float(current_latency), 6),
                              target=cfg.target,
                              best_reward=round(float(best_reward), 6),
                              architecture=list(current.op_indices))
                if verbose:
                    print(f"[{self.name}] iter {iteration:4d} best reward {best_reward:.4f}")
            if manager is not None and manager.due(iteration):
                meta, arrays = self._capture_state(
                    iteration, logits, baseline, best_arch, best_reward,
                    evaluations, trajectory)
                path = manager.save(iteration, meta, arrays)
                journal.event("checkpoint", epoch=iteration, path=path)

        assert best_arch is not None
        journal.run_end(
            final_predicted_metric=round(
                float(self.latency_model.latency_ms(best_arch)), 6),
            best_reward=round(float(best_reward), 6),
            architecture=list(best_arch.op_indices),
            num_search_steps=evaluations,
            wall_time_s=round(time.perf_counter() - run_start, 6),
            **(self.cache.counters() if self.cache is not None else {}),
        )
        if self.cache is not None:
            self.cache.flush(engine=self.name, seed=cfg.seed,
                             config_fingerprint=self._fingerprint())
        return SearchResult(
            architecture=best_arch,
            predicted_metric=self.latency_model.latency_ms(best_arch),
            target=cfg.target,
            final_lambda=0.0,
            trajectory=trajectory,
            search_paths_per_step=self.space.num_layers,
            num_search_steps=evaluations,
            metric_name="latency_ms",
        )
