"""LightNAS reproduction (Luo et al., DAC 2022).

A complete, from-scratch reproduction of "You Only Search Once: On
Lightweight Differentiable Architecture Search for Resource-Constrained
Embedded Platforms", including every substrate the paper depends on:

* :mod:`repro.nn` — numpy autodiff / NN engine (replaces PyTorch).
* :mod:`repro.search_space` — the layer-wise MobileNetV2 space (L=22, K=7).
* :mod:`repro.hardware` — simulated Nvidia Jetson AGX Xavier (latency,
  energy, FLOPs, LUT baseline).
* :mod:`repro.predictor` — the MLP latency/energy predictor (§3.2).
* :mod:`repro.proxy` — synthetic proxy task + ImageNet accuracy oracle.
* :mod:`repro.core` — LightNAS itself: single-path Gumbel search with a
  learned constraint multiplier λ (§3.3–3.4).
* :mod:`repro.baselines` — DARTS, SNAS, FBNet, ProxylessNAS, OFA-style
  evolution, MnasNet-style RL, random search, model scaling.
* :mod:`repro.eval` — stand-alone training, ImageNet-style evaluation,
  SSDLite detection transfer, search-cost accounting.
* :mod:`repro.runtime` — bit-for-bit checkpoint/resume and JSON-lines
  run telemetry for the search engines.
* :mod:`repro.archive` — persistent architecture archive, vectorized query
  engine, memoizing evaluation cache, and the batched ``repro serve`` API.

Quickstart
----------
>>> from repro import LightNAS, LightNASConfig
>>> result = LightNAS(LightNASConfig.tiny(latency_target_ms=24.0)).search()
>>> result.architecture  # doctest: +SKIP

The top-level names below are loaded lazily (PEP 562) so that importing
``repro`` stays cheap for users who only need one substrate.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "LightNAS": ("repro.core.lightnas", "LightNAS"),
    "LightNASConfig": ("repro.core.lightnas", "LightNASConfig"),
    "SearchResult": ("repro.core.result", "SearchResult"),
    "Architecture": ("repro.search_space.space", "Architecture"),
    "SearchSpace": ("repro.search_space.space", "SearchSpace"),
    "CheckpointError": ("repro.runtime.checkpoint", "CheckpointError"),
    "RunJournal": ("repro.runtime.telemetry", "RunJournal"),
    "ArchitectureArchive": ("repro.archive.store", "ArchitectureArchive"),
    "ArchiveError": ("repro.archive.store", "ArchiveError"),
    "EvalCache": ("repro.archive.cache", "EvalCache"),
}

__all__ = list(_LAZY_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


if TYPE_CHECKING:  # pragma: no cover - static typing only
    from .archive.cache import EvalCache
    from .archive.store import ArchitectureArchive, ArchiveError
    from .core.lightnas import LightNAS, LightNASConfig
    from .core.result import SearchResult
    from .runtime.checkpoint import CheckpointError
    from .runtime.telemetry import RunJournal
    from .search_space.space import Architecture, SearchSpace
