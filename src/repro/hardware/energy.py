"""Energy model and drifting energy measurements (Figure 8).

Per-inference energy is modelled as::

    E [mJ] = static_power · latency  +  e_mac · GMACs·batch  +  e_byte · GB·batch

Measurements are corrupted by white noise *and* a slow AR(1) temperature
drift — the paper notes that "the energy measurement inevitably suffers from
noises caused by the hardware temperature", and this drift is why the energy
predictor fit in Figure 8 (Left) is visibly noisier than the latency fit in
Figure 5 (Left).  :class:`EnergyMeter` carries the drift state across a
measurement campaign so consecutive measurements are correlated, as on a
heating device.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import lfilter

from ..search_space.space import Architecture, SearchSpace
from . import flops
from .device import DeviceProfile, XAVIER_MAXN
from .latency import LatencyModel

__all__ = ["EnergyModel", "EnergyMeter"]


class EnergyModel:
    """Analytic per-inference energy (mJ) of architectures on a device."""

    def __init__(self, space: SearchSpace, device: DeviceProfile = XAVIER_MAXN,
                 latency_model: LatencyModel | None = None) -> None:
        self.space = space
        self.device = device
        self.latency_model = latency_model or LatencyModel(space, device)

    def energy_mj(self, arch: Architecture, with_se_last: int = 0) -> float:
        """True (noise-free) energy of one batch inference, in millijoules."""
        d = self.device
        latency = self.latency_model.latency_ms(arch, with_se_last=with_se_last)
        cost = flops.arch_cost(self.space, arch, with_se_last=with_se_last)
        gmacs = d.batch_size * cost.macs / 1e9
        gbytes = d.batch_size * cost.mem_bytes / 1e9
        return (
            d.static_power_w * latency
            + d.energy_per_gmac_mj * gmacs
            + d.energy_per_gb_mj * gbytes
        )

    def energy_many(self, archs, with_se_last: int = 0) -> np.ndarray:
        """True energy of a population: ``(N, L)`` op indices → ``(N,)`` mJ.

        The cost terms are exact integer gather-sums and the latency term
        reuses :meth:`LatencyModel.latency_many`, so this agrees bit-for-bit
        with per-architecture :meth:`energy_mj` calls.
        """
        d = self.device
        ops = self.space.as_index_matrix(archs)
        latency = self.latency_model.latency_many(ops, with_se_last=with_se_last)
        cost = flops.arch_cost_many(self.space, ops, with_se_last=with_se_last)
        gmacs = d.batch_size * cost.macs / 1e9
        gbytes = d.batch_size * cost.mem_bytes / 1e9
        return (
            d.static_power_w * latency
            + d.energy_per_gmac_mj * gmacs
            + d.energy_per_gb_mj * gbytes
        )


class EnergyMeter:
    """Stateful energy measurement with AR(1) temperature drift.

    Each call to :meth:`measure` advances the drift state, so a measurement
    campaign over thousands of architectures exhibits the slow correlated
    wander of a heating device rather than i.i.d. noise.
    """

    def __init__(self, model: EnergyModel, rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self._drift = 0.0

    def reset(self) -> None:
        """Reset the drift state (device returned to ambient temperature)."""
        self._drift = 0.0

    def measure(self, arch: Architecture) -> float:
        """One noisy, drift-corrupted energy measurement (mJ)."""
        d = self.model.device
        self._drift = d.energy_drift_rho * self._drift + self.rng.normal(
            0.0, d.energy_drift_mj
        )
        true = self.model.energy_mj(arch)
        return max(true + self._drift + self.rng.normal(0.0, d.energy_noise_mj), 0.1)

    def measure_many(self, archs) -> np.ndarray:
        """Measure a population under one continuous drift trajectory.

        Noise is drawn as a C-order ``(N, 2)`` standard-normal block, which
        consumes the generator exactly like the scalar path's interleaved
        per-architecture (drift, white) draws; the AR(1) drift recurrence is
        evaluated with a single IIR filter whose arithmetic matches the
        scalar update ``rho·drift + eps`` term-for-term.  Seeded campaigns
        are therefore bit-identical to a loop of :meth:`measure` calls, and
        the meter's drift state advances as if each architecture had been
        measured in sequence.
        """
        d = self.model.device
        true = self.model.energy_many(archs)
        if len(true) == 0:
            return true
        z = self.rng.standard_normal((len(true), 2))
        eps = z[:, 0] * d.energy_drift_mj
        white = z[:, 1] * d.energy_noise_mj
        drift, _ = lfilter([1.0], [1.0, -d.energy_drift_rho], eps,
                           zi=[d.energy_drift_rho * self._drift])
        self._drift = float(drift[-1])
        return np.maximum(true + drift + white, 0.1)
