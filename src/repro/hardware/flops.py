"""FLOPs, parameter, and memory-traffic counters.

These are *analytic* counters over the search-space geometry (they do not
instantiate any weights), so they are exact and fast enough to call for
millions of architectures.  They serve three purposes:

* the Figure-2 experiment (FLOPs is a poor latency/energy proxy),
* the mobile-setting check of §4.1 (multi-adds under 600M),
* inputs to the roofline latency/energy models in
  :mod:`repro.hardware.latency` / :mod:`repro.hardware.energy`.

Conventions: "MACs" counts multiply-accumulates; FLOPs = 2 × MACs.  Memory
traffic counts reads of input activations + weights plus writes of output
activations, in bytes, assuming 16-bit storage (the deployment datatype on
the simulated device).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..search_space.macro import LayerGeometry, MacroConfig
from ..search_space.operators import OperatorSpec
from ..search_space.space import Architecture, SearchSpace

__all__ = ["OpCost", "CostTables", "PopulationCost", "op_cost", "fixed_cost",
           "cost_tables", "arch_cost", "arch_cost_many", "count_macs",
           "count_params", "count_macs_many", "count_params_many"]

BYTES_PER_VALUE = 2  # fp16 deployment datatype


@dataclass(frozen=True)
class OpCost:
    """Compute / parameter / memory cost of one network piece.

    Attributes
    ----------
    macs:
        Multiply-accumulate operations for a batch-1 forward pass.
    params:
        Learnable parameter count.
    mem_bytes:
        Activation + weight traffic in bytes for a batch-1 forward pass.
    """

    macs: int
    params: int
    mem_bytes: int

    def __add__(self, other: "OpCost") -> "OpCost":
        return OpCost(
            self.macs + other.macs,
            self.params + other.params,
            self.mem_bytes + other.mem_bytes,
        )

    @property
    def flops(self) -> int:
        return 2 * self.macs

    @staticmethod
    def zero() -> "OpCost":
        return OpCost(0, 0, 0)


def _conv_cost(in_ch: int, out_ch: int, kernel: int, in_res: int, stride: int,
               groups: int = 1) -> OpCost:
    """Cost of one conv + its activation traffic (bias-free, as built)."""
    out_res = in_res // stride
    kernel_params = (in_ch // groups) * out_ch * kernel * kernel
    macs = kernel_params * out_res * out_res
    mem = BYTES_PER_VALUE * (
        in_ch * in_res * in_res        # read input
        + kernel_params                 # read weights
        + out_ch * out_res * out_res    # write output
    )
    return OpCost(macs=macs, params=kernel_params, mem_bytes=mem)


def _bn_cost(channels: int, resolution: int) -> OpCost:
    """BatchNorm: 2C params, elementwise traffic, negligible MACs."""
    mem = BYTES_PER_VALUE * 2 * channels * resolution * resolution
    return OpCost(macs=0, params=2 * channels, mem_bytes=mem)


def op_cost(spec: OperatorSpec, geom: LayerGeometry, with_se: bool = False) -> OpCost:
    """Cost of one searchable-layer candidate at a given geometry."""
    if spec.is_skip:
        if geom.stride == 1 and geom.in_channels == geom.out_channels:
            return OpCost.zero()
        # Typed skip: 1×1 strided projection + BN.
        return _conv_cost(geom.in_channels, geom.out_channels, 1, geom.in_resolution,
                          geom.stride) + _bn_cost(geom.out_channels, geom.out_resolution)

    hidden = geom.in_channels * spec.expansion
    expand = _conv_cost(geom.in_channels, hidden, 1, geom.in_resolution, 1)
    expand = expand + _bn_cost(hidden, geom.in_resolution)
    depthwise = _conv_cost(hidden, hidden, spec.kernel_size, geom.in_resolution,
                           geom.stride, groups=hidden)
    depthwise = depthwise + _bn_cost(hidden, geom.out_resolution)
    project = _conv_cost(hidden, geom.out_channels, 1, geom.out_resolution, 1)
    project = project + _bn_cost(geom.out_channels, geom.out_resolution)
    total = expand + depthwise + project
    if with_se:
        reduced = max(1, hidden // 4)
        se_params = hidden * reduced * 2 + reduced + hidden
        total = total + OpCost(
            macs=se_params, params=se_params,
            mem_bytes=BYTES_PER_VALUE * (se_params + 2 * hidden),
        )
    return total


def fixed_cost(macro: MacroConfig) -> OpCost:
    """Cost of the non-searchable parts: stem, first bottleneck, head."""
    res = macro.input_resolution
    stem = _conv_cost(3, macro.stem_channels, 3, res, 2)
    stem = stem + _bn_cost(macro.stem_channels, res // 2)
    # Fixed first bottleneck (MobileNetV2 convention: expansion 1).
    res2 = res // 2
    first_dw = _conv_cost(macro.stem_channels, macro.stem_channels, 3, res2, 1,
                          groups=macro.stem_channels)
    first_pw = _conv_cost(macro.stem_channels, macro.first_layer_channels, 1, res2, 1)
    first = first_dw + _bn_cost(macro.stem_channels, res2) + first_pw + _bn_cost(
        macro.first_layer_channels, res2
    )
    final_res = macro.searchable_layers()[-1].out_resolution
    last_ch = macro.stages[-1][0]
    head_conv = _conv_cost(last_ch, macro.head_channels, 1, final_res, 1)
    head_conv = head_conv + _bn_cost(macro.head_channels, final_res)
    classifier_params = macro.head_channels * macro.num_classes + macro.num_classes
    classifier = OpCost(
        macs=macro.head_channels * macro.num_classes,
        params=classifier_params,
        mem_bytes=BYTES_PER_VALUE * (classifier_params + macro.head_channels
                                     + macro.num_classes),
    )
    return stem + first + head_conv + classifier


@dataclass(frozen=True)
class CostTables:
    """Per-(layer, operator) cost tables of one search space.

    Each array has shape ``(L, K)`` (int64); the ``*_se`` variants price the
    operator with a Squeeze-and-Excitation block appended.  ``fixed`` is the
    cost of the non-searchable parts.  Costs are additive over layers, so
    any architecture's total cost is ``fixed`` plus one gather-sum — the
    basis of every population-scale counter below.
    """

    macs: np.ndarray
    params: np.ndarray
    mem_bytes: np.ndarray
    macs_se: np.ndarray
    params_se: np.ndarray
    mem_bytes_se: np.ndarray
    fixed: OpCost

    def gather(self, field: str, ops: np.ndarray, with_se_last: int = 0) -> np.ndarray:
        """Sum one cost field over an ``(N, L)`` op-index matrix → ``(N,)``."""
        base = getattr(self, field)
        table = base
        if with_se_last > 0:
            table = base.copy()
            table[len(base) - with_se_last:] = getattr(self, field + "_se")[
                len(base) - with_se_last:]
        per_layer = table[np.arange(ops.shape[1])[None, :], ops]
        return per_layer.sum(axis=1) + getattr(self.fixed, field)


@dataclass(frozen=True)
class PopulationCost:
    """Batched :class:`OpCost`: ``(N,)`` int64 arrays, aligned by row."""

    macs: np.ndarray
    params: np.ndarray
    mem_bytes: np.ndarray

    @property
    def flops(self) -> np.ndarray:
        return 2 * self.macs


def cost_tables(space: SearchSpace) -> CostTables:
    """Build (or fetch the cached) per-(layer, operator) cost tables.

    The tables are a pure function of the space's geometry and operator
    vocabulary, so they are computed once and memoised on the space
    instance; all scalar and population cost queries are lookups afterwards.
    """
    cached = getattr(space, "_cost_tables", None)
    if cached is not None:
        return cached
    geoms = space.layer_geometries()
    shape = (space.num_layers, space.num_operators)
    arrays = {name: np.zeros(shape, dtype=np.int64)
              for name in ("macs", "params", "mem_bytes",
                           "macs_se", "params_se", "mem_bytes_se")}
    for l, geom in enumerate(geoms):
        for k, spec in enumerate(space.operators):
            base = op_cost(spec, geom)
            se = op_cost(spec, geom, with_se=True)
            arrays["macs"][l, k] = base.macs
            arrays["params"][l, k] = base.params
            arrays["mem_bytes"][l, k] = base.mem_bytes
            arrays["macs_se"][l, k] = se.macs
            arrays["params_se"][l, k] = se.params
            arrays["mem_bytes_se"][l, k] = se.mem_bytes
    tables = CostTables(fixed=fixed_cost(space.macro), **arrays)
    space._cost_tables = tables
    return tables


def arch_cost(space: SearchSpace, arch: Architecture, with_se_last: int = 0) -> OpCost:
    """Total cost of an architecture, including the fixed parts.

    ``with_se_last`` applies Squeeze-and-Excitation to the last *n*
    searchable layers (Table-4 ablation applies it to the last nine).
    """
    space.validate(arch)
    tables = cost_tables(space)
    se_start = space.num_layers - with_se_last
    macs, params, mem = tables.fixed.macs, tables.fixed.params, tables.fixed.mem_bytes
    for i, op_index in enumerate(arch.op_indices):
        if i >= se_start:
            macs += int(tables.macs_se[i, op_index])
            params += int(tables.params_se[i, op_index])
            mem += int(tables.mem_bytes_se[i, op_index])
        else:
            macs += int(tables.macs[i, op_index])
            params += int(tables.params[i, op_index])
            mem += int(tables.mem_bytes[i, op_index])
    return OpCost(macs=macs, params=params, mem_bytes=mem)


def arch_cost_many(space: SearchSpace, archs, with_se_last: int = 0) -> PopulationCost:
    """Batched :func:`arch_cost` over an ``(N, L)`` op-index matrix.

    Integer sums are exact regardless of association, so this agrees with
    the scalar path to the last bit.
    """
    ops = space.as_index_matrix(archs)
    tables = cost_tables(space)
    return PopulationCost(
        macs=tables.gather("macs", ops, with_se_last),
        params=tables.gather("params", ops, with_se_last),
        mem_bytes=tables.gather("mem_bytes", ops, with_se_last),
    )


def count_macs(space: SearchSpace, arch: Architecture) -> int:
    """Multiply-accumulates of a batch-1 forward pass (paper: "multi-adds")."""
    return arch_cost(space, arch).macs


def count_params(space: SearchSpace, arch: Architecture) -> int:
    """Learnable parameter count of the stand-alone network."""
    return arch_cost(space, arch).params


def count_macs_many(space: SearchSpace, archs) -> np.ndarray:
    """Batched :func:`count_macs`: ``(N, L)`` op indices → ``(N,)`` int64."""
    return arch_cost_many(space, archs).macs


def count_params_many(space: SearchSpace, archs) -> np.ndarray:
    """Batched :func:`count_params`: ``(N, L)`` op indices → ``(N,)`` int64."""
    return arch_cost_many(space, archs).params
