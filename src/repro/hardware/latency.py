"""Roofline latency model and the on-device measurement interface.

:class:`LatencyModel` computes the *true* (noise-free) latency of operators
and architectures on a :class:`repro.hardware.device.DeviceProfile`;
:meth:`LatencyModel.measure` adds measurement noise, which is what the
predictor-training pipeline (§3.2) consumes — mirroring the paper's
"measure 10,000 architectures on the Xavier" step.

The decomposition per convolution kernel is::

    latency = macs·batch / (peak · type_efficiency · utilisation(C_out))
            + bytes·batch / bandwidth
            + kernel_launch_overhead

An MBConv pays three kernel launches (expand, depthwise, project; BN and
activation are assumed fused, as on a deployed TensorRT engine); an identity
skip pays nothing; a typed-skip projection pays one.  Whole-network latency
adds the fixed stem/first-layer/head cost, a per-inference overhead, and
subtracts a fusion saving per adjacent non-skip layer pair — the term that
makes whole-network latency non-additive and defeats the LUT (Figure 5).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..search_space.macro import LayerGeometry, MacroConfig
from ..search_space.operators import OperatorSpec
from ..search_space.space import Architecture, SearchSpace
from . import flops
from .device import DeviceProfile, XAVIER_MAXN

__all__ = ["LatencyModel"]


class LatencyModel:
    """Analytic latency of the search space on a simulated device.

    Parameters
    ----------
    space:
        The search space whose geometry defines every layer.
    device:
        Device profile; defaults to the paper's Xavier MAXN, batch 8.
    """

    def __init__(self, space: SearchSpace, device: DeviceProfile = XAVIER_MAXN) -> None:
        self.space = space
        self.device = device
        self._geoms = space.layer_geometries()
        self._fixed_ms = self._fixed_latency_ms()
        # Per-(layer, operator) latency is fixed for a given device, so the
        # roofline is evaluated exactly once per cell here; every scalar and
        # population query below is a table lookup.
        num_layers, num_ops = space.num_layers, space.num_operators
        self.op_table = np.empty((num_layers, num_ops), dtype=np.float64)
        self.op_table_se = np.empty((num_layers, num_ops), dtype=np.float64)
        for l, geom in enumerate(self._geoms):
            for k, spec in enumerate(space.operators):
                self.op_table[l, k] = self.op_latency_ms(spec, geom)
                self.op_table_se[l, k] = self.op_latency_ms(spec, geom, with_se=True)
        self._skip_index = space.skip_index

    # ------------------------------------------------------------------
    # Kernel-level model
    # ------------------------------------------------------------------
    def _conv_latency_ms(self, macs: int, mem_bytes: int, out_channels: int,
                         depthwise: bool) -> float:
        d = self.device
        efficiency = d.depthwise_efficiency if depthwise else d.dense_efficiency
        throughput = d.peak_macs_per_ms * efficiency * d.utilization(out_channels)
        compute = d.batch_size * macs / throughput
        memory = d.batch_size * mem_bytes / d.bandwidth_bytes_per_ms
        return compute + memory + d.kernel_launch_ms

    def op_latency_ms(self, spec: OperatorSpec, geom: LayerGeometry,
                      with_se: bool = False) -> float:
        """True in-network latency of one candidate at one geometry."""
        if spec.is_skip:
            if geom.stride == 1 and geom.in_channels == geom.out_channels:
                return 0.0
            cost = flops.op_cost(spec, geom)
            return self._conv_latency_ms(cost.macs, cost.mem_bytes, geom.out_channels,
                                         depthwise=False)

        hidden = geom.in_channels * spec.expansion
        in_res, out_res = geom.in_resolution, geom.out_resolution
        expand_macs = geom.in_channels * hidden * in_res * in_res
        expand_bytes = flops.BYTES_PER_VALUE * (
            (geom.in_channels + hidden) * in_res * in_res + geom.in_channels * hidden
        )
        dw_macs = hidden * spec.kernel_size ** 2 * out_res * out_res
        dw_bytes = flops.BYTES_PER_VALUE * (
            hidden * in_res * in_res + hidden * out_res * out_res
            + hidden * spec.kernel_size ** 2
        )
        proj_macs = hidden * geom.out_channels * out_res * out_res
        proj_bytes = flops.BYTES_PER_VALUE * (
            (hidden + geom.out_channels) * out_res * out_res + hidden * geom.out_channels
        )
        total = (
            self._conv_latency_ms(expand_macs, expand_bytes, hidden, depthwise=False)
            + self._conv_latency_ms(dw_macs, dw_bytes, hidden, depthwise=True)
            + self._conv_latency_ms(proj_macs, proj_bytes, geom.out_channels,
                                    depthwise=False)
        )
        if with_se:
            se_macs = 2 * hidden * max(1, hidden // 4)
            se_bytes = flops.BYTES_PER_VALUE * (se_macs + 2 * hidden)
            total += self._conv_latency_ms(se_macs, se_bytes, hidden, depthwise=False)
        return total

    # ------------------------------------------------------------------
    # Network-level model
    # ------------------------------------------------------------------
    def _fixed_latency_ms(self) -> float:
        """Latency of stem + fixed first bottleneck + head + classifier."""
        cost = flops.fixed_cost(self.space.macro)
        # The fixed parts are dense convolutions at high utilisation; model
        # them as 5 dense kernels (stem, first dw+pw, head conv, classifier).
        d = self.device
        throughput = d.peak_macs_per_ms * d.dense_efficiency * 0.85
        compute = d.batch_size * cost.macs / throughput
        memory = d.batch_size * cost.mem_bytes / d.bandwidth_bytes_per_ms
        return compute + memory + 5 * d.kernel_launch_ms

    def _fusion_pairs(self, arch: Architecture) -> int:
        """Adjacent pairs of non-skip layers (eligible for kernel fusion)."""
        skip = self.space.skip_index
        ops = arch.op_indices
        return sum(
            1 for a, b in zip(ops[:-1], ops[1:]) if a != skip and b != skip
        )

    def _layer_table(self, layer: int, with_se_last: int) -> np.ndarray:
        """The (K,)-row of per-operator latencies effective at ``layer``."""
        if layer >= self.space.num_layers - with_se_last:
            return self.op_table_se[layer]
        return self.op_table[layer]

    def latency_ms(self, arch: Architecture, with_se_last: int = 0) -> float:
        """True whole-network latency (noise-free)."""
        self.space.validate(arch)
        total = self._fixed_ms + self.device.network_overhead_ms
        for i, op_index in enumerate(arch.op_indices):
            total += self._layer_table(i, with_se_last)[op_index]
        total -= self.device.fusion_saving_ms * self._fusion_pairs(arch)
        return max(total, 0.1)

    def latency_many(self, archs, with_se_last: int = 0) -> np.ndarray:
        """True latency of a population: ``(N, L)`` op indices → ``(N,)`` ms.

        Accepts an op-index matrix or a sequence of Architectures.  The
        accumulation walks layers left-to-right (a loop over L, never over
        N) so each architecture's floating-point sum is performed in exactly
        the order of the scalar path — :meth:`latency_ms` and this method
        agree bit-for-bit, which keeps seeded measurement campaigns stable.
        """
        ops = self.space.as_index_matrix(archs)
        totals = np.full(ops.shape[0], self._fixed_ms + self.device.network_overhead_ms)
        for layer in range(ops.shape[1]):
            totals += self._layer_table(layer, with_se_last)[ops[:, layer]]
        skip = self._skip_index
        fusion_pairs = ((ops[:, :-1] != skip) & (ops[:, 1:] != skip)).sum(axis=1)
        totals -= self.device.fusion_saving_ms * fusion_pairs
        return np.maximum(totals, 0.1)

    # ------------------------------------------------------------------
    # Measurement (what the predictor pipeline consumes)
    # ------------------------------------------------------------------
    def measure(self, arch: Architecture, rng: np.random.Generator,
                with_se_last: int = 0) -> float:
        """One noisy on-device latency measurement (ms)."""
        true = self.latency_ms(arch, with_se_last=with_se_last)
        noise = rng.normal(0.0, self.device.latency_noise_ms)
        noise += true * rng.normal(0.0, self.device.latency_noise_rel)
        return max(true + noise, 0.01)

    def measure_many(self, archs, rng: np.random.Generator,
                     with_se_last: int = 0) -> np.ndarray:
        """Measure a population (one trial each) without a per-arch loop.

        The two noise terms are drawn as one C-order ``(N, 2)`` standard
        normal block, which consumes the generator exactly like the scalar
        path's interleaved ``normal(0, abs)`` / ``normal(0, rel)`` calls —
        seeded campaigns produce bit-identical measurements either way.
        """
        true = self.latency_many(archs, with_se_last=with_se_last)
        z = rng.standard_normal((len(true), 2))
        noise = z[:, 0] * self.device.latency_noise_ms
        noise += true * (z[:, 1] * self.device.latency_noise_rel)
        return np.maximum(true + noise, 0.01)

    def measure_isolated_op(self, spec: OperatorSpec, geom: LayerGeometry,
                            rng: np.random.Generator) -> float:
        """Measure one operator *in isolation* (how LUTs are built).

        Isolated measurement pays an extra synchronisation overhead that
        whole-network execution does not — the root cause of the LUT's
        systematic over-prediction in Figure 5 (Right).
        """
        true = self.op_latency_ms(spec, geom) + self.device.isolated_overhead_ms
        return max(true + rng.normal(0.0, self.device.latency_noise_ms), 0.0)
