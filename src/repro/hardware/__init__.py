"""`repro.hardware` — simulated embedded platform (replaces Jetson AGX Xavier).

Analytic FLOPs/params counters, a roofline latency model with per-kernel
overheads and fusion effects, an energy model with temperature-drifting
measurements, and the additive latency-LUT baseline the paper compares its
MLP predictor against.
"""

from .device import EDGE_NANO, XAVIER_MAXN, DeviceProfile
from .energy import EnergyMeter, EnergyModel
from .flops import (
    CostTables,
    OpCost,
    PopulationCost,
    arch_cost,
    arch_cost_many,
    cost_tables,
    count_macs,
    count_macs_many,
    count_params,
    count_params_many,
    fixed_cost,
    op_cost,
)
from .latency import LatencyModel
from .lut import LatencyLUT
from .measurement import MeasurementProtocol, MeasurementReport, measure_latency_campaign

__all__ = [
    "DeviceProfile",
    "XAVIER_MAXN",
    "EDGE_NANO",
    "LatencyModel",
    "EnergyModel",
    "EnergyMeter",
    "LatencyLUT",
    "MeasurementProtocol",
    "MeasurementReport",
    "measure_latency_campaign",
    "OpCost",
    "CostTables",
    "PopulationCost",
    "op_cost",
    "fixed_cost",
    "cost_tables",
    "arch_cost",
    "arch_cost_many",
    "count_macs",
    "count_params",
    "count_macs_many",
    "count_params_many",
]
