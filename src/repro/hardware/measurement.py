"""Realistic on-device measurement campaigns.

The paper's predictor pipeline rests on "measure the inference latency on
Nvidia Jetson AGX Xavier" for 10,000 architectures — an operation that, on
real silicon, is never a single timer read.  This module models the
measurement *protocol* around the raw simulated device:

* **warmup** inferences (discarded) so clocks/caches settle,
* ``trials`` repeated timed inferences,
* robust aggregation (median, or trimmed mean) with outlier rejection,
* occasional **outlier spikes** injected by the harness itself
  (a background daemon waking up on the device), so the robust aggregation
  actually earns its keep,
* a :class:`MeasurementReport` carrying the spread statistics a careful
  practitioner records.

:class:`MeasurementProtocol` is deliberately independent of what it measures
— it takes any ``sample()`` callable — so the same protocol wraps latency
and energy, at any batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Literal, Optional, Sequence

import numpy as np

from ..search_space.space import Architecture
from .latency import LatencyModel

__all__ = ["MeasurementReport", "MeasurementProtocol", "measure_latency_campaign"]


@dataclass(frozen=True)
class MeasurementReport:
    """Aggregated result of one measurement run."""

    value: float          # robust aggregate, the number the predictor sees
    mean: float
    std: float
    trials: int
    outliers_rejected: int

    @property
    def relative_std(self) -> float:
        return self.std / self.mean if self.mean else float("inf")


class MeasurementProtocol:
    """Warmup + repeated trials + robust aggregation.

    Parameters
    ----------
    warmup:
        Discarded leading samples.
    trials:
        Timed samples aggregated into the reported value.
    aggregate:
        ``"median"`` (default) or ``"trimmed_mean"`` (drop the top/bottom
        10 % before averaging).
    outlier_sigma:
        Samples further than this many (robust) standard deviations from
        the median are rejected before aggregation; ``None`` disables.
    spike_probability / spike_scale:
        The harness's own interference model: each trial is, with this
        probability, inflated by ``spike_scale``× (e.g. a background task
        stealing the accelerator).  Defaults keep spikes rare but real.
    """

    def __init__(
        self,
        warmup: int = 3,
        trials: int = 10,
        aggregate: Literal["median", "trimmed_mean"] = "median",
        outlier_sigma: Optional[float] = 4.0,
        spike_probability: float = 0.02,
        spike_scale: float = 1.5,
    ) -> None:
        if warmup < 0 or trials < 1:
            raise ValueError("need warmup >= 0 and trials >= 1")
        if aggregate not in ("median", "trimmed_mean"):
            raise ValueError(f"unknown aggregate {aggregate!r}")
        if not 0.0 <= spike_probability < 1.0:
            raise ValueError("spike_probability must be in [0, 1)")
        self.warmup = warmup
        self.trials = trials
        self.aggregate = aggregate
        self.outlier_sigma = outlier_sigma
        self.spike_probability = spike_probability
        self.spike_scale = spike_scale

    # ------------------------------------------------------------------
    def run(self, sample: Callable[[], float], rng: np.random.Generator
            ) -> MeasurementReport:
        """Execute the protocol around a raw single-measurement callable."""
        for _ in range(self.warmup):
            sample()
        raw = []
        for _ in range(self.trials):
            value = sample()
            if self.spike_probability and rng.uniform() < self.spike_probability:
                value *= self.spike_scale
            raw.append(value)
        samples = np.asarray(raw, dtype=np.float64)

        kept = samples
        rejected = 0
        if self.outlier_sigma is not None and len(samples) >= 3:
            median = np.median(samples)
            # robust scale: median absolute deviation → σ estimate
            mad = np.median(np.abs(samples - median))
            scale = 1.4826 * mad
            if scale > 0:
                mask = np.abs(samples - median) <= self.outlier_sigma * scale
                rejected = int((~mask).sum())
                if mask.any():
                    kept = samples[mask]

        if self.aggregate == "median":
            value = float(np.median(kept))
        else:
            drop = max(1, len(kept) // 10) if len(kept) >= 5 else 0
            ordered = np.sort(kept)
            trimmed = ordered[drop: len(ordered) - drop] if drop else ordered
            value = float(trimmed.mean())

        return MeasurementReport(
            value=value,
            mean=float(kept.mean()),
            std=float(kept.std()),
            trials=self.trials,
            outliers_rejected=rejected,
        )


def measure_latency_campaign(
    latency_model: LatencyModel,
    archs: Sequence[Architecture],
    rng: np.random.Generator,
    protocol: Optional[MeasurementProtocol] = None,
) -> List[MeasurementReport]:
    """Measure a batch of architectures under a full protocol.

    This is the careful version of
    :meth:`repro.hardware.latency.LatencyModel.measure_many` — slower
    (``warmup + trials`` device inferences per architecture) but robust to
    interference spikes, matching how a real 10k campaign is run overnight.
    """
    protocol = protocol or MeasurementProtocol()
    reports = []
    for arch in archs:
        reports.append(
            protocol.run(lambda a=arch: latency_model.measure(a, rng), rng)
        )
    return reports
