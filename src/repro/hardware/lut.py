"""The latency lookup-table baseline (Figure 5, Right).

Recent hardware-aware NAS works (FBNet, ProxylessNAS, OFA) predict network
latency by summing per-operator latencies measured in isolation.
:class:`LatencyLUT` reproduces that pipeline faithfully: one isolated
measurement per ``(layer, operator)`` cell (averaged over ``trials``), plus
the measured fixed-part latency, summed per architecture.

Because isolated measurement pays a synchronisation overhead that fused
whole-network execution does not, and because the LUT cannot see cross-layer
fusion effects, the LUT systematically over-predicts — the paper reports a
consistent ≈11.48 ms gap, and a residual RMSE of ≈0.41 ms even after the
constant bias is removed.  :meth:`LatencyLUT.debias` implements that
bias-removal step so benchmarks can report both numbers.
"""

from __future__ import annotations

import numpy as np

from ..search_space.space import Architecture, SearchSpace
from .latency import LatencyModel

__all__ = ["LatencyLUT"]


class LatencyLUT:
    """Per-(layer, operator) additive latency table.

    Parameters
    ----------
    latency_model:
        The measurement substrate (provides isolated-op measurements).
    rng:
        Measurement noise source.
    trials:
        Isolated measurements averaged per table cell.
    """

    def __init__(self, latency_model: LatencyModel, rng: np.random.Generator,
                 trials: int = 5) -> None:
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.space: SearchSpace = latency_model.space
        self.latency_model = latency_model
        # Noise-free isolated latency of every cell is one table away
        # (op_table + synchronisation overhead); all trials' measurement
        # noise is drawn as one C-order (L, K, trials) block, matching the
        # scalar loop's per-cell draw order bit-for-bit.
        true_isolated = (latency_model.op_table
                         + latency_model.device.isolated_overhead_ms)
        noise = (rng.standard_normal((*true_isolated.shape, trials))
                 * latency_model.device.latency_noise_ms)
        samples = np.maximum(true_isolated[:, :, None] + noise, 0.0)
        self.table = samples.mean(axis=2)
        # Fixed parts are measured once as a block (stem + head + overhead).
        self.fixed_ms = latency_model._fixed_ms + latency_model.device.network_overhead_ms
        self.bias_ms = 0.0

    def predict(self, arch: Architecture) -> float:
        """LUT latency estimate: fixed parts + per-layer table entries."""
        self.space.validate(arch)
        layer_sum = float(
            self.table[np.arange(self.space.num_layers), list(arch.op_indices)].sum()
        )
        return self.fixed_ms + layer_sum - self.bias_ms

    def predict_many(self, archs) -> np.ndarray:
        """Batched :meth:`predict`: one gather-sum over the population."""
        ops = self.space.as_index_matrix(archs)
        layer_sums = self.table[np.arange(self.space.num_layers)[None, :], ops].sum(axis=1)
        return self.fixed_ms + layer_sums - self.bias_ms

    def debias(self, archs, measured: np.ndarray) -> float:
        """Remove the mean prediction offset against ``measured`` latencies.

        Returns the offset that was absorbed into :attr:`bias_ms` (the
        "consistent gap" the paper reports before de-biasing).
        """
        measured = np.asarray(measured, dtype=np.float64)
        if len(archs) != len(measured):
            raise ValueError("archs and measured must have equal length")
        gap = float(np.mean(self.predict_many(archs) - measured))
        self.bias_ms += gap
        return gap
