"""Simulated embedded inference devices.

The paper measures on an Nvidia Jetson AGX Xavier (MAXN power mode, batch
size 8).  We do not have that hardware, so :class:`DeviceProfile` defines an
analytic performance model with the properties the paper's experiments rely
on:

1. **Latency is not proportional to FLOPs** (Figure 2).  The model is a
   roofline: each kernel pays a compute term (throughput scaled by a
   channel-utilisation curve and a per-kernel-type efficiency — depthwise
   convolutions utilise the GPU far worse than dense 1×1 convolutions), a
   memory-traffic term, and a fixed per-kernel launch overhead.  Skip
   connections are free; launch overheads and memory terms add latency with
   zero FLOPs.

2. **An additive LUT mis-predicts whole-network latency** (Figure 5 Right).
   Isolated per-operator measurement pays an extra synchronisation overhead
   per measurement (``isolated_overhead_ms``), and whole-network execution
   enjoys a small fusion saving for every pair of adjacent non-skip layers
   that the LUT cannot see.  Summing LUT entries therefore over-predicts by
   a systematic, architecture-dependent gap.

3. **Measurements are noisy**; energy measurements additionally drift with
   device temperature (Figure 8 Left), modelled as an AR(1) random walk.

Constants are calibrated (see ``tests/hardware/test_calibration.py``) so the
full LightNAS space spans roughly 14–34 ms with searched architectures in
the paper's 20–30 ms band, and energy in the few-hundred-mJ band of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

__all__ = ["DeviceProfile", "XAVIER_MAXN", "EDGE_NANO", "DEVICE_ALIASES",
           "resolve_device", "register_resolver", "known_devices",
           "device_hints"]


@dataclass(frozen=True)
class DeviceProfile:
    """Analytic performance model of an embedded inference device.

    All throughput/overhead constants describe the *deployed* regime the
    paper measures (fp16, fused BN, fixed batch size).
    """

    name: str
    batch_size: int = 8

    # Compute roofline -------------------------------------------------
    #: Peak dense-conv throughput in MACs per millisecond.
    peak_macs_per_ms: float = 4.9e8
    #: Efficiency multiplier for dense (1×1 / full) convolutions.
    dense_efficiency: float = 1.0
    #: Efficiency multiplier for depthwise convolutions (low arithmetic
    #: intensity ⇒ poor GPU utilisation).
    depthwise_efficiency: float = 0.073
    #: Channel-utilisation half-point: utilisation = c / (c + this).
    utilization_half_channels: float = 24.0

    # Memory -----------------------------------------------------------
    #: Effective memory bandwidth in bytes per millisecond (cache-aware).
    bandwidth_bytes_per_ms: float = 7.3e8

    # Overheads ----------------------------------------------------------
    #: Fixed overhead per kernel launch (ms).
    kernel_launch_ms: float = 0.048
    #: Fixed per-inference overhead: host-device transfer, scheduling (ms).
    network_overhead_ms: float = 1.8
    #: Extra synchronisation overhead when an operator is measured in
    #: isolation (this is what poisons the additive LUT).
    isolated_overhead_ms: float = 0.44
    #: Latency saved per adjacent pair of non-skip layers by kernel fusion
    #: in whole-network execution (invisible to the LUT).
    fusion_saving_ms: float = 0.15

    # Measurement noise ---------------------------------------------------
    #: Absolute std-dev of latency measurement noise (ms).
    latency_noise_ms: float = 0.035
    #: Relative std-dev of latency measurement noise.
    latency_noise_rel: float = 0.0

    # Energy model --------------------------------------------------------
    #: Static power draw in watts (1 W × 1 ms = 1 mJ / ms).
    static_power_w: float = 9.0
    #: Dynamic energy per giga-MAC (mJ), folding in compute + SRAM traffic.
    energy_per_gmac_mj: float = 65.0
    #: Dynamic energy per gigabyte of DRAM traffic (mJ).
    energy_per_gb_mj: float = 90.0
    #: White measurement noise on energy (mJ).
    energy_noise_mj: float = 3.0
    #: Std-dev of the per-step increment of the AR(1) temperature drift (mJ).
    energy_drift_mj: float = 1.0
    #: AR(1) coefficient of the temperature drift.
    energy_drift_rho: float = 0.99

    def utilization(self, channels: int) -> float:
        """Fraction of peak throughput achieved at a given channel width."""
        if channels <= 0:
            raise ValueError(f"channels must be positive, got {channels}")
        return channels / (channels + self.utilization_half_channels)

    def with_batch_size(self, batch_size: int) -> "DeviceProfile":
        """Copy of this profile measuring at a different batch size."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        return replace(self, batch_size=batch_size)


#: The paper's platform: Jetson AGX Xavier in MAXN mode, batch size 8.
XAVIER_MAXN = DeviceProfile(name="jetson-agx-xavier-maxn")

#: A weaker device profile used to demonstrate generality (not in the
#: paper's tables; exercised by tests and the multi-device example).
EDGE_NANO = DeviceProfile(
    name="edge-nano",
    peak_macs_per_ms=1.2e8,
    depthwise_efficiency=0.05,
    bandwidth_bytes_per_ms=2.0e8,
    kernel_launch_ms=0.09,
    network_overhead_ms=2.5,
    static_power_w=5.0,
)

#: CLI shorthand → profile.  Full profile names are accepted too.
DEVICE_ALIASES = {
    "xavier": XAVIER_MAXN,
    "edge-nano": EDGE_NANO,
}


#: Pluggable resolvers consulted after the static alias table.  Each entry
#: is ``(resolve, hint)``: ``resolve(name)`` returns a profile or ``None``,
#: ``hint()`` returns human-readable name patterns for error messages and
#: ``--device`` help.  The fleet subsystem registers its parametric device
#: families here (``repro.fleet.generator``), which is what lets every
#: existing CLI/service/archive path accept fleet devices by name.
_RESOLVERS: List[Tuple[Callable[[str], Optional[DeviceProfile]],
                       Callable[[], List[str]]]] = []


def register_resolver(resolve: Callable[[str], Optional[DeviceProfile]],
                      hint: Callable[[], List[str]]) -> None:
    """Extend :func:`resolve_device` with a dynamic device namespace."""
    _RESOLVERS.append((resolve, hint))


def known_devices() -> List[str]:
    """Sorted, deduplicated static device names (aliases + profile names).

    A device whose alias equals its profile name (e.g. ``edge-nano``)
    appears exactly once.
    """
    names = set(DEVICE_ALIASES)
    names.update(p.name for p in DEVICE_ALIASES.values())
    return sorted(names)


def device_hints() -> List[str]:
    """Name patterns accepted beyond the static table (fleet families)."""
    hints: List[str] = []
    for _, hint in _RESOLVERS:
        hints.extend(hint())
    return hints


def resolve_device(name: str) -> DeviceProfile:
    """Look up a device by CLI alias, full profile name, or fleet name."""
    if name in DEVICE_ALIASES:
        return DEVICE_ALIASES[name]
    for profile in DEVICE_ALIASES.values():
        if profile.name == name:
            return profile
    for resolve, _ in _RESOLVERS:
        profile = resolve(name)
        if profile is not None:
            return profile
    known = ", ".join(known_devices())
    hints = device_hints()
    extra = f"; fleet devices: {', '.join(hints)}" if hints else ""
    raise ValueError(f"unknown device {name!r}; known: {known}{extra}")
