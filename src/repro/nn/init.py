"""Weight initialisers for :mod:`repro.nn` modules.

All initialisers take an explicit ``numpy.random.Generator`` so that every
experiment in the reproduction is seeded end to end (single-run determinism
is what makes the benchmark tables stable across machines).
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "xavier_uniform", "zeros", "ones"]


def kaiming_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation: ``N(0, sqrt(2 / fan_in))``.

    The standard choice for ReLU-family networks (the MBConv blocks of the
    LightNAS space use ReLU6 throughout).
    """
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation for linear layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
