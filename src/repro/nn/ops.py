"""Differentiable operations for :class:`repro.nn.Tensor`.

Each function builds the forward value with numpy and registers a backward
closure returning ``(parent, gradient_contribution)`` pairs.  Importing this
module attaches the Python operator overloads (``+``, ``*``, ``@`` …) to
:class:`Tensor`; :mod:`repro.nn` performs that import, so users never need to
import this module directly.

Engine notes
------------
* **Tape-free eval**: every op checks the grad mode *before* constructing
  its backward closure, so forwards under ``nn.no_grad()`` allocate zero
  closures and capture no intermediates — validation passes cost only the
  forward arithmetic.
* **Specialized convolution kernels**: ``conv2d`` dispatches depthwise
  (``groups == C_in``) and pointwise (1×1, ``groups == 1``) convolutions to
  direct strided-window einsum kernels that skip the im2col reshuffle and
  the col2im scatter of the generic grouped path.  Both fast paths are
  einsum-reductions with the same accumulation order as the generic path,
  so in float64 they are **bit-identical** to it (asserted by
  ``tests/nn/test_conv_fast_paths.py`` and the golden-trajectory test);
  :func:`fast_kernels` toggles them for benchmarking.
* **Profiling**: when a :func:`repro.nn.profiler.profile` context is open,
  each primitive op records wall time and call count under its op kind
  (backward closures under ``<kind>.bwd`` via ``Tensor.backward``).

The generic convolution is im2col/col2im with stride, symmetric padding and
grouped kernels; its col2im adjoint is fully vectorized (a dilated
scatter buffer reduced through a negative-stride window view — no Python
``kh×kw`` loop).
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from . import profiler
from .tensor import Tensor, _GradMode, _unbroadcast

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow_", "exp", "log", "sqrt",
    "matmul", "sum_", "mean", "amax", "clip", "relu", "relu6", "sigmoid",
    "tanh", "reshape", "transpose", "concat", "pad2d", "conv2d",
    "avg_pool_global", "maximum", "getitem", "stack", "dropout_mask",
    "fast_kernels", "record_replay_effect",
]

#: dispatch depthwise/1×1 convolutions to the specialized kernels
_FAST_KERNELS = True

#: op kinds whose forward/backward kernels are pure elementwise maps over
#: already-bound buffers: recomputing one at the same inputs writes the same
#: bits, and none reads its own previous output.  The plan fusion pass uses
#: this set to pack adjacent replay kernels into one composite dispatch, and
#: the profiler groups them under ``fused:<chain>`` when it happens.
ELEMENTWISE_KINDS = frozenset({
    "add", "sub", "mul", "div", "neg", "pow", "exp", "log", "sqrt",
    "maximum", "clip", "relu", "sigmoid", "tanh", "dropout",
})

#: the step-plan tracer currently recording primitive ops, or None; set by
#: :mod:`repro.nn.plan` around a traced step (checked per op call like the
#: profiler, so tracing costs nothing when off)
_TRACER = None


def record_replay_effect(fn) -> None:
    """Register a non-tape side effect with the active step-plan tracer.

    Modules with step-to-step state that lives *outside* the tape —
    BatchNorm running-statistic updates, Dropout mask redraws — call this
    right after performing the effect eagerly.  When a plan trace is open
    the effect closure is recorded at its position in the op stream and
    re-executed on every replay; outside a trace this is a no-op.
    """
    if _TRACER is not None:
        _TRACER.record_effect(fn)


@contextmanager
def fast_kernels(enabled: bool = True) -> Iterator[None]:
    """Enable/disable the specialized conv kernels inside the context.

    ``fast_kernels(False)`` forces every convolution through the generic
    grouped im2col path — used by the parity tests and the
    ``bench_nn_engine`` old-vs-new comparison.  In float64 the outputs and
    gradients are bit-identical either way.
    """
    global _FAST_KERNELS
    previous = _FAST_KERNELS
    _FAST_KERNELS = bool(enabled)
    try:
        yield
    finally:
        _FAST_KERNELS = previous


def _op(kind: str):
    """Record wall time under ``kind`` while a profiler context is open.

    When no profiler is active the overhead is one attribute load and a
    ``None`` check per call.  The produced tensor is labelled with the op
    kind so ``Tensor.backward`` can attribute closure time to ``kind.bwd``.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            prof = profiler._active
            if prof is None and _TRACER is None:
                return fn(*args, **kwargs)
            if prof is None:
                out = fn(*args, **kwargs)
            else:
                start = time.perf_counter()
                out = fn(*args, **kwargs)
                prof.record(kind, time.perf_counter() - start,
                            nbytes=out.data.nbytes if isinstance(out, Tensor)
                            else 0)
                if isinstance(out, Tensor) and out.name is None:
                    out.name = kind
            if _TRACER is not None and isinstance(out, Tensor):
                _TRACER.record(kind, args, kwargs, out)
            return out

        return wrapper

    return decorate


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

@_op("add")
def add(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data + b.data
    if not _GradMode.enabled or not (a.requires_grad or b.requires_grad):
        return Tensor(out)

    def backward(grad):
        return [(a, _unbroadcast(grad, a.shape)), (b, _unbroadcast(grad, b.shape))]

    return Tensor._make(out, (a, b), backward)


@_op("sub")
def sub(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data - b.data
    if not _GradMode.enabled or not (a.requires_grad or b.requires_grad):
        return Tensor(out)

    def backward(grad):
        return [(a, _unbroadcast(grad, a.shape)), (b, _unbroadcast(-grad, b.shape))]

    return Tensor._make(out, (a, b), backward)


@_op("mul")
def mul(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data * b.data
    if not _GradMode.enabled or not (a.requires_grad or b.requires_grad):
        return Tensor(out)

    def backward(grad):
        return [
            (a, _unbroadcast(grad * b.data, a.shape)),
            (b, _unbroadcast(grad * a.data, b.shape)),
        ]

    return Tensor._make(out, (a, b), backward)


@_op("div")
def div(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data / b.data
    if not _GradMode.enabled or not (a.requires_grad or b.requires_grad):
        return Tensor(out)

    def backward(grad):
        return [
            (a, _unbroadcast(grad / b.data, a.shape)),
            (b, _unbroadcast(-grad * a.data / (b.data ** 2), b.shape)),
        ]

    return Tensor._make(out, (a, b), backward)


@_op("neg")
def neg(a: Tensor) -> Tensor:
    out = -a.data
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, -grad)]

    return Tensor._make(out, (a,), backward)


@_op("pow")
def pow_(a: Tensor, exponent: float) -> Tensor:
    """Raise to a constant power (the exponent is not differentiated)."""
    exponent = float(exponent)
    out = a.data ** exponent
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad * exponent * a.data ** (exponent - 1.0))]

    return Tensor._make(out, (a,), backward)


@_op("exp")
def exp(a: Tensor) -> Tensor:
    out = np.exp(a.data)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad * out)]

    return Tensor._make(out, (a,), backward)


@_op("log")
def log(a: Tensor) -> Tensor:
    out = np.log(a.data)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad / a.data)]

    return Tensor._make(out, (a,), backward)


@_op("sqrt")
def sqrt(a: Tensor) -> Tensor:
    out = np.sqrt(a.data)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad * 0.5 / out)]

    return Tensor._make(out, (a,), backward)


@_op("maximum")
def maximum(a: Tensor, b) -> Tensor:
    """Elementwise maximum; ties route the gradient to the first argument."""
    a, b = _as_tensor(a), _as_tensor(b)
    out = np.maximum(a.data, b.data)
    if not _GradMode.enabled or not (a.requires_grad or b.requires_grad):
        return Tensor(out)
    a_wins = a.data >= b.data

    def backward(grad):
        return [
            (a, _unbroadcast(grad * a_wins, a.shape)),
            (b, _unbroadcast(grad * ~a_wins, b.shape)),
        ]

    return Tensor._make(out, (a, b), backward)


@_op("clip")
def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp to ``[low, high]``; gradient is 1 strictly inside the band."""
    out = np.clip(a.data, low, high)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)
    inside = (a.data > low) & (a.data < high)

    def backward(grad):
        return [(a, grad * inside)]

    return Tensor._make(out, (a,), backward)


@_op("relu")
def relu(a: Tensor) -> Tensor:
    out = np.maximum(a.data, 0.0)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)
    mask = a.data > 0.0

    def backward(grad):
        return [(a, grad * mask)]

    return Tensor._make(out, (a,), backward)


def relu6(a: Tensor) -> Tensor:
    """ReLU6, the activation used throughout MobileNetV2-style blocks."""
    return clip(a, 0.0, 6.0)


@_op("sigmoid")
def sigmoid(a: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-a.data))
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad * out * (1.0 - out))]

    return Tensor._make(out, (a,), backward)


@_op("tanh")
def tanh(a: Tensor) -> Tensor:
    out = np.tanh(a.data)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad * (1.0 - out ** 2))]

    return Tensor._make(out, (a,), backward)


@_op("dropout")
def dropout_mask(a: Tensor, mask: np.ndarray, scale: float) -> Tensor:
    """Multiply by a fixed 0/1 mask and rescale (inverted dropout)."""
    out = a.data * mask * scale
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad * mask * scale)]

    return Tensor._make(out, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra and reductions
# ----------------------------------------------------------------------

@_op("matmul")
def matmul(a: Tensor, b: Tensor) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data @ b.data
    if not _GradMode.enabled or not (a.requires_grad or b.requires_grad):
        return Tensor(out)

    def backward(grad):
        if a.data.ndim == 1 and b.data.ndim == 1:  # inner product
            return [(a, grad * b.data), (b, grad * a.data)]
        if a.data.ndim == 1:  # (k,) @ (k, n)
            return [(a, grad @ b.data.T), (b, np.outer(a.data, grad))]
        if b.data.ndim == 1:  # (m, k) @ (k,)
            return [(a, np.outer(grad, b.data)), (b, a.data.T @ grad)]
        ga = grad @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ grad
        return [(a, _unbroadcast(ga, a.shape)), (b, _unbroadcast(gb, b.shape))]

    return Tensor._make(out, (a, b), backward)


@_op("sum")
def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    out = a.data.sum(axis=axis, keepdims=keepdims)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % a.data.ndim for ax in axes)
            g = np.expand_dims(g, axis=tuple(sorted(axes)))
        return [(a, np.broadcast_to(g, a.shape))]

    return Tensor._make(out, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.data.shape[ax] for ax in axes]))
    return sum_(a, axis=axis, keepdims=keepdims) * (1.0 / count)


@_op("amax")
def amax(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    """Non-differentiable elementwise maximum reduction.

    Used for the softmax max-shift, which the engine has always treated as
    a constant (no gradient flows through it — the shift cancels exactly in
    the softmax quotient).  Making it a primitive op, rather than a baked
    ``Tensor(x.data.max(...))`` leaf, lets the step-plan tracer recompute
    the shift from the live input on every replay.
    """
    return Tensor(a.data.max(axis=axis, keepdims=keepdims))


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

@_op("reshape")
def reshape(a: Tensor, shape) -> Tensor:
    out = a.data.reshape(shape)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad.reshape(a.shape))]

    return Tensor._make(out, (a,), backward)


@_op("transpose")
def transpose(a: Tensor, axes=None) -> Tensor:
    out = np.transpose(a.data, axes)
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        inverse = None if axes is None else np.argsort(axes)
        return [(a, np.transpose(grad, inverse))]

    return Tensor._make(out, (a,), backward)


@_op("getitem")
def getitem(a: Tensor, index) -> Tensor:
    out = a.data[index]
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return [(a, full)]

    return Tensor._make(out, (a,), backward)


@_op("concat")
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    if not _GradMode.enabled or not any(t.requires_grad for t in tensors):
        return Tensor(out)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pairs = []
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            pairs.append((t, grad[tuple(index)]))
        return pairs

    return Tensor._make(out, tuple(tensors), backward)


@_op("stack")
def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)
    if not _GradMode.enabled or not any(t.requires_grad for t in tensors):
        return Tensor(out)

    def backward(grad):
        slices = np.split(grad, len(tensors), axis=axis)
        return [(t, np.squeeze(s, axis=axis)) for t, s in zip(tensors, slices)]

    return Tensor._make(out, tuple(tensors), backward)


@_op("pad2d")
def pad2d(a: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return a
    p = int(padding)
    out = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))
    if not _GradMode.enabled or not a.requires_grad:
        return Tensor(out)

    def backward(grad):
        return [(a, grad[:, :, p:-p, p:-p])]

    return Tensor._make(out, (a,), backward)


# ----------------------------------------------------------------------
# Convolution (im2col) and pooling
# ----------------------------------------------------------------------

def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Extract sliding windows: (N, C, H, W) -> (N, C, kh, kw, OH, OW)."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)


def _col2im(cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add windows back to the image.

    Fully vectorized: the windows are written into a kernel-dilated scatter
    buffer (one strided assignment), then summed through a window view whose
    kernel axes carry *negative* spatial strides, so position ``(y, x)``
    reads exactly the ``(i, j)`` window entries that cover it.  The einsum
    reduction visits ``(i, j)`` in the same ascending order as the
    historical Python loop, so results are bit-identical to it.
    """
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    di, dj = kh - 1, kw - 1
    buf = np.zeros((n, c, kh, kw, h + di, w + dj), dtype=cols.dtype)
    buf[:, :, :, :, di:di + stride * oh:stride, dj:dj + stride * ow:stride] = cols
    sn, sc, si, sj, sy, sx = buf.strides
    window = np.lib.stride_tricks.as_strided(
        buf[:, :, :, :, di:, dj:],
        shape=(n, c, kh, kw, h, w),
        strides=(sn, sc, si - sy, sj - sx, sy, sx),
    )
    return np.einsum("ncijyx->ncyx", window)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution on NCHW input.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernels of shape ``(C_out, C_in // groups, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Symmetric stride/zero padding on both spatial axes.
    groups:
        Number of channel groups; ``groups == C_in`` with ``C_out == C_in``
        gives a depthwise convolution.

    Depthwise and pointwise (1×1, ungrouped) kernels dispatch to direct
    strided-window fast paths that are bit-identical to the generic grouped
    path in float64 (see :func:`fast_kernels`).
    """
    if padding:
        x = pad2d(x, padding)

    n, c_in, h, w = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in_g * groups != c_in:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, "
            f"weight expects {c_in_g}×{groups} groups"
        )
    if c_out % groups != 0:
        raise ValueError(f"c_out={c_out} not divisible by groups={groups}")

    if _FAST_KERNELS:
        if groups == 1 and kh == 1 and kw == 1:
            return _conv2d_1x1(x, weight, bias, stride)
        if groups == c_in and c_out == c_in and c_in_g == 1:
            return _conv2d_depthwise(x, weight, bias, stride)
    return _conv2d_generic(x, weight, bias, stride, groups)


@_op("conv2d_1x1")
def _conv2d_1x1(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                stride: int) -> Tensor:
    """Pointwise convolution: a channel contraction, no im2col at all."""
    xd = x.data[:, :, ::stride, ::stride] if stride > 1 else x.data
    w_mat = weight.data[:, :, 0, 0]  # (C_out, C_in)
    # NOTE: like the generic path's transpose-reshape view, this einsum may
    # hand back a channel-major (non-C-contiguous) array; downstream
    # pairwise reductions are layout-sensitive, so preserving the generic
    # path's layout here is part of the bit-identity contract.
    out = np.einsum("nchw,oc->nohw", xd, w_mat, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _GradMode.enabled or not any(p.requires_grad for p in parents):
        return Tensor(out)

    def backward(grad):
        pairs = []
        if x.requires_grad:
            # += into zeros (not assignment) matches the generic col2im,
            # which canonicalises -0.0 products to +0.0.  np.zeros (not
            # zeros_like) pins C order even if x.data is a strided view.
            gx = np.zeros(x.shape, dtype=x.data.dtype)
            if stride > 1:
                gx[:, :, ::stride, ::stride] += np.einsum(
                    "nohw,oc->nchw", grad, w_mat, optimize=True)
            else:
                gx += np.einsum("nohw,oc->nchw", grad, w_mat, optimize=True)
            pairs.append((x, gx))
        if weight.requires_grad:
            gw = np.ascontiguousarray(
                np.einsum("nohw,nchw->oc", grad, xd, optimize=True))
            pairs.append((weight, gw[:, :, None, None]))
        if bias is not None and bias.requires_grad:
            pairs.append((bias, grad.sum(axis=(0, 2, 3))))
        return pairs

    return Tensor._make(out, parents, backward)


@_op("conv2d_dw")
def _conv2d_depthwise(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                      stride: int) -> Tensor:
    """Depthwise convolution: per-channel window reduction on the raw view.

    Works directly on the strided im2col *view* (no materialised copy), so
    the forward is one einsum and the weight gradient another; the input
    gradient fuses the weight broadcast into the col2im scatter loop
    without materialising the ``(N, C, kh, kw, OH, OW)`` column gradient.
    """
    n, c, h, w = x.shape
    kh, kw = weight.shape[2:]
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    cols = _im2col(x.data, kh, kw, stride)  # view, no copy
    w_sq = weight.data[:, 0]  # (C, kh, kw)
    out = np.einsum("ncijpq,cij->ncpq", cols, w_sq, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)
    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _GradMode.enabled or not any(p.requires_grad for p in parents):
        return Tensor(out)

    def backward(grad):
        pairs = []
        if x.requires_grad:
            gx = np.zeros(x.shape, dtype=x.data.dtype)
            for i in range(kh):
                for j in range(kw):
                    gx[:, :, i:i + stride * oh:stride,
                       j:j + stride * ow:stride] += (
                        grad * w_sq[None, :, i, j, None, None])
            pairs.append((x, gx))
        if weight.requires_grad:
            gw = np.einsum("ncpq,ncijpq->cij", grad, cols, optimize=True)
            pairs.append((weight, gw[:, None]))
        if bias is not None and bias.requires_grad:
            pairs.append((bias, grad.sum(axis=(0, 2, 3))))
        return pairs

    return Tensor._make(out, parents, backward)


@_op("conv2d")
def _conv2d_generic(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                    stride: int, groups: int) -> Tensor:
    """Generic grouped convolution via materialised im2col columns."""
    n, c_in, h, w = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    co_g = c_out // groups

    cols = _im2col(x.data, kh, kw, stride)  # (N, C, kh, kw, OH, OW)
    # Group the channel axis: (N, G, OH*OW, C_in_g*kh*kw)
    cols_g = cols.reshape(n, groups, c_in_g, kh, kw, oh, ow)
    cols_mat = cols_g.transpose(0, 1, 5, 6, 2, 3, 4).reshape(
        n, groups, oh * ow, c_in_g * kh * kw)
    w_mat = weight.data.reshape(groups, co_g, c_in_g * kh * kw)

    # (n, g, oh*ow, co_g) = (n, g, oh*ow, ckk) @ (g, ckk, co_g)
    out_mat = np.einsum("ngpk,gok->ngpo", cols_mat, w_mat, optimize=True)
    out = out_mat.transpose(0, 1, 3, 2).reshape(n, c_out, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _GradMode.enabled or not any(p.requires_grad for p in parents):
        return Tensor(out)

    def backward(grad):
        grad_mat = grad.reshape(n, groups, co_g, oh * ow).transpose(0, 1, 3, 2)
        pairs = []
        if x.requires_grad:
            # dX columns: (n,g,p,k) = grad (n,g,p,o) @ w (g,o,k)
            gcols_mat = np.einsum("ngpo,gok->ngpk", grad_mat, w_mat,
                                  optimize=True)
            gcols = gcols_mat.reshape(n, groups, oh, ow, c_in_g, kh, kw)
            gcols = gcols.transpose(0, 1, 4, 5, 6, 2, 3).reshape(
                n, c_in, kh, kw, oh, ow)
            pairs.append((x, _col2im(gcols, (n, c_in, h, w), kh, kw, stride)))
        if weight.requires_grad:
            # dW: (g, o, k) = sum_n,p grad (n,g,p,o) * cols (n,g,p,k)
            gw = np.einsum("ngpo,ngpk->gok", grad_mat, cols_mat, optimize=True)
            pairs.append((weight, gw.reshape(c_out, c_in_g, kh, kw)))
        if bias is not None and bias.requires_grad:
            pairs.append((bias, grad.sum(axis=(0, 2, 3))))
        return pairs

    return Tensor._make(out, parents, backward)


def avg_pool_global(x: Tensor) -> Tensor:
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""
    return mean(x, axis=(2, 3))


# ----------------------------------------------------------------------
# Operator overloads
# ----------------------------------------------------------------------

Tensor.__add__ = lambda self, other: add(self, other)
Tensor.__radd__ = lambda self, other: add(_as_tensor(other), self)
Tensor.__sub__ = lambda self, other: sub(self, other)
Tensor.__rsub__ = lambda self, other: sub(_as_tensor(other), self)
Tensor.__mul__ = lambda self, other: mul(self, other)
Tensor.__rmul__ = lambda self, other: mul(_as_tensor(other), self)
Tensor.__truediv__ = lambda self, other: div(self, other)
Tensor.__rtruediv__ = lambda self, other: div(_as_tensor(other), self)
Tensor.__neg__ = neg
Tensor.__pow__ = pow_
Tensor.__matmul__ = matmul
Tensor.__getitem__ = getitem

Tensor.sum = sum_
Tensor.mean = mean
Tensor.reshape = reshape
Tensor.transpose = transpose
Tensor.exp = exp
Tensor.log = log
Tensor.sqrt = sqrt
