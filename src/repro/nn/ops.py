"""Differentiable operations for :class:`repro.nn.Tensor`.

Each function builds the forward value with numpy and registers a backward
closure returning ``(parent, gradient_contribution)`` pairs.  Importing this
module attaches the Python operator overloads (``+``, ``*``, ``@`` …) to
:class:`Tensor`; :mod:`repro.nn` performs that import, so users never need to
import this module directly.

Convolution is implemented with im2col/col2im, supporting stride, symmetric
padding and grouped kernels (which covers the depthwise convolutions used by
the MBConv operators of the LightNAS search space).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, _unbroadcast

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow_", "exp", "log", "sqrt",
    "matmul", "sum_", "mean", "clip", "relu", "relu6", "sigmoid", "tanh",
    "reshape", "transpose", "concat", "pad2d", "conv2d", "avg_pool_global",
    "maximum", "getitem", "stack", "dropout_mask",
]


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def add(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data + b.data

    def backward(grad):
        return [(a, _unbroadcast(grad, a.shape)), (b, _unbroadcast(grad, b.shape))]

    return Tensor._make(out, (a, b), backward)


def sub(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data - b.data

    def backward(grad):
        return [(a, _unbroadcast(grad, a.shape)), (b, _unbroadcast(-grad, b.shape))]

    return Tensor._make(out, (a, b), backward)


def mul(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data * b.data

    def backward(grad):
        return [
            (a, _unbroadcast(grad * b.data, a.shape)),
            (b, _unbroadcast(grad * a.data, b.shape)),
        ]

    return Tensor._make(out, (a, b), backward)


def div(a: Tensor, b) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data / b.data

    def backward(grad):
        return [
            (a, _unbroadcast(grad / b.data, a.shape)),
            (b, _unbroadcast(-grad * a.data / (b.data ** 2), b.shape)),
        ]

    return Tensor._make(out, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    out = -a.data

    def backward(grad):
        return [(a, -grad)]

    return Tensor._make(out, (a,), backward)


def pow_(a: Tensor, exponent: float) -> Tensor:
    """Raise to a constant power (the exponent is not differentiated)."""
    exponent = float(exponent)
    out = a.data ** exponent

    def backward(grad):
        return [(a, grad * exponent * a.data ** (exponent - 1.0))]

    return Tensor._make(out, (a,), backward)


def exp(a: Tensor) -> Tensor:
    out = np.exp(a.data)

    def backward(grad):
        return [(a, grad * out)]

    return Tensor._make(out, (a,), backward)


def log(a: Tensor) -> Tensor:
    out = np.log(a.data)

    def backward(grad):
        return [(a, grad / a.data)]

    return Tensor._make(out, (a,), backward)


def sqrt(a: Tensor) -> Tensor:
    out = np.sqrt(a.data)

    def backward(grad):
        return [(a, grad * 0.5 / out)]

    return Tensor._make(out, (a,), backward)


def maximum(a: Tensor, b) -> Tensor:
    """Elementwise maximum; ties route the gradient to the first argument."""
    a, b = _as_tensor(a), _as_tensor(b)
    out = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def backward(grad):
        return [
            (a, _unbroadcast(grad * a_wins, a.shape)),
            (b, _unbroadcast(grad * ~a_wins, b.shape)),
        ]

    return Tensor._make(out, (a, b), backward)


def clip(a: Tensor, low: float, high: float) -> Tensor:
    """Clamp to ``[low, high]``; gradient is 1 strictly inside the band."""
    out = np.clip(a.data, low, high)
    inside = (a.data > low) & (a.data < high)

    def backward(grad):
        return [(a, grad * inside)]

    return Tensor._make(out, (a,), backward)


def relu(a: Tensor) -> Tensor:
    out = np.maximum(a.data, 0.0)
    mask = a.data > 0.0

    def backward(grad):
        return [(a, grad * mask)]

    return Tensor._make(out, (a,), backward)


def relu6(a: Tensor) -> Tensor:
    """ReLU6, the activation used throughout MobileNetV2-style blocks."""
    return clip(a, 0.0, 6.0)


def sigmoid(a: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return [(a, grad * out * (1.0 - out))]

    return Tensor._make(out, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    out = np.tanh(a.data)

    def backward(grad):
        return [(a, grad * (1.0 - out ** 2))]

    return Tensor._make(out, (a,), backward)


def dropout_mask(a: Tensor, mask: np.ndarray, scale: float) -> Tensor:
    """Multiply by a fixed 0/1 mask and rescale (inverted dropout)."""
    out = a.data * mask * scale

    def backward(grad):
        return [(a, grad * mask * scale)]

    return Tensor._make(out, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra and reductions
# ----------------------------------------------------------------------

def matmul(a: Tensor, b: Tensor) -> Tensor:
    a, b = _as_tensor(a), _as_tensor(b)
    out = a.data @ b.data

    def backward(grad):
        if a.data.ndim == 1 and b.data.ndim == 1:  # inner product
            return [(a, grad * b.data), (b, grad * a.data)]
        if a.data.ndim == 1:  # (k,) @ (k, n)
            return [(a, grad @ b.data.T), (b, np.outer(a.data, grad))]
        if b.data.ndim == 1:  # (m, k) @ (k,)
            return [(a, np.outer(grad, b.data)), (b, a.data.T @ grad)]
        ga = grad @ np.swapaxes(b.data, -1, -2)
        gb = np.swapaxes(a.data, -1, -2) @ grad
        return [(a, _unbroadcast(ga, a.shape)), (b, _unbroadcast(gb, b.shape))]

    return Tensor._make(out, (a, b), backward)


def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        g = np.asarray(grad)
        if axis is not None and not keepdims:
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(ax % a.data.ndim for ax in axes)
            g = np.expand_dims(g, axis=tuple(sorted(axes)))
        return [(a, np.broadcast_to(g, a.shape))]

    return Tensor._make(out, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.data.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([a.data.shape[ax] for ax in axes]))
    return sum_(a, axis=axis, keepdims=keepdims) * (1.0 / count)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

def reshape(a: Tensor, shape) -> Tensor:
    out = a.data.reshape(shape)

    def backward(grad):
        return [(a, grad.reshape(a.shape))]

    return Tensor._make(out, (a,), backward)


def transpose(a: Tensor, axes=None) -> Tensor:
    out = np.transpose(a.data, axes)

    def backward(grad):
        inverse = None if axes is None else np.argsort(axes)
        return [(a, np.transpose(grad, inverse))]

    return Tensor._make(out, (a,), backward)


def getitem(a: Tensor, index) -> Tensor:
    out = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return [(a, full)]

    return Tensor._make(out, (a,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pairs = []
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            pairs.append((t, grad[tuple(index)]))
        return pairs

    return Tensor._make(out, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slices = np.split(grad, len(tensors), axis=axis)
        return [(t, np.squeeze(s, axis=axis)) for t, s in zip(tensors, slices)]

    return Tensor._make(out, tuple(tensors), backward)


def pad2d(a: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return a
    p = int(padding)
    out = np.pad(a.data, ((0, 0), (0, 0), (p, p), (p, p)))

    def backward(grad):
        return [(a, grad[:, :, p:-p, p:-p])]

    return Tensor._make(out, (a,), backward)


# ----------------------------------------------------------------------
# Convolution (im2col) and pooling
# ----------------------------------------------------------------------

def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Extract sliding windows: (N, C, H, W) -> (N, C, kh, kw, OH, OW)."""
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, oh, ow)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)


def _col2im(cols: np.ndarray, x_shape: tuple, kh: int, kw: int, stride: int) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add windows back to the image."""
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols[
                :, :, i, j, :, :
            ]
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution on NCHW input.

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Kernels of shape ``(C_out, C_in // groups, KH, KW)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride, padding:
        Symmetric stride/zero padding on both spatial axes.
    groups:
        Number of channel groups; ``groups == C_in`` with ``C_out == C_in``
        gives a depthwise convolution.
    """
    if padding:
        x = pad2d(x, padding)

    n, c_in, h, w = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in_g * groups != c_in:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in} channels, "
            f"weight expects {c_in_g}×{groups} groups"
        )
    if c_out % groups != 0:
        raise ValueError(f"c_out={c_out} not divisible by groups={groups}")
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    co_g = c_out // groups

    cols = _im2col(x.data, kh, kw, stride)  # (N, C, kh, kw, OH, OW)
    # Group the channel axis: (N, G, C_in_g*kh*kw, OH*OW)
    cols_g = cols.reshape(n, groups, c_in_g, kh, kw, oh, ow)
    cols_mat = cols_g.transpose(0, 1, 5, 6, 2, 3, 4).reshape(n, groups, oh * ow, c_in_g * kh * kw)
    w_mat = weight.data.reshape(groups, co_g, c_in_g * kh * kw)

    # (n, g, oh*ow, co_g) = (n, g, oh*ow, ckk) @ (g, ckk, co_g)
    out_mat = np.einsum("ngpk,gok->ngpo", cols_mat, w_mat, optimize=True)
    out = out_mat.transpose(0, 1, 3, 2).reshape(n, c_out, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_mat = grad.reshape(n, groups, co_g, oh * ow).transpose(0, 1, 3, 2)  # n,g,p,o
        # dW: (g, o, k) = sum_n,p grad (n,g,p,o) * cols (n,g,p,k)
        gw = np.einsum("ngpo,ngpk->gok", grad_mat, cols_mat, optimize=True)
        gw = gw.reshape(c_out, c_in_g, kh, kw)
        # dX columns: (n,g,p,k) = grad (n,g,p,o) @ w (g,o,k)
        gcols_mat = np.einsum("ngpo,gok->ngpk", grad_mat, w_mat, optimize=True)
        gcols = gcols_mat.reshape(n, groups, oh, ow, c_in_g, kh, kw)
        gcols = gcols.transpose(0, 1, 4, 5, 6, 2, 3).reshape(n, c_in, kh, kw, oh, ow)
        gx = _col2im(gcols, (n, c_in, h, w), kh, kw, stride)
        pairs = [(x, gx), (weight, gw)]
        if bias is not None:
            pairs.append((bias, grad.sum(axis=(0, 2, 3))))
        return pairs

    return Tensor._make(out, parents, backward)


def avg_pool_global(x: Tensor) -> Tensor:
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""
    return mean(x, axis=(2, 3))


# ----------------------------------------------------------------------
# Operator overloads
# ----------------------------------------------------------------------

Tensor.__add__ = lambda self, other: add(self, other)
Tensor.__radd__ = lambda self, other: add(_as_tensor(other), self)
Tensor.__sub__ = lambda self, other: sub(self, other)
Tensor.__rsub__ = lambda self, other: sub(_as_tensor(other), self)
Tensor.__mul__ = lambda self, other: mul(self, other)
Tensor.__rmul__ = lambda self, other: mul(_as_tensor(other), self)
Tensor.__truediv__ = lambda self, other: div(self, other)
Tensor.__rtruediv__ = lambda self, other: div(_as_tensor(other), self)
Tensor.__neg__ = neg
Tensor.__pow__ = pow_
Tensor.__matmul__ = matmul
Tensor.__getitem__ = getitem

Tensor.sum = sum_
Tensor.mean = mean
Tensor.reshape = reshape
Tensor.transpose = transpose
Tensor.exp = exp
Tensor.log = log
Tensor.sqrt = sqrt
