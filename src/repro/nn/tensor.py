"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate that replaces
PyTorch in this reproduction.  A :class:`Tensor` wraps a numpy array and
records the operations applied to it on a dynamic tape; calling
:meth:`Tensor.backward` walks the tape in reverse topological order and
accumulates gradients into the leaves, exactly like ``torch.Tensor.backward``.

Only the operations needed by the paper's equations (supernet forward,
Gumbel-Softmax relaxation, MLP predictors, SGD/Adam updates) are implemented,
but each is implemented fully and is gradient-checked in the test suite
against central finite differences.

Design notes
------------
* Every non-leaf tensor stores a ``_backward`` closure that maps the output
  gradient to a list of ``(parent, gradient_contribution)`` pairs.  The
  public :meth:`Tensor.backward` performs an iterative topological sort (no
  recursion, so deep supernets do not hit the interpreter stack limit) and
  routes contributions through a per-call dictionary, accumulating into
  ``leaf.grad`` only at leaves.
* Data is stored in the process-wide default compute dtype — ``float64``
  unless :func:`set_default_dtype` (or the ``REPRO_NN_DTYPE`` environment
  variable) opts into ``float32``.  The float64 default keeps seeded runs
  bit-identical and finite-difference gradient checks tight; float32 halves
  memory traffic for supernet training.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import profiler

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]
BackwardFn = Callable[[np.ndarray], List[Tuple["Tensor", np.ndarray]]]

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "set_default_dtype",
           "get_default_dtype", "dtype_scope", "tensor_allocations"]

#: compute dtypes the engine supports (float64 is the bit-stable default)
_SUPPORTED_DTYPES = {"float64": np.float64, "float32": np.float32}


class _DtypeState:
    """Process-wide default compute dtype for new tensors."""

    value: np.dtype = np.dtype(np.float64)


def set_default_dtype(dtype: Union[str, np.dtype, type]) -> np.dtype:
    """Set the dtype new :class:`Tensor` data is stored in; returns the old.

    ``float64`` (the default) keeps every seeded run bit-identical to the
    historical engine; ``float32`` halves memory traffic for supernet
    training at the cost of that guarantee.
    """
    name = np.dtype(dtype).name
    if name not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported nn dtype {name!r}; expected one of "
            f"{tuple(_SUPPORTED_DTYPES)}"
        )
    previous = _DtypeState.value
    _DtypeState.value = np.dtype(_SUPPORTED_DTYPES[name])
    return previous


def get_default_dtype() -> np.dtype:
    """The dtype currently used for new tensor data."""
    return _DtypeState.value


@contextmanager
def dtype_scope(dtype: Union[str, np.dtype, type]) -> Iterator[np.dtype]:
    """Temporarily switch the default compute dtype.

    >>> with dtype_scope("float32"):
    ...     Tensor([1.0]).data.dtype == np.float32
    True
    """
    previous = set_default_dtype(dtype)
    try:
        yield _DtypeState.value
    finally:
        _DtypeState.value = previous


# honour REPRO_NN_DTYPE=float32 for whole-process opt-in (e.g. benchmarks)
_env_dtype = os.environ.get("REPRO_NN_DTYPE")
if _env_dtype:
    set_default_dtype(_env_dtype)


class _GradMode:
    """Global switch mirroring ``torch.no_grad`` semantics."""

    enabled: bool = True


class _AllocStats:
    """Always-on engine allocation counter (one int increment per Tensor).

    Every :class:`Tensor` construction — and therefore every tape node and
    eager op output — bumps :attr:`tensors`.  The step-replay benchmark
    reads the delta across a training step to show that compiled plans
    (:mod:`repro.nn.plan`) construct ~zero tensors per replayed step.
    """

    tensors: int = 0


def tensor_allocations() -> int:
    """Total :class:`Tensor` objects constructed since process start."""
    return _AllocStats.tensors


class no_grad:
    """Context manager that disables tape recording.

    Example
    -------
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GradMode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GradMode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Numpy broadcasting either prepends axes or stretches size-1 axes; the
    adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like initial value (stored in the default compute dtype,
        ``float64`` unless changed via :func:`set_default_dtype`).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.
    name:
        Optional label used in error messages and debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        _AllocStats.tensors += 1
        self.data: np.ndarray = np.asarray(data, dtype=_DtypeState.value)
        self.requires_grad: bool = bool(requires_grad) and _GradMode.enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[BackwardFn] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copied leaf tensor with the same data and grad flag."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_tag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Tape construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"], backward: BackwardFn) -> "Tensor":
        """Create a non-leaf tensor recording ``backward`` on the tape.

        ``backward`` maps the output gradient to ``(parent, contribution)``
        pairs; contributions for parents with ``requires_grad=False`` are
        ignored by the backward sweep.
        """
        parents = tuple(parents)
        out = Tensor(data)
        if _GradMode.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor into every reachable leaf.

        Parameters
        ----------
        grad:
            Incoming gradient with the same shape as :attr:`data`; defaults
            to ones, so calling ``backward()`` on a scalar loss needs no
            argument.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        # Iterative DFS topological sort of the reachable tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        prof = profiler.active_profile()
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            if prof is None:
                pairs = node._backward(node_grad)
            else:
                start = time.perf_counter()
                pairs = node._backward(node_grad)
                prof.record(f"{node.name or 'op'}.bwd",
                            time.perf_counter() - start)
            for parent, contribution in pairs:
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = np.asarray(contribution,
                                            dtype=parent.data.dtype)


# Exposed for ops.py, which implements the arithmetic and attaches the
# operator overloads to Tensor.
Tensor._unbroadcast = staticmethod(_unbroadcast)  # type: ignore[attr-defined]
