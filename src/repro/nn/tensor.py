"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate that replaces
PyTorch in this reproduction.  A :class:`Tensor` wraps a numpy array and
records the operations applied to it on a dynamic tape; calling
:meth:`Tensor.backward` walks the tape in reverse topological order and
accumulates gradients into the leaves, exactly like ``torch.Tensor.backward``.

Only the operations needed by the paper's equations (supernet forward,
Gumbel-Softmax relaxation, MLP predictors, SGD/Adam updates) are implemented,
but each is implemented fully and is gradient-checked in the test suite
against central finite differences.

Design notes
------------
* Every non-leaf tensor stores a ``_backward`` closure that maps the output
  gradient to a list of ``(parent, gradient_contribution)`` pairs.  The
  public :meth:`Tensor.backward` performs an iterative topological sort (no
  recursion, so deep supernets do not hit the interpreter stack limit) and
  routes contributions through a per-call dictionary, accumulating into
  ``leaf.grad`` only at leaves.
* Data is stored as ``float64``: the library's workloads are small (this is
  a single-core reproduction) and the precision keeps finite-difference
  gradient checks tight.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]
BackwardFn = Callable[[np.ndarray], List[Tuple["Tensor", np.ndarray]]]

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class _GradMode:
    """Global switch mirroring ``torch.no_grad`` semantics."""

    enabled: bool = True


class no_grad:
    """Context manager that disables tape recording.

    Example
    -------
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _GradMode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _GradMode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Numpy broadcasting either prepends axes or stretches size-1 axes; the
    adjoint of broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like initial value (stored as ``float64``).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream tensor.
    name:
        Optional label used in error messages and debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=np.float64)
        self.requires_grad: bool = bool(requires_grad) and _GradMode.enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[BackwardFn] = None
        self._parents: tuple = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a copied leaf tensor with the same data and grad flag."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_tag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Tape construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"], backward: BackwardFn) -> "Tensor":
        """Create a non-leaf tensor recording ``backward`` on the tape.

        ``backward`` maps the output gradient to ``(parent, contribution)``
        pairs; contributions for parents with ``requires_grad=False`` are
        ignored by the backward sweep.
        """
        parents = tuple(parents)
        out = Tensor(data)
        if _GradMode.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor into every reachable leaf.

        Parameters
        ----------
        grad:
            Incoming gradient with the same shape as :attr:`data`; defaults
            to ones, so calling ``backward()`` on a scalar loss needs no
            argument.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        # Iterative DFS topological sort of the reachable tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            for parent, contribution in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = np.asarray(contribution, dtype=np.float64)


# Exposed for ops.py, which implements the arithmetic and attaches the
# operator overloads to Tensor.
Tensor._unbroadcast = staticmethod(_unbroadcast)  # type: ignore[attr-defined]
