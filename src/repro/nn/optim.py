"""Optimizers and learning-rate schedules.

Implements exactly the optimisation recipe of LightNAS §4.1:

* :class:`SGD` with momentum and decoupled weight decay — used for the
  supernet weights ``w`` (lr 0.1, momentum 0.9, wd 3e-5, cosine anneal).
* :class:`Adam` — used for the architecture parameters ``α``
  (lr 1e-3, wd 1e-3).
* :class:`GradientAscent` — used for the constraint multiplier ``λ``
  (fixed lr 5e-4, *ascent*, Eq. 11).
* :class:`CosineSchedule` with linear warmup — the evaluation protocol warms
  up from 0.1 to 0.5 over 5 epochs then cosine-decays to zero.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "GradientAscent", "CosineSchedule"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Compiled-epoch support (repro.core.lightnas._EpochPlan): pre-bound
    # per-parameter update closures so a replayed epoch applies exactly the
    # arithmetic of step() without iterating every parameter or checking
    # grads for None.  Closures read live hyperparameters (lr, schedules)
    # at call time; callers must invoke begin_step() once per logical step
    # before running them (it advances shared state such as Adam's t).
    def begin_step(self) -> None:
        """Advance per-step shared state; no-op for stateless updates."""

    def bind_param_updates(self, params: Iterable[Tensor]) -> List:
        """In-place update closures for ``params`` (each must be owned by
        this optimizer and carry a gradient when the closure runs)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def _param_index(self, p: Tensor) -> int:
        for i, q in enumerate(self.params):
            if q is p:
                return i
        raise KeyError(
            "bind_param_updates got a tensor this optimizer does not own")

    # ------------------------------------------------------------------
    # Checkpoint support: internal slots (momentum buffers, Adam moments)
    # as a flat name → array mapping, round-tripping exactly.
    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Internal optimizer state (empty for stateless optimizers)."""
        return {}

    def load_state_arrays(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_arrays` (strict)."""
        if state:
            raise KeyError(
                f"{type(self).__name__} is stateless but got state keys "
                f"{sorted(state)}"
            )


class SGD(Optimizer):
    """SGD with classical momentum and L2 weight decay.

    ``v ← μ v + (g + wd·p)``; ``p ← p − lr·v``.

    Updates are written **in place** through preallocated scratch buffers:
    ``p.data`` stays the same array object across steps, which is what lets
    compiled step plans (:mod:`repro.nn.plan`) bind parameter arrays once at
    compile time.  Every ``out=`` sequence reproduces the historical
    expression operand-for-operand, so trajectories are bit-identical.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v, s in zip(self.params, self._velocity, self._scratch):
            if p.grad is None:
                continue
            self._update(p, v, s)

    def _update(self, p: Tensor, v: np.ndarray, s: np.ndarray) -> None:
        g = p.grad
        if self.weight_decay:
            # g + wd·p  (scalar·array multiplies commute bitwise)
            np.multiply(p.data, self.weight_decay, out=s)
            np.add(g, s, out=s)
            g = s
        v *= self.momentum
        v += g
        # p ← p − lr·v
        np.multiply(v, self.lr, out=s)
        np.subtract(p.data, s, out=p.data)

    def bind_param_updates(self, params: Iterable[Tensor]) -> List:
        bound = []
        for p in params:
            i = self._param_index(p)
            v, s = self._velocity[i], self._scratch[i]
            bound.append(lambda p=p, v=v, s=s: self._update(p, v, s))
        return bound

    def state_arrays(self) -> Dict[str, np.ndarray]:
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_arrays(self, state: Dict[str, np.ndarray]) -> None:
        for i, v in enumerate(self._velocity):
            key = f"velocity.{i}"
            if key not in state:
                raise KeyError(f"missing optimizer state {key}")
            if state[key].shape != v.shape:
                raise ValueError(f"shape mismatch for optimizer state {key}")
            v[...] = state[key]


class Adam(Optimizer):
    """Adam with bias correction and L2 weight decay.

    Like :class:`SGD`, the update runs in place through two preallocated
    scratch buffers per parameter (``p.data`` keeps its identity for the
    step-plan compiler) and reproduces the historical expression
    operand-for-operand, bit-identically.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._scratch = [(np.empty_like(p.data), np.empty_like(p.data))
                         for p in self.params]
        self._t = 0
        self._bc = (1.0, 1.0)

    def begin_step(self) -> None:
        self._t += 1
        self._bc = (1.0 - self.beta1 ** self._t, 1.0 - self.beta2 ** self._t)

    def step(self) -> None:
        self.begin_step()
        for p, m, v, (s1, s2) in zip(self.params, self._m, self._v,
                                     self._scratch):
            if p.grad is None:
                continue
            self._update(p, m, v, s1, s2)

    def _update(self, p: Tensor, m: np.ndarray, v: np.ndarray,
                s1: np.ndarray, s2: np.ndarray) -> None:
        bc1, bc2 = self._bc
        g = p.grad
        if self.weight_decay:
            np.multiply(p.data, self.weight_decay, out=s1)
            np.add(g, s1, out=s1)
            g = s1
        m *= self.beta1
        np.multiply(g, 1 - self.beta1, out=s2)
        m += s2
        v *= self.beta2
        # (1−β2)·g·g evaluates left-to-right: ((1−β2)·g)·g
        np.multiply(g, 1 - self.beta2, out=s2)
        np.multiply(s2, g, out=s2)
        v += s2
        # p ← p − (lr·(m/bc1)) / (sqrt(v/bc2) + eps); g (possibly s1)
        # is fully consumed above, so s1 is free to hold the divisor
        np.divide(m, bc1, out=s2)
        np.multiply(s2, self.lr, out=s2)
        np.divide(v, bc2, out=s1)
        np.sqrt(s1, out=s1)
        np.add(s1, self.eps, out=s1)
        np.divide(s2, s1, out=s2)
        np.subtract(p.data, s2, out=p.data)

    def bind_param_updates(self, params: Iterable[Tensor]) -> List:
        bound = []
        for p in params:
            i = self._param_index(p)
            m, v = self._m[i], self._v[i]
            s1, s2 = self._scratch[i]
            bound.append(lambda p=p, m=m, v=v, s1=s1, s2=s2:
                         self._update(p, m, v, s1, s2))
        return bound

    def state_arrays(self) -> Dict[str, np.ndarray]:
        state = {"t": np.array(self._t, dtype=np.int64)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_arrays(self, state: Dict[str, np.ndarray]) -> None:
        if "t" not in state:
            raise KeyError("missing optimizer state t")
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            for key, slot in ((f"m.{i}", m), (f"v.{i}", v)):
                if key not in state:
                    raise KeyError(f"missing optimizer state {key}")
                if state[key].shape != slot.shape:
                    raise ValueError(f"shape mismatch for optimizer state {key}")
                slot[...] = state[key]
        self._t = int(state["t"])


class GradientAscent(Optimizer):
    """Plain gradient *ascent*: ``p ← p + lr · grad``.

    LightNAS uses this for the trade-off multiplier ``λ`` (Eq. 11), whose
    gradient is ``LAT(α)/T − 1``; ascending λ when latency exceeds the
    target strengthens the latency penalty, closing the loop that drives
    ``LAT(α) → T``.
    """

    def __init__(self, params: Iterable[Tensor], lr: float, floor: Optional[float] = 0.0) -> None:
        super().__init__(params, lr)
        self.floor = floor
        self._scratch = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, s in zip(self.params, self._scratch):
            if p.grad is None:
                continue
            self._update(p, s)

    def _update(self, p: Tensor, s: np.ndarray) -> None:
        # p ← p + lr·grad, in place (bit-identical to the historical
        # rebinding update; see SGD)
        np.multiply(p.grad, self.lr, out=s)
        np.add(p.data, s, out=p.data)
        if self.floor is not None:
            np.maximum(p.data, self.floor, out=p.data)

    def bind_param_updates(self, params: Iterable[Tensor]) -> List:
        bound = []
        for p in params:
            s = self._scratch[self._param_index(p)]
            bound.append(lambda p=p, s=s: self._update(p, s))
        return bound


class CosineSchedule:
    """Cosine learning-rate decay with optional linear warmup.

    Parameters
    ----------
    base_lr:
        Peak learning rate reached at the end of warmup.
    total_steps:
        Number of steps over which to decay to ``final_lr``.
    warmup_steps / warmup_start_lr:
        Linear ramp from ``warmup_start_lr`` to ``base_lr`` over the first
        ``warmup_steps`` steps (the paper warms 0.1 → 0.5 over 5 epochs).
    """

    def __init__(
        self,
        base_lr: float,
        total_steps: int,
        warmup_steps: int = 0,
        warmup_start_lr: float = 0.0,
        final_lr: float = 0.0,
    ) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps >= total_steps:
            raise ValueError("warmup_steps must be smaller than total_steps")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps
        self.warmup_start_lr = warmup_start_lr
        self.final_lr = final_lr

    def lr_at(self, step: int) -> float:
        """Learning rate for 0-indexed ``step`` (clamped to the schedule)."""
        step = max(0, min(step, self.total_steps))
        if self.warmup_steps and step < self.warmup_steps:
            frac = step / self.warmup_steps
            return self.warmup_start_lr + frac * (self.base_lr - self.warmup_start_lr)
        span = self.total_steps - self.warmup_steps
        progress = (step - self.warmup_steps) / span
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_lr + (self.base_lr - self.final_lr) * cos

    def apply(self, optimizer: Optimizer, step: int) -> float:
        """Set ``optimizer.lr`` for ``step`` and return it."""
        lr = self.lr_at(step)
        optimizer.lr = lr
        return lr
