"""Lightweight per-op profiler for the :mod:`repro.nn` engine.

:func:`profile` opens a context during which every primitive op in
:mod:`repro.nn.ops` records its wall time and call count under its op kind
(``conv2d_dw``, ``matmul``, …); backward closures executed by
:meth:`Tensor.backward` are recorded under ``<kind>.bwd``.  Outside the
context the instrumentation cost is one module-attribute check per op call,
so training speed is unaffected when profiling is off.

The aggregate feeds the search engines' journal epochs
(``LightNASConfig(profile_ops=True)``) and is rendered by
``python -m repro trace-summary --ops``.

>>> from repro import nn
>>> with nn.profiler.profile() as prof:
...     _ = nn.Tensor([1.0]) + nn.Tensor([2.0])
>>> prof.as_dict()["add"]["calls"]
1
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["OpProfile", "profile", "active_profile", "merge_profiles",
           "fused_breakdown"]

#: the currently-open profile, or None (checked by ops.py per call)
_active: Optional["OpProfile"] = None


class OpProfile:
    """Wall-time and call-count aggregate keyed by op kind."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._bytes: Dict[str, int] = {}

    def record(self, kind: str, elapsed_s: float, nbytes: int = 0) -> None:
        self._totals[kind] = self._totals.get(kind, 0.0) + elapsed_s
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if nbytes:
            self._bytes[kind] = self._bytes.get(kind, 0) + nbytes

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()
        self._bytes.clear()

    def __len__(self) -> int:
        return len(self._totals)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """``{kind: {"total_ms", "calls", "mean_ms", "alloc_bytes"}}``.

        Sorted by descending total time.  ``alloc_bytes`` counts the bytes of
        every freshly-materialised op output (eager steps allocate each
        output anew; replayed step plans write into arena buffers instead
        and record ~0 here).
        """
        out: Dict[str, Dict[str, float]] = {}
        for kind in sorted(self._totals, key=self._totals.get, reverse=True):
            total_ms = self._totals[kind] * 1e3
            calls = self._counts[kind]
            out[kind] = {
                "total_ms": round(total_ms, 4),
                "calls": calls,
                "mean_ms": round(total_ms / calls, 6),
                "alloc_bytes": int(self._bytes.get(kind, 0)),
            }
        return out


def active_profile() -> Optional[OpProfile]:
    """The profile currently collecting, or None when profiling is off."""
    return _active


@contextmanager
def profile(target: Optional[OpProfile] = None) -> Iterator[OpProfile]:
    """Collect per-op timings for the duration of the context.

    Pass an existing :class:`OpProfile` as ``target`` to accumulate across
    several contexts (e.g. one profile per search epoch).  Nested contexts
    simply stack: the innermost target collects.
    """
    global _active
    prof = target if target is not None else OpProfile()
    previous = _active
    _active = prof
    try:
        yield prof
    finally:
        _active = previous


def fused_breakdown(profile: Dict[str, Dict[str, float]]
                    ) -> Dict[str, object]:
    """Summarise the fused-kernel share of an :meth:`OpProfile.as_dict`.

    Replayed step plans record each fused kernel under a distinct
    ``fused:<chain>`` kind (``fused:conv2d_dw.cols``,
    ``fused:relu+add.bwd(+3)``, ``fused:conv2d_1x1+bn``, …) while ordinary
    lowered kernels keep their traced ``<kind>.replay`` / ``<kind>.bwd``
    labels.  Returns ``{"kinds": {fused kind: row}, "fused_ms",
    "total_ms", "fused_fraction"}`` so benchmarks and journals can report
    how much replay time ran inside fused kernels.
    """
    kinds = {k: dict(v) for k, v in profile.items() if k.startswith("fused:")}
    fused_ms = sum(float(row.get("total_ms", 0.0)) for row in kinds.values())
    total_ms = sum(float(row.get("total_ms", 0.0)) for row in profile.values())
    return {
        "kinds": kinds,
        "fused_ms": round(fused_ms, 4),
        "total_ms": round(total_ms, 4),
        "fused_fraction": round(fused_ms / total_ms, 4) if total_ms else 0.0,
    }


def merge_profiles(acc: Dict[str, Dict[str, float]],
                   update: Dict[str, Dict[str, float]]) -> Dict[str, Dict[str, float]]:
    """Merge two :meth:`OpProfile.as_dict` payloads (totals and calls add)."""
    for kind, row in update.items():
        slot = acc.setdefault(kind, {"total_ms": 0.0, "calls": 0, "mean_ms": 0.0})
        slot["total_ms"] = round(slot["total_ms"] + row.get("total_ms", 0.0), 4)
        slot["calls"] = int(slot["calls"]) + int(row.get("calls", 0))
        if slot["calls"]:
            slot["mean_ms"] = round(slot["total_ms"] / slot["calls"], 6)
        # alloc_bytes arrived with the step-plan work; tolerate old payloads
        new_bytes = int(row.get("alloc_bytes", 0))
        if new_bytes or "alloc_bytes" in slot:
            slot["alloc_bytes"] = int(slot.get("alloc_bytes", 0)) + new_bytes
    return acc
