"""Neural-network modules on top of the :class:`repro.nn.Tensor` autograd.

Provides the layer vocabulary needed by the LightNAS supernet and by the MLP
latency/energy predictors:

* :class:`Linear`, :class:`Conv2d` (with groups, i.e. depthwise),
  :class:`BatchNorm2d`, activations, :class:`Dropout`,
  :class:`GlobalAvgPool`, :class:`Sequential`, :class:`Identity`.
* :class:`SqueezeExcite` for the Table-4 SE ablation.

The :class:`Module` base class mirrors the small part of ``torch.nn.Module``
this project needs: recursive parameter collection, train/eval mode, and a
flat ``state_dict`` for save/load round trips.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init, ops
from .tensor import Tensor, get_default_dtype, no_grad

__all__ = [
    "Module", "Parameter", "Sequential", "Identity", "Linear", "Conv2d",
    "BatchNorm2d", "ReLU", "ReLU6", "Sigmoid", "Dropout", "GlobalAvgPool",
    "Flatten", "SqueezeExcite",
]


class Parameter(Tensor):
    """A tensor that is registered as learnable by its owning module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with recursive parameter/submodule registration.

    Attribute assignment of a :class:`Parameter` or :class:`Module` registers
    it automatically, like PyTorch.  Buffers (non-learnable state such as
    batch-norm running statistics) are registered with
    :meth:`register_buffer`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state included in ``state_dict``.

        Floating-point buffers are stored in the engine's default compute
        dtype so float32 models keep running statistics in float32.
        """
        value = np.asarray(value)
        if value.dtype.kind == "f":
            value = value.astype(get_default_dtype(), copy=False)
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of the attribute."""
        if name not in self._buffers:
            raise KeyError(f"{name} is not a registered buffer")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All learnable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Flat mapping of parameter and buffer names to array copies."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = np.array(buf, copy=True)
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        """Load a mapping produced by :meth:`state_dict` (strict)."""
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key} in state dict")
            if state[key].shape != param.data.shape:
                raise ValueError(f"shape mismatch for {key}")
            # in-place copy: p.data must keep its identity so compiled step
            # plans (repro.nn.plan) stay bound to the live parameter array
            np.copyto(param.data, np.asarray(state[key]))
        for name, buf in self._buffers.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing buffer {key} in state dict")
            value = np.asarray(state[key])
            if value.shape != buf.shape:
                raise ValueError(f"shape mismatch for {key}")
            # in-place, like parameters: running statistics must keep their
            # identity for compiled step plans and their effect closures
            np.copyto(buf, value)
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules; iterable and indexable like a list."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            self._modules[str(i)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]


class Identity(Module):
    """The SkipConnect operator: returns its input unchanged."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), in_features, out_features, rng),
            name="linear.weight",
        )
        self.bias = Parameter(init.zeros(out_features), name="linear.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, ops.transpose(self.weight))
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution (NCHW) with optional groups for depthwise kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = False,
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels // groups, kernel_size, kernel_size), fan_in, rng
            ),
            name="conv.weight",
        )
        self.bias = Parameter(init.zeros(out_channels), name="conv.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding,
            groups=self.groups,
        )


class BatchNorm2d(Module):
    """Batch normalisation over NCHW with running statistics.

    In training mode normalises with batch statistics and updates running
    estimates with momentum; in eval mode uses the running estimates, which
    is what makes a derived single-path network behave identically to the
    corresponding supernet path (the "equality principle" of FairNAS that
    LightNAS §3.3 enforces).
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones(num_features), name="bn.gamma")
        self.beta = Parameter(init.zeros(num_features), name="bn.beta")
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            # running stats update in place (same pairwise add.reduce that
            # ndarray.mean()/var() dispatch to, so bit-identical to the
            # historical fresh-array form) and replays as a plan effect,
            # reading the live input buffer on every replayed step
            x_data = x.data
            momentum = self.momentum
            running_mean, running_var = self.running_mean, self.running_var
            ws = getattr(self, "_stats_ws", None)
            if (ws is None or ws[0] != x_data.shape
                    or ws[1] != x_data.dtype):
                ws = (x_data.shape, x_data.dtype,
                      np.empty_like(x_data),
                      np.empty((1, x_data.shape[1], 1, 1),
                               dtype=x_data.dtype),
                      np.empty(x_data.shape[1], dtype=x_data.dtype),
                      np.empty(x_data.shape[1], dtype=x_data.dtype))
                object.__setattr__(self, "_stats_ws", ws)
            _, _, diff, mean_keep, batch_mean, batch_var = ws
            count = x_data.dtype.type(
                x_data.shape[0] * x_data.shape[2] * x_data.shape[3])

            def _update_stats():
                np.add.reduce(x_data, axis=(0, 2, 3), out=batch_mean)
                np.divide(batch_mean, count, out=batch_mean)
                np.add.reduce(x_data, axis=(0, 2, 3), keepdims=True,
                              out=mean_keep)
                np.divide(mean_keep, count, out=mean_keep)
                np.subtract(x_data, mean_keep, out=diff)
                np.multiply(diff, diff, out=diff)
                np.add.reduce(diff, axis=(0, 2, 3), out=batch_var)
                np.divide(batch_var, count, out=batch_var)
                np.multiply(running_mean, 1 - momentum, out=running_mean)
                np.multiply(batch_mean, momentum, out=batch_mean)
                np.add(running_mean, batch_mean, out=running_mean)
                np.multiply(running_var, 1 - momentum, out=running_var)
                np.multiply(batch_var, momentum, out=batch_var)
                np.add(running_var, batch_var, out=running_var)

            _update_stats()
            ops.record_replay_effect(_update_stats)
            mean_t = ops.mean(x, axis=(0, 2, 3), keepdims=True)
            centered = x - mean_t
            var_t = ops.mean(centered * centered, axis=(0, 2, 3), keepdims=True)
            normed = centered / ops.sqrt(var_t + Tensor(self.eps))
        else:
            # eval mode normalizes against persistent views of the live
            # running stats: the constant-wrapper Tensors are cached so
            # repeated traces of the same module guard one tensor identity
            # instead of minting fresh wrappers per forward, and the plan
            # fusion pass can recognize the conv → sub/div/mul/add chain
            # (load_state_dict copies in place, keeping the views live)
            std_flat = getattr(self, "_eval_std", None)
            cached = getattr(self, "_eval_consts", None)
            if (std_flat is None or std_flat.shape != self.running_var.shape
                    or std_flat.dtype != self.running_var.dtype
                    or cached is None
                    or cached[0].data.base is not self.running_mean):
                std_flat = np.empty_like(self.running_var)
                object.__setattr__(self, "_eval_std", std_flat)
                cached = (Tensor(self.running_mean.reshape(1, -1, 1, 1)),
                          Tensor(std_flat.reshape(1, -1, 1, 1)))
                object.__setattr__(self, "_eval_consts", cached)
            mean_t, std_t = cached

            def _refresh_std(rv=self.running_var, out=std_flat, eps=self.eps):
                np.add(rv, eps, out=out)
                np.sqrt(out, out=out)

            _refresh_std()
            ops.record_replay_effect(_refresh_std)
            normed = (x - mean_t) / std_t
        gamma = ops.reshape(self.gamma, (1, self.num_features, 1, 1))
        beta = ops.reshape(self.beta, (1, self.num_features, 1, 1))
        return normed * gamma + beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class ReLU6(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu6(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The evaluation protocol of the paper (§4.1) inserts Dropout(0.2) before
    the classifier when retraining searched architectures.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        # persistent mask buffer so compiled step plans can alias it; the
        # redraw closure advances the same RNG stream as the historical
        # fresh-array draw and replays as a plan effect
        mask = getattr(self, "_mask", None)
        if (mask is None or mask.shape != x.shape
                or mask.dtype != x.data.dtype):
            mask = np.empty(x.shape, dtype=x.data.dtype)
            object.__setattr__(self, "_mask", mask)

        def _redraw(mask=mask, rng=self.rng, shape=x.shape, keep=keep):
            mask[...] = rng.uniform(size=shape) < keep

        _redraw()
        ops.record_replay_effect(_redraw)
        return ops.dropout_mask(x, mask, 1.0 / keep)


class GlobalAvgPool(Module):
    """``(N, C, H, W) -> (N, C)`` global average pooling."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool_global(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.reshape(x, (x.shape[0], -1))


class SqueezeExcite(Module):
    """Squeeze-and-Excitation channel attention (Hu et al., CVPR 2018).

    Used only by the Table-4 ablation: the paper applies SE to the last nine
    layers of the searched LightNets.
    """

    def __init__(self, channels: int, rng: np.random.Generator, reduction: int = 4) -> None:
        super().__init__()
        hidden = max(1, channels // reduction)
        self.channels = channels
        self.fc1 = Linear(channels, hidden, rng)
        self.fc2 = Linear(hidden, channels, rng)

    def forward(self, x: Tensor) -> Tensor:
        squeezed = ops.avg_pool_global(x)  # (N, C)
        excite = ops.sigmoid(self.fc2(ops.relu(self.fc1(squeezed))))
        return x * ops.reshape(excite, (x.shape[0], self.channels, 1, 1))
