"""`repro.nn` — a from-scratch numpy autodiff / neural-network substrate.

This subpackage replaces PyTorch for the LightNAS reproduction: a taped
reverse-mode :class:`Tensor`, the differentiable ops required by the paper's
equations (including grouped/depthwise convolution and the Gumbel-Softmax
straight-through machinery), module containers, and the exact optimizers the
paper's training recipes call for.
"""

from . import functional, init, ops, optim, plan, profiler
from .modules import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    ReLU6,
    Sequential,
    Sigmoid,
    SqueezeExcite,
)
from .optim import SGD, Adam, CosineSchedule, GradientAscent, Optimizer
from .plan import (
    BufferArena,
    PlanError,
    StepProgram,
    fusion,
    fusion_enabled,
    plans,
    plans_enabled,
)
from .tensor import (
    Tensor,
    dtype_scope,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
    tensor_allocations,
)

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "functional", "ops", "optim", "init",
    "profiler", "set_default_dtype", "get_default_dtype", "dtype_scope",
    "tensor_allocations",
    "Module", "Parameter", "Sequential", "Identity", "Linear", "Conv2d",
    "BatchNorm2d", "ReLU", "ReLU6", "Sigmoid", "Dropout", "GlobalAvgPool",
    "Flatten", "SqueezeExcite",
    "Optimizer", "SGD", "Adam", "GradientAscent", "CosineSchedule",
    "plan", "PlanError", "BufferArena", "StepProgram", "plans", "plans_enabled",
    "fusion", "fusion_enabled",
]
