"""Step compiler: trace-once/replay-many execution plans for the nn engine.

A *step plan* records one genuine eager training step — forward tape,
backward sweep, optimizer-visible gradients — and lowers it to a flat
schedule of raw-numpy kernel calls that can be replayed with **zero tape
construction and near-zero fresh allocations**.  Every op output and every
gradient array of the traced step is *adopted* as a plan-owned buffer; the
replay kernels write into those exact arrays with ``out=``-style numpy
calls, so the replayed step reuses the eager step's own memory, layouts and
reduction orders.  In float64 a replay is therefore **bit-identical** to
the eager engine by construction (asserted by the golden-trajectory and
hypothesis parity tests).

Architecture
------------
* :class:`_Tracer` hooks into ``ops._op`` (via ``ops._TRACER``) and records
  every primitive op in call order, interleaved with *effects* — non-tape
  side computations such as BatchNorm running-stat updates and Dropout mask
  redraws, registered by the modules through
  :func:`repro.nn.ops.record_replay_effect`.
* Forward lowering adopts each record's output array.  Pure-view outputs
  (transpose, view-reshape, basic-slice getitem) need no kernel at all:
  the standing view updates automatically when its base is rewritten.
* Backward lowering replicates :meth:`Tensor.backward`'s exact sweep while
  calling each real traced closure **once** (this doubles as the traced
  step's actual backward), adopting every gradient array it produces.
  Per-node replay kernels either (a) skip pure-view contributions,
  (b) use a hand-written ``out=`` kernel that matches the closure's
  arithmetic bit-for-bit, or (c) fall back to calling the original closure
  and copying the results into the adopted buffers.
* A :class:`BufferArena` hands out shape+dtype-keyed scratch workspaces and
  tracks adopted bytes and pool hit/miss counters; evicted plans release
  their workspaces back to the pool.
* :class:`StepProgram` keys compiled plans by a caller key plus
  ``(dtype, fast-kernels flag, grad flag)`` in an LRU cache, and falls back
  to the plain eager step when plans are disabled (:func:`plans`,
  ``--no-plans``, or ``REPRO_NN_PLANS=0``).

Invalidation is **loud**: a replay with a changed batch shape, missing
input, rebound parameter storage, or drifted sampled path (the STE guard)
raises :class:`PlanError` instead of silently reusing stale buffers.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import ops, profiler
from .tensor import Tensor, _unbroadcast, get_default_dtype

try:  # numpy's 2-operand einsum fast path; guarded — the layout is private
    from numpy._core.einsumfunc import bmm_einsum as _np_bmm_einsum
    from numpy._core.einsumfunc import (
        _parse_eq_to_batch_matmul as _parse_bmm)
    from numpy._core.multiarray import c_einsum as _c_einsum
except ImportError:  # pragma: no cover - older/newer numpy layouts
    _np_bmm_einsum = None
    _parse_bmm = None
    _c_einsum = None

__all__ = ["PlanError", "BufferArena", "StepPlan", "StepProgram", "plans",
           "plans_enabled", "fusion", "fusion_enabled"]


class PlanError(RuntimeError):
    """A step plan could not be compiled or safely replayed.

    Raised instead of silently recomputing or reusing stale buffers: the
    caller should either fix the key (recompile) or fall back to the eager
    engine with :func:`plans` ``(False)``.
    """


# ----------------------------------------------------------------------
# Global enable switch (default ON; REPRO_NN_PLANS=0 opts out process-wide)
# ----------------------------------------------------------------------

class _PlanMode:
    enabled: bool = os.environ.get(
        "REPRO_NN_PLANS", "1").strip().lower() not in ("0", "false", "off", "no")


def plans_enabled() -> bool:
    """Whether :class:`StepProgram` compiles/replays plans (vs eager steps)."""
    return _PlanMode.enabled


@contextmanager
def plans(enabled: bool = True) -> Iterator[None]:
    """Enable/disable step plans inside the context.

    ``plans(False)`` is the eager escape hatch: every
    :meth:`StepProgram.run` inside the context executes the plain
    tape-based step instead of compiling or replaying a plan.
    """
    previous = _PlanMode.enabled
    _PlanMode.enabled = bool(enabled)
    try:
        yield
    finally:
        _PlanMode.enabled = previous


class _FusionMode:
    enabled: bool = os.environ.get(
        "REPRO_NN_FUSION", "1").strip().lower() not in (
            "0", "false", "off", "no")


def fusion_enabled() -> bool:
    """Whether plan compilation runs the kernel-fusion pass."""
    return _FusionMode.enabled


@contextmanager
def fusion(enabled: bool = True) -> Iterator[None]:
    """Enable/disable the plan fusion pass inside the context.

    ``fusion(False)`` keeps step plans but compiles them one traced op per
    kernel — the escape hatch (also ``--no-fusion`` / ``REPRO_NN_FUSION=0``)
    for isolating a suspected fusion bug or benchmarking the fusion win.
    Fusion never changes replayed bits either way: every fused kernel is
    gated by a build-time bitwise acceptance probe and rejected per-site on
    any mismatch.
    """
    previous = _FusionMode.enabled
    _FusionMode.enabled = bool(enabled)
    try:
        yield
    finally:
        _FusionMode.enabled = previous


# ----------------------------------------------------------------------
# Buffer arena
# ----------------------------------------------------------------------

class BufferArena:
    """Shape+dtype-keyed buffer pool shared by the plans of one program.

    Two kinds of memory flow through the arena:

    * **adopted** buffers — arrays materialised by the traced eager step and
      taken over as plan state (op outputs, gradients, masks).  They are
      owned by exactly one plan and counted in :attr:`adopted_bytes`.
    * **requested** workspaces — fresh scratch arrays handed out by
      :meth:`request` and returned to the keyed pool when a plan is evicted,
      so the next compile with matching shapes reuses them
      (:attr:`hits`/:attr:`misses` count pool traffic).
    """

    def __init__(self) -> None:
        self._pool: Dict[tuple, List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.adopted_bytes = 0
        self.adopted_arrays = 0
        self.requested_bytes = 0

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def request(self, shape, dtype, zero: bool = False) -> np.ndarray:
        """A writable array of exactly ``shape``/``dtype`` (pooled if possible)."""
        key = self._key(shape, dtype)
        stack = self._pool.get(key)
        if stack:
            self.hits += 1
            arr = stack.pop()
            if zero:
                arr.fill(0)
            return arr
        self.misses += 1
        arr = np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
        self.requested_bytes += arr.nbytes
        return arr

    def release(self, arr: np.ndarray) -> None:
        """Return a workspace obtained from :meth:`request` to the pool."""
        self._pool.setdefault(self._key(arr.shape, arr.dtype), []).append(arr)

    def total_bytes(self) -> int:
        """Bytes held alive through the arena (adopted + pooled workspaces)."""
        return int(self.adopted_bytes + self.requested_bytes)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

class _Record:
    __slots__ = ("kind", "args", "kwargs", "out")

    def __init__(self, kind, args, kwargs, out):
        self.kind = kind
        self.args = args
        self.kwargs = kwargs
        self.out = out


class _Tracer:
    """Collects ``("op", record)`` / ``("effect", fn)`` entries in call order."""

    def __init__(self) -> None:
        self.entries: List[tuple] = []

    def record(self, kind, args, kwargs, out) -> None:
        # identity ops (e.g. pad2d with padding=0) return an argument
        # unchanged — nothing to replay
        for a in args:
            if out is a:
                return
        self.entries.append(("op", _Record(kind, args, kwargs, out)))

    def record_effect(self, fn: Callable[[], None]) -> None:
        self.entries.append(("effect", fn))


#: positional parameter names and defaults per op kind (mirrors ops.py)
_SIGNATURES: Dict[str, tuple] = {
    "add": (("a", "b"), {}),
    "sub": (("a", "b"), {}),
    "mul": (("a", "b"), {}),
    "div": (("a", "b"), {}),
    "neg": (("a",), {}),
    "pow": (("a", "exponent"), {}),
    "exp": (("a",), {}),
    "log": (("a",), {}),
    "sqrt": (("a",), {}),
    "maximum": (("a", "b"), {}),
    "clip": (("a", "low", "high"), {}),
    "relu": (("a",), {}),
    "sigmoid": (("a",), {}),
    "tanh": (("a",), {}),
    "dropout": (("a", "mask", "scale"), {}),
    "matmul": (("a", "b"), {}),
    "sum": (("a", "axis", "keepdims"), {"axis": None, "keepdims": False}),
    "amax": (("a", "axis", "keepdims"), {"axis": None, "keepdims": False}),
    "reshape": (("a", "shape"), {}),
    "transpose": (("a", "axes"), {"axes": None}),
    "getitem": (("a", "index"), {}),
    "concat": (("tensors", "axis"), {"axis": 0}),
    "stack": (("tensors", "axis"), {"axis": 0}),
    "pad2d": (("a", "padding"), {}),
    "conv2d_1x1": (("x", "weight", "bias", "stride"), {}),
    "conv2d_dw": (("x", "weight", "bias", "stride"), {}),
    "conv2d": (("x", "weight", "bias", "stride", "groups"), {}),
    "ste": (("probs", "axis"), {"axis": -1}),
}


def _bind(rec: _Record) -> Dict[str, Any]:
    """Bind a record's raw ``(args, kwargs)`` to named parameters."""
    try:
        names, defaults = _SIGNATURES[rec.kind]
    except KeyError:
        raise PlanError(f"step plan cannot lower unknown op kind {rec.kind!r}")
    bound = dict(defaults)
    bound.update(zip(names, rec.args))
    bound.update(rec.kwargs)
    return bound


def _operand(value, dtype) -> np.ndarray:
    """The live array behind an op operand.

    Tensors contribute their (plan-stable) ``.data``; raw scalars/arrays are
    baked exactly as ``ops._as_tensor`` would have stored them.  ``asarray``
    preserves identity when the dtype already matches, which keeps the
    Dropout mask an *alias* of the module's persistent buffer.
    """
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


# ----------------------------------------------------------------------
# Forward kernel builders
# ----------------------------------------------------------------------

def _ufunc2(ufunc, a, b, o):
    def kernel():
        ufunc(a, b, out=o)
    return kernel


def _build_forward(rec: _Record, plan: "StepPlan",
                   dtype: np.dtype) -> Optional[Callable[[], None]]:
    """A replay kernel writing ``rec.out.data`` in place, or None for views.

    Each kernel reproduces the corresponding eager forward in ops.py with
    the same elementwise/reduction arithmetic, writing into the adopted
    output buffer instead of allocating.
    """
    kind = rec.kind
    b = _bind(rec)
    o = rec.out.data

    if kind in ("add", "sub", "mul", "div", "maximum"):
        x = _operand(b["a"], dtype)
        y = _operand(b["b"], dtype)
        ufunc = {"add": np.add, "sub": np.subtract, "mul": np.multiply,
                 "div": np.divide, "maximum": np.maximum}[kind]
        return _ufunc2(ufunc, x, y, o)
    if kind == "neg":
        a = _operand(b["a"], dtype)
        return lambda: np.negative(a, out=o)
    if kind == "pow":
        a = _operand(b["a"], dtype)
        e = float(b["exponent"])
        # ndarray.__pow__ special-cases small exponents; replicate verbatim
        return lambda: np.copyto(o, a ** e)
    if kind in ("exp", "log", "sqrt", "tanh"):
        a = _operand(b["a"], dtype)
        ufunc = {"exp": np.exp, "log": np.log, "sqrt": np.sqrt,
                 "tanh": np.tanh}[kind]
        return lambda: ufunc(a, out=o)
    if kind == "sigmoid":
        a = _operand(b["a"], dtype)

        def sigmoid_kernel():
            np.negative(a, out=o)
            np.exp(o, out=o)
            np.add(o, 1.0, out=o)
            np.divide(1.0, o, out=o)
        return sigmoid_kernel
    if kind == "relu":
        a = _operand(b["a"], dtype)
        return lambda: np.maximum(a, 0.0, out=o)
    if kind == "clip":
        a = _operand(b["a"], dtype)
        low, high = b["low"], b["high"]
        return lambda: np.clip(a, low, high, out=o)
    if kind == "dropout":
        a = _operand(b["a"], dtype)
        mask = np.asarray(b["mask"])  # aliased: effects refresh it in place
        scale = b["scale"]

        def dropout_kernel():
            np.multiply(a, mask, out=o)
            np.multiply(o, scale, out=o)
        return dropout_kernel
    if kind == "matmul":
        x = _operand(b["a"], dtype)
        y = _operand(b["b"], dtype)
        if x.ndim >= 2 and y.ndim >= 2:
            return lambda: np.matmul(x, y, out=o)
        return lambda: np.copyto(o, x @ y)
    if kind == "sum":
        a = _operand(b["a"], dtype)
        axis, keepdims = b["axis"], b["keepdims"]
        return lambda: np.sum(a, axis=axis, keepdims=keepdims, out=o)
    if kind == "amax":
        a = _operand(b["a"], dtype)
        axis, keepdims = b["axis"], b["keepdims"]
        return lambda: np.amax(a, axis=axis, keepdims=keepdims, out=o)
    if kind == "reshape":
        a = _operand(b["a"], dtype)
        if np.shares_memory(o, a):
            return None
        shape = b["shape"]
        return lambda: np.copyto(o, a.reshape(shape))
    if kind == "transpose":
        a = _operand(b["a"], dtype)
        if np.shares_memory(o, a):
            return None
        axes = b["axes"]
        return lambda: np.copyto(o, np.transpose(a, axes))
    if kind == "getitem":
        a = _operand(b["a"], dtype)
        index = b["index"]
        if isinstance(o, np.ndarray) and o.size and np.shares_memory(o, a):
            return None
        return lambda: np.copyto(o, a[index])
    if kind in ("concat", "stack"):
        srcs = [_operand(t, dtype) for t in b["tensors"]]
        axis = b["axis"]
        if kind == "concat":
            return lambda: np.concatenate(srcs, axis=axis, out=o)
        return lambda: np.stack(srcs, axis=axis, out=o)
    if kind == "pad2d":
        a = _operand(b["a"], dtype)
        p = int(b["padding"])
        interior = o[:, :, p:-p, p:-p]  # border zeros persist from the trace

        def pad_kernel():
            np.copyto(interior, a)
        return pad_kernel
    if kind == "ste":
        return _build_ste_forward(rec, b, plan)
    if kind == "conv2d_1x1":
        return _build_conv1x1_forward(rec, b, plan, dtype)
    if kind == "conv2d_dw":
        return _build_convdw_forward(rec, b, plan, dtype)
    if kind == "conv2d":
        return _build_convgen_forward(rec, b, plan, dtype)
    raise PlanError(f"step plan cannot lower op kind {kind!r}")


def _build_ste_forward(rec, b, plan):
    """Hard binarize; guarded records verify the traced argmax still holds.

    A *guarded* STE is one whose one-hot output selects control flow (its
    data is consumed by a ``getitem`` record — the per-layer gate lookup of
    ``forward_single_path``).  Since the plan baked the traced path's op
    sequence, a drifted argmax would silently replay the wrong block; the
    guard turns that into a loud :class:`PlanError`.  Deterministic-path STE
    outputs that only feed the predictor stay unguarded — their argmax may
    legitimately drift within one plan key.
    """
    o = rec.out.data
    probs = b["probs"].data
    axis = b["axis"]
    guarded = id(rec) in plan._guarded_ste
    baked = np.argmax(probs, axis=axis).copy()  # trace-time selections

    def ste_kernel():
        idx = np.argmax(probs, axis=axis)
        if guarded and not np.array_equal(idx, baked):
            raise PlanError(
                "sampled path drifted from the traced plan: argmax of the "
                "STE input no longer matches the compiled selections — the "
                "plan key must include the sampled-path signature")
        o.fill(0.0)
        np.put_along_axis(o, np.expand_dims(idx, axis=axis), 1.0, axis=axis)
    return ste_kernel


def _freeze_bmm(subscripts, a, b):
    """Build-time specialization of numpy's ``bmm_einsum`` lowering.

    Replays run the same contraction on the same frozen buffers, so the
    parse/prep/reshape work ``bmm_einsum`` repeats on every call can be
    done once here: operand reshapes become standing views, operand
    transposes become at most one bound ``c_einsum`` copy each, and the
    replay kernel collapses to a single ``np.matmul``.  Returns a
    candidate factory for :func:`_bind_einsum` (its bitwise probe still
    gates acceptance), or None when the lowering cannot be frozen.
    """
    if _np_bmm_einsum is None or _parse_bmm is None:
        return None
    try:
        parsed = _parse_bmm(subscripts, a.shape, b.shape)
    except Exception:
        return None
    eq_a, eq_b, shape_a, shape_b, shape_ab, perm_ab, pure_mult = parsed
    if pure_mult:  # the multiply lowering preps differently; keep einsum
        return None

    def prep(src, eq, new_shape):
        steps = []
        cur = src
        if eq is not None:  # diagonal/transpose copy into a standing buffer
            buf = np.empty(_c_einsum(eq, src).shape, dtype=src.dtype)
            steps.append(lambda e=eq, s=src, o=buf: _c_einsum(e, s, out=o))
            cur = buf
        if new_shape is not None:
            view = cur.reshape(new_shape)
            if not np.shares_memory(view, cur):
                return None  # reshape would copy per replay — can't freeze
            cur = view
        return steps, cur

    left = prep(a, eq_a, shape_a)
    right = prep(b, eq_b, shape_b)
    if left is None or right is None:
        return None
    steps = left[0] + right[0]
    am, bm = left[1], right[1]

    def factory(dst):
        if shape_ab is None and perm_ab is None:
            if not steps:
                return lambda: np.matmul(am, bm, out=dst)

            def direct():
                for s in steps:
                    s()
                np.matmul(am, bm, out=dst)
            return direct
        mm = np.matmul(am, bm)  # frozen intermediate; rewritten per replay
        ab = mm.reshape(shape_ab) if shape_ab is not None else mm
        if perm_ab is not None:
            ab = ab.transpose(perm_ab)

        def kernel():
            for s in steps:
                s()
            np.matmul(am, bm, out=mm)
            np.copyto(dst, ab)
        return kernel

    return factory


def _bind_einsum(subscripts, operands, out, candidate=None):
    """Freeze one einsum of the plan into its cheapest bit-exact form.

    A plan's buffers never change shape, stride, or dtype between
    replays, so numpy/BLAS kernel selection — a function of exactly
    those properties, never of values — is frozen too.  That makes a
    one-shot probe sound: if ``candidate`` (a closure writing its
    destination argument, typically a direct ``np.matmul``) reproduces
    ``einsum(optimize=True)`` bit-for-bit on the live traced arrays, it
    is bound as the replay kernel and the einsum dispatch layer is
    skipped entirely.  Any mismatch, error, or stray-copy write (the
    destination is zeroed first, so a candidate that silently writes a
    reshape copy fails the comparison) falls back to the einsum.  The
    destination's traced contents are restored after the probe.
    """
    candidates = [candidate] if callable(candidate) else list(candidate or ())
    # second chance for every site: the path-free C einsum.  It wins when
    # the traced contraction never dispatched to BLAS (small reductions).
    candidates.append(lambda dst: lambda: np.einsum(
        subscripts, *operands, out=dst, optimize=False))
    if _np_bmm_einsum is not None and len(operands) == 2:
        # einsum's optimizer lowers 2-operand contractions to this batched
        # matmul helper, sometimes with the operands swapped — probe both
        # orders and skip the path machinery on replay
        a, b = operands
        lhs, rhs = subscripts.split("->")
        sa, sb = lhs.split(",")
        swapped = f"{sb},{sa}->{rhs}"
        for eq, x, y in ((subscripts, a, b), (swapped, b, a)):
            frozen = _freeze_bmm(eq, x, y)
            if frozen is not None:
                candidates.append(frozen)
        candidates.append(
            lambda dst: lambda: _np_bmm_einsum(subscripts, a, b, out=dst))
        candidates.append(
            lambda dst: lambda: _np_bmm_einsum(swapped, b, a, out=dst))
    ref = np.einsum(subscripts, *operands, optimize=True)
    saved = out.copy()
    try:
        for make in candidates:
            try:
                out.fill(0)
                kernel = make(out)  # binds views of ``out`` once
                kernel()
                if out.dtype.kind == "f":
                    ok = np.array_equal(out, ref, equal_nan=True)
                else:
                    ok = np.array_equal(out, ref)
            except Exception:
                ok = False
            if ok:
                return kernel
    finally:
        np.copyto(out, saved)
    return lambda: np.einsum(subscripts, *operands, out=out, optimize=True)


# ----------------------------------------------------------------------
# Fusion pass
#
# Every fused kernel below is gated by a build-time bitwise acceptance
# probe on the live traced buffers: a plan's shapes, strides and dtypes
# are frozen, so numpy/BLAS kernel selection is frozen too, and a probe
# that reproduces the traced contents bit-for-bit once will do so on
# every replay.  A site that fails its probe is rejected (counted in
# ``fusion_rejected``) and lowered the unfused way — fusion ON therefore
# never changes replayed bits, only dispatch count.
# ----------------------------------------------------------------------

def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.dtype.kind == "f":
        return np.array_equal(a, b, equal_nan=True)
    return np.array_equal(a, b)


def _probe_kernel(make, out, ref=None):
    """Bind ``make(out)`` as a fused kernel iff it writes ``out`` bit-exactly.

    ``out`` must hold its traced contents (the probe reference unless an
    explicit ``ref`` is given); it is zeroed first so a kernel that misses
    elements or silently writes a reshape copy fails the comparison, and
    restored afterwards.  Returns the bound kernel or None on mismatch.
    """
    saved = out.copy()
    if ref is None:
        ref = saved
    kernel = None
    try:
        out.fill(0)
        try:
            kernel = make(out)
            kernel()
            ok = _bits_equal(out, ref)
        except Exception:
            ok = False
    finally:
        np.copyto(out, saved)
    return kernel if ok else None


def _fuse_convdw_forward(rec, plan, dtype, cols, w_t, w_sq, o):
    """Shared-cols depthwise forward: one packed copy feeds fwd *and* gw.

    The depthwise contraction and its weight gradient both reduce over the
    same strided im2col window view, and the frozen-bmm lowering of each
    pays a separate strided pack per replay.  Packing once into a
    ``(c, k·k, n·oh·ow)`` workspace turns the forward into a single batched
    matmul and lets the backward's weight-gradient matmul reuse the copy
    (see :func:`_fuse_convdw_gw`), halving the dominant memory traffic.
    """
    n, c, kh, kw, oh, ow = cols.shape
    kk, npq = kh * kw, n * oh * ow
    w3 = w_sq.reshape(c, 1, kk)
    if not np.shares_memory(w3, w_t.data):
        return None
    colsB = plan.request((c, kk, npq), dtype)
    colsB_view = colsB.reshape(c, kh, kw, n, oh, ow)
    cols_src = cols.transpose(1, 2, 3, 0, 4, 5)
    mm = plan.request((c, 1, npq), dtype)
    mm_view = mm.reshape(c, n, oh, ow)
    dst_t = o.transpose(1, 0, 2, 3)

    def make(_dst):
        def kernel():
            np.copyto(colsB_view, cols_src)
            np.matmul(w3, colsB, out=mm)
            np.copyto(dst_t, mm_view)
        return kernel
    kernel = _probe_kernel(make, o)
    if kernel is None:
        plan.fusion_rejected += 1
        return None
    plan.fused_kernels += 1
    kernel._label = "fused:conv2d_dw.cols"
    # the probe run above left the traced cols in colsB, so the backward
    # builder's own probe compares on real data
    plan._conv_ws[id(rec)] = {"colsB": colsB, "dims": (n, c, kh, kw, oh, ow)}
    return kernel


def _fuse_convdw_gw(plan, dtype, rec, g, flat):
    """Depthwise weight gradient off the forward's shared cols copy.

    Only offered when :func:`_fuse_convdw_forward` was accepted for the
    same record: that kernel refreshes ``colsB`` at the top of every
    replay's forward schedule, which always runs before the backward.
    """
    ws = plan._conv_ws.get(id(rec))
    if ws is None or "colsB" not in ws:
        return None
    colsB = ws["colsB"]
    n, c, kh, kw, oh, ow = ws["dims"]
    kk, npq = kh * kw, n * oh * ow
    gw3 = flat.reshape(c, kk, 1)
    if not np.shares_memory(gw3, flat):
        return None
    gT = plan.request((c, npq, 1), dtype)
    gT_view = gT.reshape(c, n, oh, ow)
    g_src = g.transpose(1, 0, 2, 3)

    def make(dst):
        d3 = dst.reshape(c, kk, 1)

        def kernel():
            np.copyto(gT_view, g_src)
            np.matmul(colsB, gT, out=d3)
        return kernel
    kernel = _probe_kernel(make, flat)
    if kernel is None:
        plan.fusion_rejected += 1
        return None
    plan.fused_kernels += 1
    kernel._label = "fused:conv2d_dw.gw"
    return kernel


def _fuse_convdw_gx_clip(plan, dtype, b, g, B, w_sq, s, kh, kw, oh, ow):
    """Depthwise input-gradient tap loop clipped to the pad interior.

    When the conv input came from a ``pad2d`` consumed by nothing else
    (and is not a plan output), the pad's backward is a pure interior
    view of ``B`` — the border writes of the eager tap scatter are dead.
    The fused kernel zeroes just the interior and runs the same ascending
    (i, j) multiply/accumulate with every tap clipped to the rows and
    columns that land inside it: per interior element the contributing
    taps, their order, and their values are identical to eager (the probe
    checks the interior bits), while the dead border keeps its traced
    contents and is never read.
    """
    x_t = b["x"]
    pad_rec = plan._produced_by.get(id(x_t))
    if pad_rec is None or pad_rec.kind != "pad2d":
        return None
    if len(plan._consumers.get(id(x_t), ())) != 1:
        return None
    if id(x_t) in plan._output_ids:
        return None
    p = int(_bind(pad_rec)["padding"])
    if p <= 0:
        return None
    h, w = B.shape[2:]
    interior = B[:, :, p:h - p, p:w - p]
    t = plan.request(g.shape, dtype)
    steps = []
    for i in range(kh):
        p_lo = max(0, -((i - p) // s))  # ceil((p - i) / s)
        p_hi = min(oh - 1, (h - 1 - p - i) // s)
        if p_lo > p_hi:
            continue
        for j in range(kw):
            q_lo = max(0, -((j - p) // s))
            q_hi = min(ow - 1, (w - 1 - p - j) // s)
            if q_lo > q_hi:
                continue
            g_clip = g[:, :, p_lo:p_hi + 1, q_lo:q_hi + 1]
            dest = B[:, :, i + s * p_lo:i + s * p_hi + 1:s,
                     j + s * q_lo:j + s * q_hi + 1:s]
            wv = w_sq[None, :, i, j, None, None]
            tc = t[:, :, :p_hi - p_lo + 1, :q_hi - q_lo + 1]
            steps.append((g_clip, wv, dest, tc))

    def kernel():
        interior.fill(0.0)
        for g_clip, wv, dest, tc in steps:
            np.multiply(g_clip, wv, out=tc)
            np.add(dest, tc, out=dest)

    saved = B.copy()
    try:
        kernel()
        ok = _bits_equal(interior, saved[:, :, p:h - p, p:w - p])
    except Exception:
        ok = False
    finally:
        np.copyto(B, saved)
    if not ok:
        plan.fusion_rejected += 1
        return None
    plan.fused_kernels += 1
    kernel._label = "fused:conv2d_dw.gx-clip"
    return kernel


def _sole_consumer(plan, t, kind):
    """The single record consuming tensor ``t`` as its first operand, if it
    has exactly one consumer of the given kind and is not a plan output."""
    if id(t) in plan._output_ids:
        return None
    recs = plan._consumers.get(id(t), ())
    if len(recs) != 1 or recs[0].kind != kind:
        return None
    r = recs[0]
    bound = _bind(r)
    if bound.get("a") is not t:
        return None
    return r, bound


def _make_folded_conv_bn(plan, rec, bb, out, affines):
    mean4, std4, gamma4, beta4 = affines
    dtype = out.dtype
    x_t, w_t = bb["x"], bb["weight"]
    s = bb["stride"]
    c_out = mean4.shape[1]
    scale4 = plan.request((1, c_out, 1, 1), dtype)
    shift4 = plan.request((1, c_out, 1, 1), dtype)
    s_flat = scale4.reshape(c_out)
    if rec.kind == "conv2d_1x1":
        xd = x_t.data[:, :, ::s, ::s] if s > 1 else x_t.data
        w_mat = w_t.data[:, :, 0, 0]
        wf = plan.request(w_mat.shape, dtype)
        s_col = s_flat[:, None]

        def make(dst):
            def kernel():
                np.divide(gamma4, std4, out=scale4)
                np.multiply(w_mat, s_col, out=wf)
                np.einsum("nchw,oc->nohw", xd, wf, out=dst, optimize=True)
                np.multiply(scale4, mean4, out=shift4)
                np.subtract(beta4, shift4, out=shift4)
                np.add(dst, shift4, out=dst)
            return kernel
    else:  # conv2d_dw
        kh, kw = w_t.data.shape[2:]
        cols = ops._im2col(x_t.data, kh, kw, s)
        w_sq = w_t.data[:, 0]
        wf = plan.request(w_sq.shape, dtype)
        s_cube = s_flat[:, None, None]

        def make(dst):
            def kernel():
                np.divide(gamma4, std4, out=scale4)
                np.multiply(w_sq, s_cube, out=wf)
                np.einsum("ncijpq,cij->ncpq", cols, wf, out=dst,
                          optimize=True)
                np.multiply(scale4, mean4, out=shift4)
                np.subtract(beta4, shift4, out=shift4)
                np.add(dst, shift4, out=dst)
            return kernel
    return _probe_kernel(make, out)


def _fold_conv_bn_sites(plan, op_records, replaced):
    """Fold eval-mode BatchNorm scale/shift into the preceding conv.

    Matches the exact chain BatchNorm2d emits in eval mode —
    ``conv → sub(mean) → div(std) → mul(γ) → add(β)`` with per-channel
    ``(1, C, 1, 1)`` affine operands — and replaces the five kernels with
    one that refolds ``W·(γ/std)`` and ``β − γ·mean/std`` from the *live*
    BN buffers on every replay (so ``load_state_dict`` updates keep
    working, and a ``.data`` rebind still trips the guards).  Only
    attempted on grad-free plans: a grad plan's backward closures read the
    intermediate buffers the fold would leave stale, and training-mode BN
    depends on batch statistics that do not exist before the conv runs —
    those plans keep per-op lowering, which is what preserves
    training-mode bit-identity and running-stat updates.  The fold
    changes the order of float multiplications, so the bitwise probe
    rejects it wherever distributivity does not hold exactly — honest
    rejections counted per site.
    """
    for rec in op_records:
        if rec.kind not in ("conv2d_1x1", "conv2d_dw"):
            continue
        if id(rec) in replaced:
            continue
        bb = _bind(rec)
        if bb["bias"] is not None:
            continue
        chain = []
        t = rec.out
        for kind in ("sub", "div", "mul", "add"):
            nxt = _sole_consumer(plan, t, kind)
            if nxt is None:
                chain = None
                break
            r, rb = nxt
            other = rb.get("b")
            if not isinstance(other, Tensor):
                chain = None
                break
            chain.append((r, other))
            t = r.out
        if not chain:
            continue
        c_out = rec.out.data.shape[1]
        affines = tuple(other.data for _, other in chain)
        if any(a.shape != (1, c_out, 1, 1) for a in affines):
            continue
        add_r = chain[-1][0]
        kernel = _make_folded_conv_bn(plan, rec, bb, add_r.out.data, affines)
        if kernel is None:
            plan.fusion_rejected += 1
            continue
        plan.fused_kernels += 1
        kernel._label = f"fused:{rec.kind}+bn"
        replaced[id(rec)] = None
        for r, _ in chain:
            replaced[id(r)] = None
        replaced[id(add_r)] = kernel


def _stack_conv1x1_siblings(plan, op_records, replaced):
    """Batch sibling 1×1 convs on one input into a single stacked matmul.

    Multi-path Gumbel evaluation (``forward_weighted``) dispatches every
    candidate block on the same layer input; their expansion convs are K
    independent ``(o, c) @ (n, c, pix)`` contractions.  Stacking the live
    weights into a ``(K, 1, o, c)`` workspace turns them into one batched
    matmul — per-slice GEMMs identical to the unfused lowering, so the
    probe usually accepts.  Emitted at the earliest sibling's position
    (the shared input is ready there; later consumers only see their
    output earlier, never a stale value).
    """
    groups: Dict[tuple, List[_Record]] = {}
    binds: Dict[int, dict] = {}
    for rec in op_records:
        if rec.kind != "conv2d_1x1" or id(rec) in replaced:
            continue
        bb = _bind(rec)
        if bb["bias"] is not None or bb["stride"] != 1:
            continue
        if not bb["x"].data.flags.c_contiguous:
            continue
        groups.setdefault((id(bb["x"]), bb["weight"].data.shape),
                          []).append(rec)
        binds[id(rec)] = bb
    for recs in groups.values():
        if len(recs) < 2:
            continue
        k_n = len(recs)
        bb0 = binds[id(recs[0])]
        xd = bb0["x"].data
        n, c = xd.shape[:2]
        o_ch = bb0["weight"].data.shape[0]
        pix = xd.shape[2] * xd.shape[3]
        x3 = xd.reshape(n, c, pix)
        outs = [r.out.data for r in recs]
        wsrcs = [binds[id(r)]["weight"].data[:, :, 0, 0] for r in recs]
        wstack = plan.request((k_n, 1, o_ch, c), xd.dtype)
        mm = plan.request((k_n, n, o_ch, pix), xd.dtype)

        def kernel(wsrcs=wsrcs, wstack=wstack, x3=x3, mm=mm, outs=outs):
            for i, wsrc in enumerate(wsrcs):
                np.copyto(wstack[i, 0], wsrc)
            np.matmul(wstack, x3, out=mm)
            # copyto through a reshaped *source* view: mm[i] is contiguous
            # so the reshape is free, while the destination may keep the
            # einsum's channel-major layout (strided copy is fine)
            for o, m in zip(outs, mm):
                np.copyto(o, m.reshape(o.shape))

        saved = [o.copy() for o in outs]
        try:
            for o in outs:
                o.fill(0)
            kernel()
            ok = all(_bits_equal(o, sv) for o, sv in zip(outs, saved))
        except Exception:
            ok = False
        finally:
            for o, sv in zip(outs, saved):
                np.copyto(o, sv)
        if not ok:
            plan.fusion_rejected += 1
            continue
        plan.fused_kernels += k_n
        kernel._label = f"fused:conv2d_1x1.x{k_n}"
        replaced[id(recs[0])] = kernel
        for r in recs[1:]:
            replaced[id(r)] = None


def _plan_fusions(plan, op_records):
    """Record-level fusion decisions, made before per-op lowering.

    Returns ``{id(record): kernel_or_None}`` — a record mapped to a kernel
    is replaced by it; a record mapped to None is subsumed by a fused
    kernel emitted at another record's position.
    """
    replaced: Dict[int, Optional[Callable[[], None]]] = {}
    if not plan.grad:
        _fold_conv_bn_sites(plan, op_records, replaced)
    _stack_conv1x1_siblings(plan, op_records, replaced)
    return replaced


def _pack_schedule(plan, sched, metas):
    """Merge adjacent elementwise kernels into composite dispatches.

    ``metas[i]`` is ``(kind, outs)`` for a packable kernel — one whose
    recomputation at the same inputs is a pure function writing exactly
    ``outs`` — or None for a barrier (convs, reductions, effects, STE
    guards).  Runs of ≥2 packable kernels are probed by re-executing them
    once at build time and comparing every written buffer against its
    traced contents; order inside a composite is unchanged, so this can
    only fail if a kernel is not actually idempotent — in which case it
    is rejected and the run stays unfused.
    """
    packed: List[Tuple[str, Callable[[], None]]] = []
    i, n = 0, len(sched)
    while i < n:
        j = i
        while j < n and metas[j] is not None:
            j += 1
        if j - i < 2:
            packed.append(sched[i])
            i = max(j, i + 1)
            continue
        run = sched[i:j]
        outs: List[np.ndarray] = []
        seen: set = set()
        for m in metas[i:j]:
            for arr in m[1]:
                if id(arr) not in seen:
                    seen.add(id(arr))
                    outs.append(arr)
        kernels = tuple(k for _, k in run)
        saved = [arr.copy() for arr in outs]
        try:
            for k in kernels:
                k()
            ok = all(_bits_equal(arr, sv) for arr, sv in zip(outs, saved))
        except Exception:
            ok = False
        finally:
            for arr, sv in zip(outs, saved):
                np.copyto(arr, sv)
        if not ok:
            plan.fusion_rejected += 1
            packed.extend(run)
            i = j
            continue
        kinds = [m[0] for m in metas[i:j]]
        label = "fused:" + "+".join(kinds[:3])
        if len(kinds) > 3:
            label += f"(+{len(kinds) - 3})"

        def composite(kernels=kernels):
            for k in kernels:
                k()
        packed.append((label, composite))
        plan.fused_kernels += len(kernels)
        i = j
    return packed


def _build_conv1x1_forward(rec, b, plan, dtype):
    o = rec.out.data
    x_t, w_t, bias_t = b["x"], b["weight"], b["bias"]
    s = b["stride"]
    xd = x_t.data[:, :, ::s, ::s] if s > 1 else x_t.data  # standing view
    w_mat = w_t.data[:, :, 0, 0]
    n, c = xd.shape[:2]
    pix = xd.shape[2] * xd.shape[3]
    cand = None
    if xd.flags.c_contiguous:
        x3 = xd.reshape(n, c, pix)  # view

        def cand(dst):
            d3 = dst.reshape(n, -1, pix)
            return lambda: np.matmul(w_mat, x3, out=d3)
    dest = o if bias_t is None else plan.request(o.shape, dtype)
    ein = _bind_einsum("nchw,oc->nohw", (xd, w_mat), dest, cand)
    if bias_t is None:
        return ein
    bias4 = bias_t.data.reshape(1, -1, 1, 1)

    def kernel():
        ein()
        np.add(dest, bias4, out=o)
    return kernel


def _build_convdw_forward(rec, b, plan, dtype):
    o = rec.out.data
    x_t, w_t, bias_t = b["x"], b["weight"], b["bias"]
    s = b["stride"]
    kh, kw = w_t.data.shape[2:]
    cols = ops._im2col(x_t.data, kh, kw, s)  # standing strided view
    w_sq = w_t.data[:, 0]
    if bias_t is None:
        if _FusionMode.enabled:
            fused = _fuse_convdw_forward(rec, plan, dtype, cols, w_t, w_sq, o)
            if fused is not None:
                return fused
        return _bind_einsum("ncijpq,cij->ncpq", (cols, w_sq), o)
    scratch = plan.request(o.shape, dtype)
    bias4 = bias_t.data.reshape(1, -1, 1, 1)
    ein = _bind_einsum("ncijpq,cij->ncpq", (cols, w_sq), scratch)

    def kernel():
        ein()
        np.add(scratch, bias4, out=o)
    return kernel


def _build_convgen_forward(rec, b, plan, dtype):
    """Generic grouped conv: persistent im2col matrix + einsum + regroup.

    The materialised column matrix lives in an arena workspace refilled by a
    single strided-view copy per replay; the backward builder reuses it via
    ``plan._conv_ws``.
    """
    o = rec.out.data
    x_t, w_t, bias_t = b["x"], b["weight"], b["bias"]
    s, groups = b["stride"], b["groups"]
    n, c_in, h, w = x_t.data.shape
    c_out, c_in_g, kh, kw = w_t.data.shape
    oh = (h - kh) // s + 1
    ow = (w - kw) // s + 1
    co_g = c_out // groups
    ckk = c_in_g * kh * kw

    cols = ops._im2col(x_t.data, kh, kw, s)
    cols_mat = plan.request((n, groups, oh * ow, ckk), dtype)
    cm_view = cols_mat.reshape(n, groups, oh, ow, c_in_g, kh, kw)
    src = cols.reshape(n, groups, c_in_g, kh, kw, oh, ow)
    src_t = src.transpose(0, 1, 5, 6, 2, 3, 4)
    static_src = np.shares_memory(src_t, x_t.data)
    w_mat = w_t.data.reshape(groups, co_g, ckk)
    out_mat = plan.request((n, groups, oh * ow, co_g), dtype)
    out_src = out_mat.transpose(0, 1, 3, 2)
    target = o if bias_t is None else plan.request(o.shape, dtype)
    target_g = target.reshape(n, groups, co_g, oh * ow)
    bias4 = None if bias_t is None else bias_t.data.reshape(1, c_out, 1, 1)
    plan._conv_ws[id(rec)] = {
        "cols_mat": cols_mat, "w_mat": w_mat,
        "dims": (n, c_in, h, w, c_out, c_in_g, kh, kw, oh, ow, co_g, ckk),
        "stride": s, "groups": groups,
    }

    def fill_cols():
        if static_src:
            np.copyto(cm_view, src_t)
        else:  # reshape degraded to a copy: rebuild the window view live
            live = ops._im2col(x_t.data, kh, kw, s)
            np.copyto(cm_view, live.reshape(
                n, groups, c_in_g, kh, kw, oh, ow).transpose(0, 1, 5, 6, 2, 3, 4))

    # seed the workspace with traced activations so _bind_einsum probes
    # (here and in the backward builder) compare on real data
    fill_cols()
    wT = plan.request((groups, ckk, co_g), dtype)
    w_src = w_mat.transpose(0, 2, 1)

    def cand(dst):
        def kernel():
            np.copyto(wT, w_src)  # weights change per step: refresh the copy
            np.matmul(cols_mat, wT, out=dst)
        return kernel
    ein = _bind_einsum("ngpk,gok->ngpo", (cols_mat, w_mat), out_mat, cand)

    def kernel():
        fill_cols()
        ein()
        np.copyto(target_g, out_src)
        if bias4 is not None:
            np.add(target, bias4, out=o)
    return kernel


# ----------------------------------------------------------------------
# Backward kernel builders
#
# Each builder receives the node's fixed incoming-gradient array ``g``, the
# pairs produced by one real call of the traced closure, and the subset of
# pairs needing a writer (``writes`` maps pair index -> adopted array).  It
# returns a list of replay kernels, or None to decline — in which case the
# generic closure-call fallback handles the node (recomputing exactly what
# the eager engine would, then copying into the adopted buffers).
#
# Builders only take over when they can reproduce the closure's arithmetic
# bit-for-bit without fresh layout-sensitive temporaries: pairs that need an
# ``_unbroadcast`` reduction are left to the fallback, because the summation
# order of a reduction depends on the memory layout of its (eager-allocated)
# operand and a C-ordered arena workspace could legally differ.
# ----------------------------------------------------------------------

def _bwd_relu(b, rec, g, pairs, writes, plan, dtype):
    a = b["a"].data
    B = writes[0][1]
    mask = plan.request(a.shape, np.bool_)

    def kernel():
        np.greater(a, 0.0, out=mask)
        np.multiply(g, mask, out=B)
    return [kernel]


def _bwd_clip(b, rec, g, pairs, writes, plan, dtype):
    a = b["a"].data
    low, high = b["low"], b["high"]
    B = writes[0][1]
    m1 = plan.request(a.shape, np.bool_)
    m2 = plan.request(a.shape, np.bool_)

    def kernel():
        np.greater(a, low, out=m1)
        np.less(a, high, out=m2)
        np.logical_and(m1, m2, out=m1)
        np.multiply(g, m1, out=B)
    return [kernel]


def _bwd_dropout(b, rec, g, pairs, writes, plan, dtype):
    mask = np.asarray(b["mask"])
    scale = b["scale"]
    B = writes[0][1]

    def kernel():
        np.multiply(g, mask, out=B)
        np.multiply(B, scale, out=B)
    return [kernel]


def _bwd_exp(b, rec, g, pairs, writes, plan, dtype):
    o = rec.out.data
    B = writes[0][1]
    return [lambda: np.multiply(g, o, out=B)]


def _bwd_log(b, rec, g, pairs, writes, plan, dtype):
    a = b["a"].data
    B = writes[0][1]
    return [lambda: np.divide(g, a, out=B)]


def _bwd_sqrt(b, rec, g, pairs, writes, plan, dtype):
    o = rec.out.data
    B = writes[0][1]

    def kernel():
        np.multiply(g, 0.5, out=B)
        np.divide(B, o, out=B)
    return [kernel]


def _bwd_sigmoid(b, rec, g, pairs, writes, plan, dtype):
    o = rec.out.data
    B = writes[0][1]
    t = plan.request(o.shape, dtype)

    def kernel():
        np.subtract(1.0, o, out=t)
        np.multiply(g, o, out=B)
        np.multiply(B, t, out=B)
    return [kernel]


def _bwd_tanh(b, rec, g, pairs, writes, plan, dtype):
    o = rec.out.data
    B = writes[0][1]
    t = plan.request(o.shape, dtype)

    def kernel():
        np.multiply(o, o, out=t)
        np.subtract(1.0, t, out=t)
        np.multiply(g, t, out=B)
    return [kernel]


def _bwd_neg(b, rec, g, pairs, writes, plan, dtype):
    B = writes[0][1]
    return [lambda: np.negative(g, out=B)]


def _bind_unbroadcast(plan, src, B, dtype):
    """Kernel replicating ``tensor._unbroadcast(src, B.shape)`` into ``B``.

    Mirrors the eager helper step by step — the same leading-axis sum,
    the same keepdims reduction over stretched axes — but with ``out=``
    targets (``np.add.reduce`` is what ``ndarray.sum`` dispatches to, so
    the pairwise summation is bit-identical).  Returns None when ``B``
    cannot expose the required destination view.
    """
    extra = src.ndim - B.ndim
    lead = tuple(range(extra)) if extra > 0 else ()
    mid_shape = src.shape[extra:]
    axes = tuple(i for i, s in enumerate(B.shape)
                 if s == 1 and mid_shape[i] != 1)
    keep_shape = tuple(1 if i in axes else s for i, s in enumerate(mid_shape))
    final = B.reshape(keep_shape if axes else mid_shape)
    if not np.shares_memory(final, B):
        return None  # reshape degraded to a copy — fallback
    if lead and axes:
        mid = plan.request(mid_shape, dtype)

        def kernel():
            np.add.reduce(src, axis=lead, out=mid)
            np.add.reduce(mid, axis=axes, keepdims=True, out=final)
        return kernel
    if lead:
        return lambda: np.add.reduce(src, axis=lead, out=final)
    if axes:
        return lambda: np.add.reduce(src, axis=axes, keepdims=True,
                                     out=final)
    return None  # same shape — caller handles


def _bwd_add(b, rec, g, pairs, writes, plan, dtype):
    kernels = []
    for index, B in writes:
        if B.shape == g.shape:
            return None  # contribution aliases g — fallback
        red = _bind_unbroadcast(plan, g, B, dtype)
        if red is None:
            return None
        kernels.append(red)
    return kernels


def _bwd_mul(b, rec, g, pairs, writes, plan, dtype):
    operands = (_operand(b["b"], dtype), _operand(b["a"], dtype))
    kernels = []
    for index, B in writes:
        other = operands[index]
        if B.shape == g.shape:
            kernels.append(_ufunc2(np.multiply, g, other, B))
            continue
        t = plan.request(g.shape, dtype)
        red = _bind_unbroadcast(plan, t, B, dtype)
        if red is None:
            return None

        def kernel(t=t, other=other, red=red):
            np.multiply(g, other, out=t)
            red()
        kernels.append(kernel)
    return kernels


def _bwd_div(b, rec, g, pairs, writes, plan, dtype):
    x = _operand(b["a"], dtype)
    y = _operand(b["b"], dtype)
    kernels = []
    for index, B in writes:
        same = B.shape == g.shape
        if index == 0:
            if same:
                kernels.append(_ufunc2(np.divide, g, y, B))
                continue
            t = plan.request(g.shape, dtype)
            red = _bind_unbroadcast(plan, t, B, dtype)
            if red is None:
                return None

            def kernel(t=t, red=red):
                np.divide(g, y, out=t)
                red()
            kernels.append(kernel)
        else:
            t = B if same else plan.request(g.shape, dtype)
            red = None
            if not same:
                red = _bind_unbroadcast(plan, t, B, dtype)
                if red is None:
                    return None
            y2 = plan.request(y.shape, dtype)

            def kernel(t=t, y2=y2, red=red):
                np.negative(g, out=t)
                np.multiply(t, x, out=t)
                np.multiply(y, y, out=y2)  # y ** 2
                np.divide(t, y2, out=t)
                if red is not None:
                    red()
            kernels.append(kernel)
    return kernels


def _bwd_sub(b, rec, g, pairs, writes, plan, dtype):
    kernels = []
    for index, B in writes:
        same = B.shape == g.shape
        if index == 0:
            if same:
                return None  # pair 0 aliases g when unwritten — fallback
            red = _bind_unbroadcast(plan, g, B, dtype)
            if red is None:
                return None
            kernels.append(red)
        elif same:
            kernels.append(lambda B=B: np.negative(g, out=B))
        else:
            t = plan.request(g.shape, dtype)
            red = _bind_unbroadcast(plan, t, B, dtype)
            if red is None:
                return None

            def kernel(t=t, red=red):
                np.negative(g, out=t)
                red()
            kernels.append(kernel)
    return kernels


def _bwd_maximum(b, rec, g, pairs, writes, plan, dtype):
    for _, B in writes:
        if B.shape != g.shape:
            return None
    x = _operand(b["a"], dtype)
    y = _operand(b["b"], dtype)
    wins = plan.request(g.shape, np.bool_)
    Ba = dict(writes).get(0)
    Bb = dict(writes).get(1)

    def kernel():
        np.greater_equal(x, y, out=wins)
        if Ba is not None:
            np.multiply(g, wins, out=Ba)
        if Bb is not None:
            np.logical_not(wins, out=wins)
            np.multiply(g, wins, out=Bb)
    return [kernel]


def _bwd_matmul(b, rec, g, pairs, writes, plan, dtype):
    x = _operand(b["a"], dtype)
    y = _operand(b["b"], dtype)
    if x.ndim < 2 or y.ndim < 2:
        return None
    for index, B in writes:
        if B.shape != (x.shape if index == 0 else y.shape):
            return None  # broadcast batch dims — fallback
    xT = np.swapaxes(x, -1, -2)
    yT = np.swapaxes(y, -1, -2)
    kernels = []
    for index, B in writes:
        if index == 0:
            kernels.append(_ufunc2(np.matmul, g, yT, B))
        else:
            kernels.append(_ufunc2(np.matmul, xT, g, B))
    return kernels


def _bwd_getitem(b, rec, g, pairs, writes, plan, dtype):
    index = b["index"]
    B = writes[0][1]

    def kernel():
        B.fill(0.0)
        np.add.at(B, index, g)
    return [kernel]


def _bwd_conv1x1(b, rec, g, pairs, writes, plan, dtype):
    x_t, w_t, bias_t = b["x"], b["weight"], b["bias"]
    s = b["stride"]
    xd = x_t.data[:, :, ::s, ::s] if s > 1 else x_t.data
    w_mat = w_t.data[:, :, 0, 0]
    n, o_ch = g.shape[:2]
    pix = g.shape[2] * g.shape[3]
    wT = w_mat.T  # standing view
    g3 = g.reshape(n, o_ch, pix) if g.flags.c_contiguous else None
    kernels = []
    for pair_index, B in writes:
        parent = pairs[pair_index][0]
        if parent is x_t:
            c_in = x_t.data.shape[1]
            scatter = plan.request((n, c_in) + g.shape[2:], dtype)
            cand = None
            if g3 is not None:
                def cand(dst, c_in=c_in):
                    d3 = dst.reshape(n, c_in, pix)
                    return lambda: np.matmul(wT, g3, out=d3)
            ein = _bind_einsum("nohw,oc->nchw", (g, w_mat), scatter, cand)

            def kernel(B=B, scatter=scatter, ein=ein):
                ein()
                B.fill(0.0)
                if s > 1:
                    B[:, :, ::s, ::s] += scatter
                else:
                    B += scatter
            kernels.append(kernel)
        elif parent is w_t:
            flat = B.reshape(w_mat.shape)
            kernels.append(_bind_einsum(
                "nohw,nchw->oc", (g, xd), flat,
                lambda dst: lambda: np.copyto(dst, np.tensordot(
                    g, xd, axes=([0, 2, 3], [0, 2, 3])))))
        else:  # bias
            kernels.append(lambda B=B: np.sum(g, axis=(0, 2, 3), out=B))
    return kernels


def _bwd_convdw(b, rec, g, pairs, writes, plan, dtype):
    x_t, w_t, bias_t = b["x"], b["weight"], b["bias"]
    s = b["stride"]
    n, c, h, w = x_t.data.shape
    kh, kw = w_t.data.shape[2:]
    oh = (h - kh) // s + 1
    ow = (w - kw) // s + 1
    cols = ops._im2col(x_t.data, kh, kw, s)
    w_sq = w_t.data[:, 0]
    kernels = []
    for pair_index, B in writes:
        parent = pairs[pair_index][0]
        if parent is x_t:
            # The strided scatter-adds must run in the same (i, j) order
            # as the eager closure (the windows overlap, so accumulation
            # order matters for bits).  The per-tap products are pure
            # elementwise ops, so they may be batched into one broadcast
            # multiply without changing bits — worth it only while the
            # tap workspace stays cache-resident.
            taps_shape = (kh, kw) + g.shape  # leading taps keep slices contiguous
            batch_taps = (np.prod(taps_shape) * np.dtype(dtype).itemsize
                          <= 1 << 20)
            dests = [B[:, :, i:i + s * oh:s, j:j + s * ow:s]
                     for i in range(kh) for j in range(kw)]
            if batch_taps:
                taps = plan.request(taps_shape, dtype)
                g6 = g[None, None]
                w6 = w_sq.transpose(1, 2, 0)[:, :, None, :, None, None]
                pieces = [(taps[i, j], dests[i * kw + j])
                          for i in range(kh) for j in range(kw)]

                def kernel(B=B, taps=taps, pieces=pieces):
                    np.multiply(g6, w6, out=taps)
                    B.fill(0.0)
                    for t, dest in pieces:
                        np.add(dest, t, out=dest)
            else:
                kernel = None
                if _FusionMode.enabled:
                    kernel = _fuse_convdw_gx_clip(
                        plan, dtype, b, g, B, w_sq, s, kh, kw, oh, ow)
                if kernel is None:
                    t = plan.request(g.shape, dtype)
                    wtaps = [w_sq[None, :, i, j, None, None]
                             for i in range(kh) for j in range(kw)]

                    def kernel(B=B, t=t):
                        B.fill(0.0)
                        for wv, dest in zip(wtaps, dests):
                            np.multiply(g, wv, out=t)
                            np.add(dest, t, out=dest)
            kernels.append(kernel)
        elif parent is w_t:
            flat = B.reshape(c, kh, kw)
            fused = (_fuse_convdw_gw(plan, dtype, rec, g, flat)
                     if _FusionMode.enabled else None)
            kernels.append(fused if fused is not None else _bind_einsum(
                "ncpq,ncijpq->cij", (g, cols), flat))
        else:
            kernels.append(lambda B=B: np.sum(g, axis=(0, 2, 3), out=B))
    return kernels


def _bwd_convgen(b, rec, g, pairs, writes, plan, dtype):
    ws = plan._conv_ws.get(id(rec))
    if ws is None:
        return None
    x_t, w_t = b["x"], b["weight"]
    (n, c_in, h, w, c_out, c_in_g, kh, kw, oh, ow, co_g, ckk) = ws["dims"]
    s, groups = ws["stride"], ws["groups"]
    cols_mat, w_mat = ws["cols_mat"], ws["w_mat"]

    gm = g.reshape(n, groups, co_g, oh * ow)
    if np.shares_memory(gm, g):
        gm_t = gm.transpose(0, 1, 3, 2)  # standing view of the grad slot
        grad_mat = lambda: gm_t
    else:
        gm_t = None
        grad_mat = lambda: g.reshape(
            n, groups, co_g, oh * ow).transpose(0, 1, 3, 2)

    kernels = []
    for pair_index, B in writes:
        parent = pairs[pair_index][0]
        if parent is x_t:
            gcols_mat = plan.request((n, groups, oh * ow, ckk), dtype)
            src = gcols_mat.reshape(
                n, groups, oh, ow, c_in_g, kh, kw).transpose(0, 1, 4, 5, 6, 2, 3)
            di, dj = kh - 1, kw - 1
            scatter = plan.request((n, c_in, kh, kw, h + di, w + dj),
                                   dtype, zero=True)
            hole = scatter[:, :, :, :, di:di + s * oh:s, dj:dj + s * ow:s]
            sn, sc, si, sj, sy, sx = scatter.strides
            window = np.lib.stride_tricks.as_strided(
                scatter[:, :, :, :, di:, dj:],
                shape=(n, c_in, kh, kw, h, w),
                strides=(sn, sc, si - sy, sj - sx, sy, sx),
            )

            if gm_t is not None:
                ein = _bind_einsum(
                    "ngpo,gok->ngpk", (gm_t, w_mat), gcols_mat,
                    lambda dst: lambda: np.matmul(gm_t, w_mat, out=dst))
            else:
                ein = lambda: np.einsum(
                    "ngpo,gok->ngpk", grad_mat(), w_mat, out=gcols_mat,
                    optimize=True)

            def kernel(B=B, src=src, hole=hole, window=window, ein=ein):
                ein()
                hole[...] = src
                # default (non-optimized) einsum matches _col2im verbatim
                np.einsum("ncijyx->ncyx", window, out=B)
            kernels.append(kernel)
        elif parent is w_t:
            flat = B.reshape(groups, co_g, ckk)
            cand = None
            if gm_t is not None:
                ga = plan.request((groups, co_g, n, oh * ow), dtype)
                ca = plan.request((groups, n, oh * ow, ckk), dtype)
                ga_m = ga.reshape(groups, co_g, n * oh * ow)
                ca_m = ca.reshape(groups, n * oh * ow, ckk)
                ga_src = gm_t.transpose(1, 3, 0, 2)
                ca_src = cols_mat.transpose(1, 0, 2, 3)

                def cand(dst, ga=ga, ca=ca, ga_m=ga_m, ca_m=ca_m,
                         ga_src=ga_src, ca_src=ca_src):
                    def kernel():
                        np.copyto(ga, ga_src)
                        np.copyto(ca, ca_src)
                        np.matmul(ga_m, ca_m, out=dst)
                    return kernel
            if gm_t is not None:
                kernels.append(_bind_einsum(
                    "ngpo,ngpk->gok", (gm_t, cols_mat), flat, cand))
            else:
                kernels.append(lambda flat=flat: np.einsum(
                    "ngpo,ngpk->gok", grad_mat(), cols_mat, out=flat,
                    optimize=True))
        else:
            kernels.append(lambda B=B: np.sum(g, axis=(0, 2, 3), out=B))
    return kernels


_BWD_FAST = {
    "relu": _bwd_relu, "clip": _bwd_clip, "dropout": _bwd_dropout,
    "exp": _bwd_exp, "log": _bwd_log, "sqrt": _bwd_sqrt,
    "sigmoid": _bwd_sigmoid, "tanh": _bwd_tanh, "neg": _bwd_neg,
    "add": _bwd_add, "mul": _bwd_mul, "div": _bwd_div, "sub": _bwd_sub,
    "maximum": _bwd_maximum, "matmul": _bwd_matmul, "getitem": _bwd_getitem,
    "conv2d_1x1": _bwd_conv1x1, "conv2d_dw": _bwd_convdw,
    "conv2d": _bwd_convgen,
}

# ----------------------------------------------------------------------
# Compiled plan
# ----------------------------------------------------------------------

def _tensor_operands(rec: _Record) -> Iterator[Tensor]:
    for value in list(rec.args) + list(rec.kwargs.values()):
        if isinstance(value, Tensor):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Tensor):
                    yield item


class StepPlan:
    """One compiled step: fixed buffers plus flat forward/backward schedules.

    Instances are built by :meth:`StepProgram.run` on a cache miss; replays
    validate inputs and guards, refresh the input buffers, and execute the
    schedules with zero tape construction.
    """

    def __init__(self, arena: BufferArena, dtype: np.dtype, grad: bool) -> None:
        self.arena = arena
        self.dtype = dtype
        self.grad = grad
        self.replays = 0
        self.fused_kernels = 0
        self.fusion_rejected = 0
        self.released = False
        self._fwd: List[Tuple[str, Callable[[], None]]] = []
        self._bwd: List[Tuple[str, Callable[[], None]]] = []
        #: per-kernel (kind, written-buffers) for the chain packer; None
        #: entries are fusion barriers (parallel to _fwd/_bwd)
        self._fwd_meta: List[Optional[tuple]] = []
        self._bwd_meta: List[Optional[tuple]] = []
        self._consumers: Dict[int, List[_Record]] = {}
        self._produced_by: Dict[int, _Record] = {}
        self._output_ids: set = set()
        self._leaf_assigns: List[Tuple[Tensor, np.ndarray]] = []
        self._inputs: Dict[str, np.ndarray] = {}
        self._input_tensors: Dict[str, Tensor] = {}
        self._outputs: Dict[str, np.ndarray] = {}
        self._guards: List[Tuple[Tensor, np.ndarray]] = []
        self._scratch: List[np.ndarray] = []
        self._conv_ws: Dict[int, dict] = {}
        self._guarded_ste: set = set()
        self._adopted_ids: set = set()
        self._adopted: List[np.ndarray] = []
        self._records: List[_Record] = []  # keeps every traced tensor alive

    # -- buffer bookkeeping -------------------------------------------
    def request(self, shape, dtype, zero: bool = False) -> np.ndarray:
        arr = self.arena.request(shape, dtype, zero=zero)
        self._scratch.append(arr)
        return arr

    def adopt(self, arr: np.ndarray) -> None:
        base = arr if arr.base is None else arr.base
        if id(base) not in self._adopted_ids:
            self._adopted_ids.add(id(base))
            self._adopted.append(base)
            self.arena.adopted_bytes += base.nbytes
            self.arena.adopted_arrays += 1

    def release(self) -> None:
        """Return workspaces to the arena pool and drop adopted accounting."""
        self.released = True
        for arr in self._scratch:
            self.arena.release(arr)
        self._scratch = []
        for base in self._adopted:
            self.arena.adopted_bytes -= base.nbytes
            self.arena.adopted_arrays -= 1
        self._adopted = []
        self._adopted_ids = set()

    # -- compilation --------------------------------------------------
    def _compile_forward(self, tracer: _Tracer) -> None:
        produced = {id(t) for t in self._input_tensors.values()}
        # STE outputs that select control flow (their data feeds a getitem,
        # possibly through a detach) get the argmax drift guard
        ste_bases: Dict[int, int] = {}
        for tag, entry in tracer.entries:
            if tag == "op" and entry.kind == "ste":
                arr = entry.out.data
                base = arr if arr.base is None else arr.base
                ste_bases[id(base)] = id(entry)
        if ste_bases:
            for tag, entry in tracer.entries:
                if tag != "op" or entry.kind != "getitem":
                    continue
                a = _bind(entry)["a"]
                if isinstance(a, Tensor):
                    arr = a.data
                    base = arr if arr.base is None else arr.base
                    rec_id = ste_bases.get(id(base))
                    if rec_id is not None:
                        self._guarded_ste.add(rec_id)

        # structural maps for the fusion pass: who consumes each traced
        # tensor, and which record produced it
        op_records: List[_Record] = []
        for tag, entry in tracer.entries:
            if tag != "op":
                continue
            op_records.append(entry)
            for t in _tensor_operands(entry):
                self._consumers.setdefault(id(t), []).append(entry)
            self._produced_by[id(entry.out)] = entry

        replaced: Dict[int, Optional[Callable[[], None]]] = {}
        if _FusionMode.enabled:
            replaced = _plan_fusions(self, op_records)

        guard_seen: set = set()
        for tag, entry in tracer.entries:
            if tag == "effect":
                self._fwd.append(("plan.effect", entry))
                self._fwd_meta.append(None)
                continue
            rec = entry
            self._records.append(rec)
            for t in _tensor_operands(rec):
                if id(t) in produced:
                    continue
                if t.requires_grad and t._backward is not None:
                    raise PlanError(
                        f"op {rec.kind!r} consumes a differentiable tensor "
                        f"built outside the traced step; compute it inside "
                        f"the step fn or pass it as a plan input")
                if id(t) not in guard_seen:
                    guard_seen.add(id(t))
                    self._guards.append((t, t.data))
            if id(rec) in replaced:
                kernel = replaced[id(rec)]
            else:
                kernel = _build_forward(rec, self, self.dtype)
            self.adopt(rec.out.data)
            produced.add(id(rec.out))
            if kernel is not None:
                self._fwd.append((getattr(kernel, "_label",
                                          f"{rec.kind}.replay"), kernel))
                self._fwd_meta.append(
                    (rec.kind, (rec.out.data,))
                    if rec.kind in ops.ELEMENTWISE_KINDS
                    and id(rec) not in replaced else None)

    def _compile_backward(self, loss: Optional[Tensor],
                          records_by_out: Dict[int, _Record]) -> None:
        """Run the traced step's real backward sweep while lowering it.

        Mirrors :meth:`Tensor.backward` exactly — same topological order,
        same slot arithmetic — calling each traced closure once.  Every
        gradient array the sweep produces is adopted, so replays rewrite
        the very arrays the eager step would have allocated (matching
        layouts keep the layout-sensitive pairwise reductions identical).
        As a side effect this *is* the trace step's backward: leaves end up
        with their gradients accumulated just as eagerly.
        """
        if loss is None or not isinstance(loss, Tensor):
            raise PlanError("a grad step plan needs a 'loss' output tensor")
        if not loss.requires_grad:
            raise PlanError("the traced 'loss' does not require grad")
        root = np.ones_like(loss.data)
        self.adopt(root)
        topo: List[Tensor] = []
        visited: set = set()
        stack: List[Tuple[Tensor, bool]] = [(loss, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: Dict[int, np.ndarray] = {id(loss): root}
        arrivals: Dict[int, List[np.ndarray]] = {id(loss): [root]}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            arrival = arrivals.pop(id(node), None)
            if node_grad is None:
                continue
            if isinstance(node_grad, np.generic):
                # ufuncs return numpy scalars for 0-d operands; replay needs
                # a real array slot (same bits either way)
                node_grad = np.asarray(node_grad)
            if len(arrival) > 1:
                # eager builds the final slot from fresh pairwise adds; the
                # replay rebuilds the adopted final array in the same order
                self.adopt(node_grad)
                seq = tuple(arrival)
                partial = (self.request(node_grad.shape, node_grad.dtype)
                           if len(seq) > 2 else None)

                def accumulate(seq=seq, partial=partial, final=node_grad):
                    if len(seq) == 2:
                        np.add(seq[0], seq[1], out=final)
                        return
                    np.add(seq[0], seq[1], out=partial)
                    for c in seq[2:-1]:
                        np.add(partial, c, out=partial)
                    np.add(partial, seq[-1], out=final)
                self._bwd.append(("accumulate.replay", accumulate))
                self._bwd_meta.append(("acc", (node_grad,)))
            elif arrival[0] is not node_grad:
                # np.asarray had to cast-copy the single contribution
                self.adopt(node_grad)
                self._bwd.append(("accumulate.replay",
                                  lambda s=arrival[0], d=node_grad:
                                  np.copyto(d, s)))
                self._bwd_meta.append(("acc", (node_grad,)))
            if node._backward is None:
                if node.grad is not None:
                    raise PlanError(
                        "a leaf reached by the traced backward already "
                        "carries a gradient; call zero_grad before the "
                        "planned step")
                leaf_grad = np.array(node_grad, dtype=node.data.dtype,
                                     copy=True)
                node.grad = leaf_grad  # the trace step's real accumulation
                self.adopt(leaf_grad)
                self._bwd.append(("leaf.replay",
                                  lambda d=leaf_grad, s=node_grad:
                                  np.copyto(d, s)))
                self._bwd_meta.append(("leaf", (leaf_grad,)))
                self._leaf_assigns.append((node, leaf_grad))
                continue
            rec = records_by_out.get(id(node))
            if rec is None:
                raise PlanError(
                    "the traced backward reached a tensor produced by an "
                    "untraced operation (a raw Tensor._make closure?); only "
                    "ops primitives can be compiled into a step plan")
            pairs = node._backward(node_grad)  # the real closure, once
            pairs = [
                (p, np.asarray(c, dtype=p.data.dtype)
                 if isinstance(c, np.generic) else c)
                for p, c in pairs
            ]
            writes: List[Tuple[int, np.ndarray]] = []
            for i, (parent, contribution) in enumerate(pairs):
                if not parent.requires_grad:
                    continue
                if not isinstance(contribution, np.ndarray):
                    raise PlanError(
                        f"op {rec.kind!r} produced a non-array gradient "
                        f"contribution; cannot compile")
                if contribution is node_grad or (
                        contribution.size
                        and np.shares_memory(contribution, node_grad)):
                    continue  # standing view of the grad slot: auto-updates
                self.adopt(contribution)
                writes.append((i, contribution))
            if writes:
                kernels = None
                fast = _BWD_FAST.get(rec.kind)
                if fast is not None:
                    kernels = fast(_bind(rec), rec, node_grad, pairs, writes,
                                   self, self.dtype)
                if kernels is None:
                    closure = node._backward
                    idxs = tuple(i for i, _ in writes)
                    slots = tuple(arr for _, arr in writes)

                    def generic(closure=closure, g=node_grad, idxs=idxs,
                                slots=slots):
                        ps = closure(g)
                        for i, dst in zip(idxs, slots):
                            np.copyto(dst, ps[i][1])
                    kernels = [generic]
                label = f"{rec.kind}.bwd.replay"
                meta = ((f"{rec.kind}.bwd", tuple(arr for _, arr in writes))
                        if rec.kind in ops.ELEMENTWISE_KINDS else None)
                for kernel in kernels:
                    self._bwd.append((getattr(kernel, "_label", label),
                                      kernel))
                    self._bwd_meta.append(meta)
            for parent, contribution in pairs:
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                    arrivals[key].append(contribution)
                else:
                    grads[key] = np.asarray(contribution,
                                            dtype=parent.data.dtype)
                    arrivals[key] = [contribution]

    def _pack_elementwise(self) -> None:
        """Merge adjacent elementwise kernels after lowering (probe-gated)."""
        self._fwd = _pack_schedule(self, self._fwd, self._fwd_meta)
        if self.grad:
            self._bwd = _pack_schedule(self, self._bwd, self._bwd_meta)
        self._fwd_meta = []
        self._bwd_meta = []

    # -- execution ----------------------------------------------------
    def replay(self, inputs: Dict[str, np.ndarray],
               prof=None) -> Dict[str, np.ndarray]:
        """Re-execute the compiled step on fresh input values.

        Returns the named output arrays (plan-owned: valid until the next
        replay).  Any mismatch with the traced step — different input names
        or shapes, rebound parameter storage, drifted sampled path — raises
        :class:`PlanError` loudly rather than reusing stale state.
        """
        if set(inputs) != set(self._inputs):
            raise PlanError(
                f"plan inputs changed: compiled with "
                f"{sorted(self._inputs)}, replayed with {sorted(inputs)}")
        for name, buf in self._inputs.items():
            value = np.asarray(inputs[name])
            if value.shape != buf.shape:
                raise PlanError(
                    f"plan input {name!r} changed shape: compiled "
                    f"{buf.shape}, got {value.shape} — use a new plan key")
            np.copyto(buf, value)
        for t, arr in self._guards:
            if t.data is not arr:
                raise PlanError(
                    "a tensor used by the compiled step was rebound to new "
                    "storage since tracing (.data replaced); in-place "
                    "updates keep plans valid, rebinding does not")
        if prof is None:
            for _, kernel in self._fwd:
                kernel()
            if self.grad:
                for _, kernel in self._bwd:
                    kernel()
        else:
            for label, kernel in self._fwd:
                start = time.perf_counter()
                kernel()
                prof.record(label, time.perf_counter() - start)
            if self.grad:
                for label, kernel in self._bwd:
                    start = time.perf_counter()
                    kernel()
                    prof.record(label, time.perf_counter() - start)
        for t, leaf_grad in self._leaf_assigns:
            t.grad = leaf_grad
        self.replays += 1
        return dict(self._outputs)


# ----------------------------------------------------------------------
# Program: LRU plan cache + eager escape hatch
# ----------------------------------------------------------------------

class StepProgram:
    """Caches compiled :class:`StepPlan` objects behind shape-aware keys.

    ``run(key, inputs, fn, grad=...)`` executes one training/eval step:

    * plans disabled — plain eager step (``Tensor`` per input, ``fn``,
      ``loss.backward()``), bit-identical to the historical engine;
    * cache miss — trace ``fn`` once eagerly (which *is* that step) and
      compile it;
    * cache hit — replay the plan with zero tape construction.

    The caller key should capture everything that changes the traced op
    sequence (architecture signature, batch shape); the program extends it
    with ``(dtype, fast-kernels flag, grad flag)`` automatically.  ``fn``
    receives ``{name: Tensor}`` and must return ``{name: Tensor}`` with a
    ``"loss"`` entry when ``grad=True``; returned arrays are plan-owned.

    Tracing costs a couple of eager steps' worth of work, so a key is only
    compiled once it has been seen ``compile_threshold`` times — earlier
    sightings run eagerly (bit-identical).  That keeps exploration phases
    (near-uniform Gumbel sampling, where paths rarely repeat) at eager
    speed while converged phases replay compiled plans.  Set
    ``compile_threshold=1`` to compile on first sight.
    """

    def __init__(self, name: str = "step", capacity: int = 32,
                 compile_threshold: int = 2) -> None:
        self.name = name
        self.capacity = max(1, int(capacity))
        self.compile_threshold = max(1, int(compile_threshold))
        self.arena = BufferArena()
        self._plans: "OrderedDict[tuple, StepPlan]" = OrderedDict()
        self._seen: "OrderedDict[tuple, int]" = OrderedDict()
        self._epoch_plans: "OrderedDict[tuple, Any]" = OrderedDict()
        self.plans_compiled = 0
        self.replays = 0
        self.eager_steps = 0
        self.evictions = 0
        self.kernels_fused = 0
        self.fusion_rejected = 0
        self.epoch_plans_compiled = 0
        self.epoch_plan_hits = 0
        self.epoch_plan_invalidations = 0
        #: what the last run() did ("replay" | "compile" | "eager") and the
        #: plan it used — epoch-plan assembly reads these
        self.last_event: str = "eager"
        self.last_plan: Optional[StepPlan] = None

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> Dict[str, int]:
        """Counters for journals/benchmarks (see ISSUE acceptance list)."""
        return {
            "plans_compiled": self.plans_compiled,
            "replays": self.replays,
            "eager_steps": self.eager_steps,
            "plan_evictions": self.evictions,
            "arena_hits": self.arena.hits,
            "arena_misses": self.arena.misses,
            "arena_bytes": self.arena.total_bytes(),
            "kernels_fused": self.kernels_fused,
            "fusion_rejected": self.fusion_rejected,
            "epoch_plans_compiled": self.epoch_plans_compiled,
            "epoch_plan_hits": self.epoch_plan_hits,
            "epoch_plan_invalidations": self.epoch_plan_invalidations,
        }

    def clear(self) -> None:
        """Drop every cached plan (workspaces return to the arena pool)."""
        self._epoch_plans.clear()
        while self._plans:
            _, plan = self._plans.popitem(last=False)
            plan.release()
            self.evictions += 1

    # -- epoch plans ---------------------------------------------------
    # Whole-epoch schedules (see core.lightnas._EpochPlan) are keyed here
    # so they share the LRU budget and the journal/trace-summary counters
    # with the per-step plans they chain.
    def epoch_plan(self, key):
        """The cached epoch plan for ``key``, or None (LRU-refreshing)."""
        ep = self._epoch_plans.get(key)
        if ep is not None:
            self._epoch_plans.move_to_end(key)
        return ep

    def store_epoch_plan(self, key, ep) -> None:
        self._epoch_plans[key] = ep
        self.epoch_plans_compiled += 1
        while len(self._epoch_plans) > self.capacity:
            self._epoch_plans.popitem(last=False)

    def invalidate_epoch_plan(self, key) -> None:
        """Drop one epoch plan (baked path drifted / step plan evicted)."""
        self._epoch_plans.pop(key, None)
        self.epoch_plan_invalidations += 1

    def run(self, key, inputs: Dict[str, np.ndarray], fn,
            grad: bool = True) -> Dict[str, np.ndarray]:
        if not _PlanMode.enabled:
            self.eager_steps += 1
            self.last_event, self.last_plan = "eager", None
            return self._eager_step(inputs, fn, grad)
        if ops._TRACER is not None:
            raise PlanError("StepProgram.run cannot nest inside an active "
                            "step trace")
        dtype = get_default_dtype()
        full_key = (key, dtype.name, bool(ops._FAST_KERNELS), bool(grad),
                    _FusionMode.enabled)
        plan = self._plans.get(full_key)
        if plan is not None:
            self._plans.move_to_end(full_key)
            result = plan.replay(inputs, profiler.active_profile())
            self.replays += 1
            self.last_event, self.last_plan = "replay", plan
            return result
        count = self._seen.get(full_key, 0) + 1
        self._seen[full_key] = count
        self._seen.move_to_end(full_key)
        while len(self._seen) > 64 * self.capacity:
            self._seen.popitem(last=False)
        if count < self.compile_threshold:
            self.eager_steps += 1
            self.last_event, self.last_plan = "eager", None
            return self._eager_step(inputs, fn, grad)
        plan, result = self._trace(inputs, fn, grad, dtype)
        self._plans[full_key] = plan
        self.plans_compiled += 1
        self.kernels_fused += plan.fused_kernels
        self.fusion_rejected += plan.fusion_rejected
        self.last_event, self.last_plan = "compile", plan
        while len(self._plans) > self.capacity:
            _, evicted = self._plans.popitem(last=False)
            evicted.release()
            self.evictions += 1
        return result

    @staticmethod
    def _eager_step(inputs, fn, grad) -> Dict[str, np.ndarray]:
        tensors = {name: Tensor(value) for name, value in inputs.items()}
        outs = fn(tensors)
        if grad:
            outs["loss"].backward()
        return {name: t.data for name, t in outs.items()}

    def _trace(self, inputs, fn, grad,
               dtype) -> Tuple[StepPlan, Dict[str, np.ndarray]]:
        plan = StepPlan(self.arena, dtype, grad)
        for name, value in inputs.items():
            buf = np.array(value, dtype=dtype, copy=True)  # layout-preserving
            plan._inputs[name] = buf
            plan._input_tensors[name] = Tensor(buf)
            plan.adopt(buf)
        tracer = _Tracer()
        ops._TRACER = tracer
        try:
            outs = fn(dict(plan._input_tensors))
        finally:
            ops._TRACER = None
        for name, t in outs.items():
            if not isinstance(t, Tensor):
                raise PlanError(f"step fn output {name!r} is not a Tensor")
        plan._output_ids = {id(t) for t in outs.values()}
        plan._compile_forward(tracer)
        if grad:
            records_by_out = {id(rec.out): rec for rec in plan._records}
            plan._compile_backward(outs.get("loss"), records_by_out)
        if _FusionMode.enabled:
            plan._pack_elementwise()
        for name, t in outs.items():
            plan._outputs[name] = t.data
            plan.adopt(t.data)
        return plan, dict(plan._outputs)
