"""Higher-level differentiable functions used by the NAS engines.

Includes the numerically-stable softmax family, cross-entropy, and the
Gumbel-Softmax machinery of LightNAS §3.3:

* :func:`gumbel_noise` — samples ``G ~ Gumbel(0, 1)``.
* :func:`gumbel_softmax` — the relaxation of Eq. (7),
  ``P̂ = softmax((logits + G) / τ)``.
* :func:`hard_binarize_ste` — Eq. (9): forward emits the one-hot argmax
  ``P̄``, backward passes the gradient straight through
  (``∂P̄/∂P̂ ≈ 1``, Bengio et al. 2013), which is exactly the approximation
  the paper invokes in Eq. (12).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, _GradMode, get_default_dtype
from . import ops

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "one_hot",
    "gumbel_noise",
    "gumbel_softmax",
    "hard_binarize_ste",
    "mse_loss",
    "l1_loss",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``.

    The max-shift is the (non-differentiable) :func:`repro.nn.ops.amax`
    primitive, so step plans recompute it from the live input on replay;
    values and gradients are unchanged from the historical baked constant.
    """
    shifted = x - ops.amax(x, axis=axis, keepdims=True)
    exps = ops.exp(shifted)
    return exps / ops.sum_(exps, axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x - ops.amax(x, axis=axis, keepdims=True)
    return shifted - ops.log(ops.sum_(ops.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to a one-hot float array ``(N, C)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or labels.max(initial=0) >= num_classes:
        raise ValueError("labels out of range for num_classes")
    out = np.zeros((labels.shape[0], num_classes), dtype=get_default_dtype())
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def nll_loss(log_probs: Tensor, labels: Optional[np.ndarray] = None, *,
             targets: Optional[Tensor] = None) -> Tensor:
    """Mean negative log-likelihood given ``(N, C)`` log-probabilities.

    Pass either integer ``labels`` (one-hot encoded internally) or a
    precomputed one-hot ``targets`` tensor — the latter lets compiled step
    plans treat the targets as a per-step input instead of a baked
    constant.  Both paths compute bit-identical losses.
    """
    if targets is None:
        if labels is None:
            raise ValueError("nll_loss needs labels or targets")
        targets = Tensor(one_hot(labels, log_probs.shape[-1]))
    picked = ops.sum_(log_probs * targets, axis=-1)
    return -ops.mean(picked)


def cross_entropy(logits: Tensor, labels: Optional[np.ndarray] = None, *,
                  targets: Optional[Tensor] = None) -> Tensor:
    """Mean softmax cross-entropy over a batch of ``(N, C)`` logits."""
    return nll_loss(log_softmax(logits, axis=-1), labels, targets=targets)


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error; ``target`` may be a Tensor or array."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target.detach()
    return ops.mean(diff * diff)


def l1_loss(pred: Tensor, target) -> Tensor:
    """Mean absolute error (used for robust predictor fitting)."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = (pred - target.detach()).data
    out = np.abs(diff).mean()
    if not _GradMode.enabled or not pred.requires_grad:
        return Tensor(out)
    sign = np.sign(diff)

    def backward(grad):
        return [(pred, grad * sign / diff.size)]

    return Tensor._make(out, (pred,), backward)


def gumbel_noise(shape, rng: np.random.Generator) -> np.ndarray:
    """Sample ``G ~ Gumbel(0, 1)`` of the given shape.

    Uses the inverse-CDF transform ``-log(-log(U))`` with ``U`` clipped away
    from {0, 1} for numerical safety.
    """
    u = rng.uniform(low=1e-12, high=1.0 - 1e-12, size=shape)
    return -np.log(-np.log(u))


def gumbel_softmax(
    logits: Tensor,
    tau: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    noise: Optional[np.ndarray] = None,
    axis: int = -1,
    inv_tau: Optional[Tensor] = None,
) -> Tensor:
    """Gumbel-Softmax relaxation (Eq. 7): ``softmax((logits + G)/τ)``.

    Parameters
    ----------
    logits:
        Unnormalised scores (the paper feeds the probabilities ``P`` here;
        both are valid parameterisations of the same distribution family).
    tau:
        Softmax temperature; the paper anneals ``τ`` from 5 towards 0.
    rng / noise:
        Either a generator used to draw fresh Gumbel noise, or an explicit
        noise array (useful for deterministic tests).  ``noise=None`` with
        ``rng=None`` disables the noise (plain tempered softmax).  ``noise``
        may also be a :class:`Tensor`, which lets compiled step plans feed
        the per-step draw as an input instead of a baked constant.
    inv_tau:
        Optional ``1/τ`` as a tensor; when given it replaces ``tau`` so step
        plans can treat the annealed temperature as a per-step input.  The
        product is bit-identical because ``x * inv_tau`` is exactly the
        ``x * (1.0 / tau)`` the scalar path computes.
    """
    if inv_tau is None:
        if tau is None or tau <= 0:
            raise ValueError(f"gumbel_softmax temperature must be positive, got {tau}")
        inv_tau = 1.0 / tau
    if noise is None:
        noise = gumbel_noise(logits.shape, rng) if rng is not None else np.zeros(logits.shape)
    noise_t = noise if isinstance(noise, Tensor) else Tensor(noise)
    perturbed = (logits + noise_t) * inv_tau
    return softmax(perturbed, axis=axis)


@ops._op("ste")
def hard_binarize_ste(probs: Tensor, axis: int = -1) -> Tensor:
    """Eq. (9): one-hot argmax forward, straight-through identity backward.

    The forward output ``P̄`` has exactly one 1 per slice along ``axis``;
    the backward pass forwards the incoming gradient to ``probs`` unchanged,
    implementing the paper's ``∂P̄/∂P̂ ≈ 1`` approximation.
    """
    data = probs.data
    hard = np.zeros_like(data)
    idx = np.argmax(data, axis=axis)
    np.put_along_axis(hard, np.expand_dims(idx, axis=axis), 1.0, axis=axis)
    if not _GradMode.enabled or not probs.requires_grad:
        return Tensor(hard)

    def backward(grad):
        return [(probs, grad)]

    return Tensor._make(hard, (probs,), backward)
