"""Measurement-campaign dataset for predictor training (§3.2).

The paper samples 10,000 random architectures from the space, measures each
on the Jetson AGX Xavier, and splits 80/20 into train/validation.
:func:`collect_latency_dataset` / :func:`collect_energy_dataset` reproduce
that campaign against the simulated device, returning a
:class:`PredictorDataset` of flattened one-hot encodings and measured
targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..hardware.energy import EnergyMeter, EnergyModel
from ..hardware.flops import count_macs_many, count_params_many
from ..hardware.latency import LatencyModel
from ..search_space.space import Architecture, SearchSpace

__all__ = ["PredictorDataset", "collect_latency_dataset", "collect_energy_dataset"]


@dataclass
class PredictorDataset:
    """Encoded architectures with measured hardware targets.

    Attributes
    ----------
    features:
        ``(N, L·K)`` flattened one-hot encodings (the ᾱ matrices).
    targets:
        ``(N,)`` measured metric values (ms or mJ).
    archs:
        The underlying architectures, aligned with ``features`` rows.
    """

    features: np.ndarray
    targets: np.ndarray
    archs: List[Architecture]

    def __post_init__(self) -> None:
        if len(self.features) != len(self.targets) or len(self.features) != len(self.archs):
            raise ValueError("features, targets and archs must be aligned")

    def __len__(self) -> int:
        return len(self.targets)

    def split(self, train_fraction: float, rng: np.random.Generator
              ) -> Tuple["PredictorDataset", "PredictorDataset"]:
        """Shuffled train/validation split (the paper uses 80/20)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        if cut == 0 or cut == len(self):
            raise ValueError("split produces an empty fold")
        first, second = order[:cut], order[cut:]

        def take(idx: np.ndarray) -> PredictorDataset:
            return PredictorDataset(
                features=self.features[idx],
                targets=self.targets[idx],
                archs=[self.archs[i] for i in idx],
            )

        return take(first), take(second)


def encode_architectures(space: SearchSpace, archs: List[Architecture]) -> np.ndarray:
    """Flatten each architecture's ᾱ matrix into an ``(N, L·K)`` array."""
    return space.encode_many(archs)


def _record_campaign(archive, space: SearchSpace, ops: np.ndarray, *,
                     device: str, engine: str,
                     latency_ms=None, energy_mj=None,
                     measured_latency_ms=None, measured_energy_mj=None) -> None:
    """Write-through one measurement campaign into an archive.

    Recording only — the campaign itself never *reads* the archive, so a
    seeded campaign stays bit-identical whether or not one is attached.
    """
    archive.add_population(
        ops,
        device=device,
        latency_ms=latency_ms,
        energy_mj=energy_mj,
        measured_latency_ms=measured_latency_ms,
        measured_energy_mj=measured_energy_mj,
        macs_m=count_macs_many(space, ops) / 1e6,
        params_m=count_params_many(space, ops) / 1e6,
        engine=engine,
    )


def collect_latency_dataset(
    latency_model: LatencyModel,
    num_samples: int,
    rng: np.random.Generator,
    archive=None,
) -> PredictorDataset:
    """Sample architectures and measure latency, as in the paper's campaign.

    Sampling, measurement, and encoding are all population-level numpy
    operations; the generator is consumed exactly as by the historical
    per-architecture loop, so seeded campaigns are bit-identical to it.
    When an :class:`~repro.archive.store.ArchitectureArchive` is given,
    every sample is recorded with both the noiseless model latency and the
    noisy measurement.
    """
    space = latency_model.space
    ops = space.sample_indices(num_samples, rng)
    targets = latency_model.measure_many(ops, rng)
    if archive is not None:
        _record_campaign(archive, space, ops,
                         device=latency_model.device.name,
                         engine="latency-campaign",
                         latency_ms=latency_model.latency_many(ops),
                         measured_latency_ms=targets)
    return PredictorDataset(space.encode_many(ops), targets,
                            space.indices_to_archs(ops))


def collect_energy_dataset(
    energy_model: EnergyModel,
    num_samples: int,
    rng: np.random.Generator,
    archive=None,
) -> PredictorDataset:
    """Sample architectures and measure energy with temperature drift."""
    space = energy_model.space
    ops = space.sample_indices(num_samples, rng)
    meter = EnergyMeter(energy_model, rng)
    targets = meter.measure_many(ops)
    if archive is not None:
        _record_campaign(archive, space, ops,
                         device=energy_model.device.name,
                         engine="energy-campaign",
                         energy_mj=energy_model.energy_many(ops),
                         measured_energy_mj=targets)
    return PredictorDataset(space.encode_many(ops), targets,
                            space.indices_to_archs(ops))
