"""Measurement-campaign dataset for predictor training (§3.2).

The paper samples 10,000 random architectures from the space, measures each
on the Jetson AGX Xavier, and splits 80/20 into train/validation.
:func:`collect_latency_dataset` / :func:`collect_energy_dataset` reproduce
that campaign against the simulated device, returning a
:class:`PredictorDataset` of flattened one-hot encodings and measured
targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..hardware.energy import EnergyMeter, EnergyModel
from ..hardware.flops import count_macs_many, count_params_many
from ..hardware.latency import LatencyModel
from ..search_space.space import Architecture, SearchSpace

__all__ = ["PredictorDataset", "campaign_shards",
           "collect_latency_dataset", "collect_energy_dataset",
           "collect_latency_dataset_sharded",
           "collect_energy_dataset_sharded"]


@dataclass
class PredictorDataset:
    """Encoded architectures with measured hardware targets.

    Attributes
    ----------
    features:
        ``(N, L·K)`` flattened one-hot encodings (the ᾱ matrices).
    targets:
        ``(N,)`` measured metric values (ms or mJ).
    archs:
        The underlying architectures, aligned with ``features`` rows.
    """

    features: np.ndarray
    targets: np.ndarray
    archs: List[Architecture]

    def __post_init__(self) -> None:
        if len(self.features) != len(self.targets) or len(self.features) != len(self.archs):
            raise ValueError("features, targets and archs must be aligned")

    def __len__(self) -> int:
        return len(self.targets)

    def split(self, train_fraction: float, rng: np.random.Generator
              ) -> Tuple["PredictorDataset", "PredictorDataset"]:
        """Shuffled train/validation split (the paper uses 80/20)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        if cut == 0 or cut == len(self):
            raise ValueError("split produces an empty fold")
        first, second = order[:cut], order[cut:]

        def take(idx: np.ndarray) -> PredictorDataset:
            return PredictorDataset(
                features=self.features[idx],
                targets=self.targets[idx],
                archs=[self.archs[i] for i in idx],
            )

        return take(first), take(second)


def encode_architectures(space: SearchSpace, archs: List[Architecture]) -> np.ndarray:
    """Flatten each architecture's ᾱ matrix into an ``(N, L·K)`` array."""
    return space.encode_many(archs)


def _record_campaign(archive, space: SearchSpace, ops: np.ndarray, *,
                     device: str, engine: str,
                     latency_ms=None, energy_mj=None,
                     measured_latency_ms=None, measured_energy_mj=None) -> None:
    """Write-through one measurement campaign into an archive.

    Recording only — the campaign itself never *reads* the archive, so a
    seeded campaign stays bit-identical whether or not one is attached.
    """
    archive.add_population(
        ops,
        device=device,
        latency_ms=latency_ms,
        energy_mj=energy_mj,
        measured_latency_ms=measured_latency_ms,
        measured_energy_mj=measured_energy_mj,
        macs_m=count_macs_many(space, ops) / 1e6,
        params_m=count_params_many(space, ops) / 1e6,
        engine=engine,
    )


def collect_latency_dataset(
    latency_model: LatencyModel,
    num_samples: int,
    rng: np.random.Generator,
    archive=None,
) -> PredictorDataset:
    """Sample architectures and measure latency, as in the paper's campaign.

    Sampling, measurement, and encoding are all population-level numpy
    operations; the generator is consumed exactly as by the historical
    per-architecture loop, so seeded campaigns are bit-identical to it.
    When an :class:`~repro.archive.store.ArchitectureArchive` is given,
    every sample is recorded with both the noiseless model latency and the
    noisy measurement.
    """
    space = latency_model.space
    ops = space.sample_indices(num_samples, rng)
    targets = latency_model.measure_many(ops, rng)
    if archive is not None:
        _record_campaign(archive, space, ops,
                         device=latency_model.device.name,
                         engine="latency-campaign",
                         latency_ms=latency_model.latency_many(ops),
                         measured_latency_ms=targets)
    return PredictorDataset(space.encode_many(ops), targets,
                            space.indices_to_archs(ops))


def collect_energy_dataset(
    energy_model: EnergyModel,
    num_samples: int,
    rng: np.random.Generator,
    archive=None,
) -> PredictorDataset:
    """Sample architectures and measure energy with temperature drift."""
    space = energy_model.space
    ops = space.sample_indices(num_samples, rng)
    meter = EnergyMeter(energy_model, rng)
    targets = meter.measure_many(ops)
    if archive is not None:
        _record_campaign(archive, space, ops,
                         device=energy_model.device.name,
                         engine="energy-campaign",
                         energy_mj=energy_model.energy_many(ops),
                         measured_energy_mj=targets)
    return PredictorDataset(space.encode_many(ops), targets,
                            space.indices_to_archs(ops))


# ----------------------------------------------------------------------
# Sharded campaigns (RunFleet fan-out)
# ----------------------------------------------------------------------

def campaign_shards(num_samples: int, shard_size: int = 2500
                    ) -> List[Tuple[int, int]]:
    """Deterministic ``(shard_index, count)`` decomposition of a campaign.

    The layout depends only on ``num_samples`` and ``shard_size`` — never
    on how many workers run the shards — which is what makes sharded
    campaigns jobs-invariant: shard ``i`` always samples and measures
    under ``default_rng([seed, i])``, whoever executes it.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if shard_size < 1:
        raise ValueError("shard_size must be positive")
    shards = []
    start = 0
    while start < num_samples:
        count = min(shard_size, num_samples - start)
        shards.append((len(shards), count))
        start += count
    return shards


def _collect_sharded(measure_shard: Callable[[int, int], Tuple[np.ndarray,
                                                               np.ndarray]],
                     shards: List[Tuple[int, int]],
                     fleet=None) -> Tuple[np.ndarray, np.ndarray]:
    """Run the shards (optionally through a RunFleet) and merge in order."""
    if fleet is not None and len(shards) > 1:
        from ..runtime.parallel import FleetTask
        tasks = [FleetTask(name=f"shard_{index:03d}",
                           fn=lambda ctx, index=index, count=count:
                           measure_shard(index, count),
                           header={"shard": index, "count": count})
                 for index, count in shards]
        pieces = fleet.run(tasks).values()  # loud on any failure
    else:
        pieces = [measure_shard(index, count) for index, count in shards]
    ops = np.concatenate([piece[0] for piece in pieces], axis=0)
    targets = np.concatenate([piece[1] for piece in pieces], axis=0)
    return ops, targets


def collect_latency_dataset_sharded(
    latency_model: LatencyModel,
    num_samples: int,
    seed: int,
    *,
    shard_size: int = 2500,
    fleet=None,
    archive=None,
) -> PredictorDataset:
    """Campaign in independent shards, optionally fanned across a RunFleet.

    Shard ``i`` samples and measures under its own spawned stream
    ``default_rng([seed, i])``, so the result is **jobs-invariant**: the
    same dataset bit-for-bit at ``fleet=None``, ``jobs=1`` or ``jobs=N``.
    (The shard layout is a different RNG consumption order than the
    single-stream :func:`collect_latency_dataset`, so the two collectors
    produce different — equally valid — campaigns for one seed.)

    Workers return only ``(ops, measurements)`` pairs; encoding and the
    archive write-through run in the parent, in shard order, so the
    archive's single-writer WAL discipline is preserved.
    """
    space = latency_model.space
    shards = campaign_shards(num_samples, shard_size)

    def measure_shard(index: int, count: int):
        rng = np.random.default_rng([seed, index])
        ops = space.sample_indices(count, rng)
        return ops, latency_model.measure_many(ops, rng)

    ops, targets = _collect_sharded(measure_shard, shards, fleet)
    if archive is not None:
        _record_campaign(archive, space, ops,
                         device=latency_model.device.name,
                         engine="latency-campaign",
                         latency_ms=latency_model.latency_many(ops),
                         measured_latency_ms=targets)
    return PredictorDataset(space.encode_many(ops), targets,
                            space.indices_to_archs(ops))


def collect_energy_dataset_sharded(
    energy_model: EnergyModel,
    num_samples: int,
    seed: int,
    *,
    shard_size: int = 2500,
    fleet=None,
    archive=None,
) -> PredictorDataset:
    """Sharded energy campaign; see :func:`collect_latency_dataset_sharded`.

    Each shard runs its own :class:`EnergyMeter`, so the thermal-drift
    trajectory restarts per shard — part of the deterministic layout, not
    an artefact of parallelism.
    """
    space = energy_model.space
    shards = campaign_shards(num_samples, shard_size)

    def measure_shard(index: int, count: int):
        rng = np.random.default_rng([seed, index])
        ops = space.sample_indices(count, rng)
        return ops, EnergyMeter(energy_model, rng).measure_many(ops)

    ops, targets = _collect_sharded(measure_shard, shards, fleet)
    if archive is not None:
        _record_campaign(archive, space, ops,
                         device=energy_model.device.name,
                         engine="energy-campaign",
                         energy_mj=energy_model.energy_many(ops),
                         measured_energy_mj=targets)
    return PredictorDataset(space.encode_many(ops), targets,
                            space.indices_to_archs(ops))
