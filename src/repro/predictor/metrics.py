"""Accuracy metrics for hardware-metric predictors."""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["rmse", "mae", "kendall_tau", "spearman_rho", "max_error"]


def rmse(pred: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square error (the paper's headline predictor metric)."""
    pred, truth = np.asarray(pred), np.asarray(truth)
    return float(np.sqrt(np.mean((pred - truth) ** 2)))


def mae(pred: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(np.asarray(pred) - np.asarray(truth))))


def max_error(pred: np.ndarray, truth: np.ndarray) -> float:
    """Worst-case absolute error."""
    return float(np.max(np.abs(np.asarray(pred) - np.asarray(truth))))


def kendall_tau(pred: np.ndarray, truth: np.ndarray) -> float:
    """Kendall rank correlation — what matters for search is ranking."""
    tau = stats.kendalltau(pred, truth).statistic
    return float(tau)


def spearman_rho(pred: np.ndarray, truth: np.ndarray) -> float:
    """Spearman rank correlation."""
    rho = stats.spearmanr(pred, truth).statistic
    return float(rho)
