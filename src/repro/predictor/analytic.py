"""Exact analytic cost predictors (FLOPs / parameters).

Unlike latency and energy — which need measurement campaigns because they
emerge from device behaviour — multiply-accumulate and parameter counts are
*exactly additive* over the one-hot encoding: ``metric(ᾱ) = Σ ᾱ·C + fixed``
with a per-(layer, operator) cost table C.  :class:`AnalyticCostPredictor`
exposes that closed form through the same interface as
:class:`repro.predictor.mlp.MLPPredictor` (including the differentiable
tensor path), so the LightNAS engine can search under a FLOPs or parameter
budget with zero campaign cost — e.g. the paper's mobile setting
("multi-adds strictly under 600M") becomes a searchable constraint instead
of a post-hoc check.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .. import nn
from ..hardware import flops
from ..search_space.space import Architecture, SearchSpace

__all__ = ["AnalyticCostPredictor"]

Metric = Literal["macs_m", "flops_m", "params_m"]


class AnalyticCostPredictor:
    """Closed-form additive predictor for compute/size metrics.

    Parameters
    ----------
    space:
        Search space fixing the cost table geometry.
    metric:
        ``"macs_m"`` (multi-adds, millions), ``"flops_m"`` (2×MACs) or
        ``"params_m"`` (parameters, millions).

    The object is duck-type compatible with a *fitted*
    :class:`~repro.predictor.mlp.MLPPredictor`: it provides ``fitted``,
    ``predict``, ``predict_tensor`` and ``predict_arch``.
    """

    #: always ready — there is nothing to fit
    fitted = True

    def __init__(self, space: SearchSpace, metric: Metric = "macs_m") -> None:
        if metric not in ("macs_m", "flops_m", "params_m"):
            raise ValueError(f"unknown analytic metric {metric!r}")
        self.space = space
        self.metric = metric
        self.table = np.zeros((space.num_layers, space.num_operators))
        for l, geom in enumerate(space.layer_geometries()):
            for k, spec in enumerate(space.operators):
                cost = flops.op_cost(spec, geom)
                self.table[l, k] = self._pick(cost)
        self.fixed = self._pick(flops.fixed_cost(space.macro))

    def _pick(self, cost: flops.OpCost) -> float:
        if self.metric == "macs_m":
            return cost.macs / 1e6
        if self.metric == "flops_m":
            return cost.flops / 1e6
        return cost.params / 1e6

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Batch prediction over flattened one-hot encodings ``(N, L·K)``."""
        feats = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return feats @ self.table.reshape(-1) + self.fixed

    def predict_tensor(self, features: nn.Tensor) -> nn.Tensor:
        """Differentiable prediction (linear, so gradients are exact)."""
        flat_table = nn.Tensor(self.table.reshape(-1, 1))
        out = nn.ops.matmul(features, flat_table)
        return nn.ops.reshape(out, (features.shape[0],)) + self.fixed

    def predict_arch(self, arch: Architecture) -> float:
        """Exact metric of one architecture (matches hardware.flops)."""
        self.space.validate(arch)
        rows = np.arange(self.space.num_layers)
        return float(self.table[rows, list(arch.op_indices)].sum() + self.fixed)

    def predict_population(self, archs) -> np.ndarray:
        """Exact metric of a population: one gather-sum, no encoding step."""
        ops = self.space.as_index_matrix(archs)
        rows = np.arange(self.space.num_layers)[None, :]
        return self.table[rows, ops].sum(axis=1) + self.fixed
