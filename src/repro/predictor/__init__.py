"""`repro.predictor` — the MLP latency/energy predictor of LightNAS §3.2.

Measurement-campaign datasets (10k architectures, 80/20 split), the
128-64-1 MLP itself (differentiable through :mod:`repro.nn`, so the search
engine can backpropagate ``∂LAT/∂ᾱ``), and evaluation metrics.
"""

from .analytic import AnalyticCostPredictor
from .dataset import (
    PredictorDataset,
    campaign_shards,
    collect_energy_dataset,
    collect_energy_dataset_sharded,
    collect_latency_dataset,
    collect_latency_dataset_sharded,
    encode_architectures,
)
from .metrics import kendall_tau, mae, max_error, rmse, spearman_rho
from .mlp import MLPPredictor, TrainingLog

__all__ = [
    "AnalyticCostPredictor",
    "PredictorDataset",
    "campaign_shards",
    "collect_latency_dataset",
    "collect_energy_dataset",
    "collect_latency_dataset_sharded",
    "collect_energy_dataset_sharded",
    "encode_architectures",
    "MLPPredictor",
    "TrainingLog",
    "rmse",
    "mae",
    "max_error",
    "kendall_tau",
    "spearman_rho",
]
