"""The MLP hardware-metric predictor of LightNAS §3.2.

A three-layer perceptron (128 → 64 → 1, ReLU) over the flattened one-hot
architecture encoding ᾱ.  The same class fits latency (ms) or energy (mJ) —
the paper stresses that the predictor "is also generalizable to other
hardware metrics"; only the training targets change.

Two forward paths are provided:

* :meth:`MLPPredictor.predict` — a raw-numpy fast path for scoring millions
  of candidates (evolution/RL baselines, benchmark sweeps);
* :meth:`MLPPredictor.predict_tensor` — an autodiff path through
  :mod:`repro.nn`, which is what lets the search engine backpropagate
  ``∂LAT(α)/∂ᾱ`` through the predictor weights (the "one-time backward
  propagation" of Eq. 12).

Targets are z-score normalised internally; predictions are returned in the
original units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..search_space.space import Architecture, SearchSpace
from .dataset import PredictorDataset

__all__ = ["MLPPredictor", "TrainingLog"]


@dataclass
class TrainingLog:
    """Per-epoch training diagnostics of a predictor fit."""

    train_loss: List[float] = field(default_factory=list)
    valid_rmse: List[float] = field(default_factory=list)


class MLPPredictor:
    """3-layer MLP predictor over flattened one-hot encodings.

    Parameters
    ----------
    space:
        Search space (fixes the input width to ``L·K``).
    hidden:
        Hidden-layer widths; the paper uses ``(128, 64)``.
    seed:
        Seed for weight initialisation and minibatch shuffling.
    """

    def __init__(self, space: SearchSpace, hidden: tuple = (128, 64), seed: int = 0) -> None:
        self.space = space
        self.input_dim = space.num_layers * space.num_operators
        rng = np.random.default_rng(seed)
        self._shuffle_rng = np.random.default_rng(seed + 1)
        dims = [self.input_dim, *hidden, 1]
        self.layers: List[nn.Linear] = [
            nn.Linear(dims[i], dims[i + 1], rng) for i in range(len(dims) - 1)
        ]
        self._model = nn.Sequential()  # container so parameters() sees all layers
        for i, layer in enumerate(self.layers):
            self._model._modules[str(i)] = layer
            self._model.layers.append(layer)
        self.target_mean = 0.0
        self.target_std = 1.0
        self.fitted = False
        # Transposed-weight cache for the numpy fast path; rebuilt after
        # fit()/load_state_dict(), cleared while training mutates weights.
        self._fast_weights = None

    # ------------------------------------------------------------------
    # Forward paths
    # ------------------------------------------------------------------
    def predict_tensor(self, features: nn.Tensor) -> nn.Tensor:
        """Differentiable forward: ``(N, L·K)`` → ``(N,)`` in target units."""
        h = features
        for layer in self.layers[:-1]:
            h = nn.ops.relu(layer(h))
        out = self.layers[-1](h)
        out = nn.ops.reshape(out, (features.shape[0],))
        return out * self.target_std + self.target_mean

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Fast numpy forward (no tape) for batch scoring.

        This is the inner loop of every population consumer (evolution/RL
        feasibility filtering, benchmark sweeps), so it avoids per-call
        work: already-2-D float64 inputs are used as-is (no ``atleast_2d``
        + copy), and the transposed weight matrices are cached contiguously
        once training ends instead of being re-derived per call.
        """
        if not (isinstance(features, np.ndarray) and features.ndim == 2
                and features.dtype == np.float64):
            features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        weights = self._fast_weights
        if weights is None:
            weights = [(layer.weight.data.T, layer.bias.data)
                       for layer in self.layers]
        h = features
        for w_t, b in weights[:-1]:
            h = np.maximum(h @ w_t + b, 0.0)
        w_t, b = weights[-1]
        out = h @ w_t + b
        return out[:, 0] * self.target_std + self.target_mean

    def _refresh_fast_weights(self) -> None:
        self._fast_weights = [
            (np.ascontiguousarray(layer.weight.data.T), layer.bias.data.copy())
            for layer in self.layers
        ]

    def predict_arch(self, arch: Architecture) -> float:
        """Predict the metric of a single architecture."""
        feat = arch.one_hot(self.space.num_operators).reshape(1, -1)
        return float(self.predict(feat)[0])

    def predict_population(self, archs, chunk_size: int = 65536) -> np.ndarray:
        """Predict a population: ``(N, L)`` op indices (or a sequence of
        architectures) → ``(N,)`` metric values, one encode + one forward
        per chunk (chunking bounds the transient one-hot matrix's memory)."""
        ops = self.space.as_index_matrix(archs)
        if len(ops) <= chunk_size:
            return self.predict(self.space.encode_many(ops))
        return np.concatenate([
            self.predict(self.space.encode_many(ops[start:start + chunk_size]))
            for start in range(0, len(ops), chunk_size)
        ])

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        train: PredictorDataset,
        valid: Optional[PredictorDataset] = None,
        epochs: int = 150,
        batch_size: int = 256,
        lr: float = 1e-3,
        weight_decay: float = 1e-5,
        cosine_decay: bool = True,
        verbose: bool = False,
    ) -> TrainingLog:
        """Fit with Adam on mean-squared error over normalised targets.

        ``cosine_decay`` anneals the learning rate to zero over ``epochs``,
        which is what lets the predictor reach the measurement-noise floor
        on large campaigns (Figure 5 Left).
        """
        if len(train) < 2:
            raise ValueError("need at least 2 training samples")
        self._fast_weights = None  # weights are about to change under Adam
        self.target_mean = float(train.targets.mean())
        self.target_std = float(train.targets.std()) or 1.0

        x = np.asarray(train.features, dtype=np.float64)
        y = (np.asarray(train.targets, dtype=np.float64) - self.target_mean) / self.target_std
        optimizer = nn.Adam(self._model.parameters(), lr=lr, weight_decay=weight_decay)
        schedule = nn.CosineSchedule(lr, epochs) if cosine_decay else None
        log = TrainingLog()

        for epoch in range(epochs):
            if schedule is not None:
                schedule.apply(optimizer, epoch)
            order = self._shuffle_rng.permutation(len(y))
            epoch_loss = 0.0
            for start in range(0, len(y), batch_size):
                idx = order[start : start + batch_size]
                xb, yb = nn.Tensor(x[idx]), y[idx]
                pred = self._forward_normalised(xb)
                loss = F.mse_loss(pred, nn.Tensor(yb))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item() * len(idx)
            log.train_loss.append(epoch_loss / len(y))
            if valid is not None:
                log.valid_rmse.append(self.rmse(valid))
            if verbose and (epoch % 10 == 0 or epoch == epochs - 1):
                tail = f" valid RMSE {log.valid_rmse[-1]:.4f}" if valid is not None else ""
                print(f"[predictor] epoch {epoch:3d} loss {log.train_loss[-1]:.5f}{tail}")
        self.fitted = True
        self._refresh_fast_weights()
        return log

    def _forward_normalised(self, features: nn.Tensor) -> nn.Tensor:
        h = features
        for layer in self.layers[:-1]:
            h = nn.ops.relu(layer(h))
        out = self.layers[-1](h)
        return nn.ops.reshape(out, (features.shape[0],))

    # ------------------------------------------------------------------
    def rmse(self, dataset: PredictorDataset) -> float:
        """Root-mean-square error on a dataset, in target units."""
        pred = self.predict(dataset.features)
        return float(np.sqrt(np.mean((pred - dataset.targets) ** 2)))

    def state_dict(self) -> dict:
        state = self._model.state_dict()
        state["__target_mean"] = np.array(self.target_mean)
        state["__target_std"] = np.array(self.target_std)
        return state

    def load_state_dict(self, state: dict) -> None:
        self.target_mean = float(state.pop("__target_mean"))
        self.target_std = float(state.pop("__target_std"))
        self._model.load_state_dict(state)
        self.fitted = True
        self._refresh_fast_weights()
