#!/usr/bin/env python
"""Generality to energy-critical tasks (Figure 8).

The paper's predictor/search machinery is metric-agnostic: replace the
latency predictor with an energy predictor and the same one-time search
satisfies an energy constraint instead.  This script:

1. runs an energy measurement campaign (with AR(1) temperature drift,
   which is why the energy fit is noisier than the latency fit),
2. fits the same 128-64-1 MLP to energy targets,
3. searches under the paper's 500 mJ constraint and verifies convergence.
"""

from repro import LightNAS, LightNASConfig
from repro.experiments import ascii_series, fit_energy_predictor, full_context

TARGET_MJ = 500.0


def main() -> None:
    ctx = full_context()
    print("fitting the energy predictor (cached across runs) ...")
    predictor, rmse = fit_energy_predictor(ctx.space, ctx.energy_model)
    print(f"energy predictor RMSE : {rmse:.2f} mJ "
          f"(latency fit: {ctx.latency_predictor_rmse:.3f} ms — energy is "
          "noisier because of temperature drift)")

    config = LightNASConfig.paper(TARGET_MJ, space=ctx.space, seed=0,
                                  metric_name="energy_mj")
    result = LightNAS(config, predictor=predictor).search()

    true_energy = ctx.energy_model.energy_mj(result.architecture)
    print(f"\nsearched under E = {TARGET_MJ} mJ:")
    print(f"  predicted energy : {result.predicted_metric:.1f} mJ")
    print(f"  model energy     : {true_energy:.1f} mJ")
    print(f"  learned λ        : {result.final_lambda:+.4f}")
    print()
    print(ascii_series(result.trajectory.predicted_metric,
                       label="predicted energy (mJ) per search epoch"))


if __name__ == "__main__":
    main()
