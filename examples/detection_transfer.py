#!/usr/bin/env python
"""Transferability to object detection (Table 3).

Drops searched LightNets and baseline backbones into the SSDLite detection
surrogate and reports COCO-style AP alongside detection latency — better
classification backbones transfer to better detectors, and LightNets reach
comparable AP at lower detection latency.
"""

from repro import LightNAS, LightNASConfig
from repro.baselines import ScalingBaseline
from repro.eval import DetectionEvaluator
from repro.experiments import full_context, render_table
from repro.search_space import Architecture

TARGETS_MS = (20.0, 24.0, 28.0)


def main() -> None:
    ctx = full_context()
    evaluator = DetectionEvaluator(ctx.space, ctx.latency_model, ctx.oracle)

    results = []
    # The manual baseline: the uniform MobileNetV2-like stack.
    uniform = Architecture((ScalingBaseline.UNIFORM_OP,) * ctx.space.num_layers)
    results.append(evaluator.evaluate(uniform, name="MobileNetV2"))

    for target in TARGETS_MS:
        config = LightNASConfig.paper(target, space=ctx.space, seed=1)
        searched = LightNAS(config, predictor=ctx.latency_predictor).search()
        results.append(evaluator.evaluate(searched.architecture,
                                          name=f"LightNet-{target:.0f}ms"))
        print(f"  searched backbone for {target:.0f} ms")

    rows = [[r.name, r.ap, r.ap50, r.ap75, r.ap_small, r.ap_medium, r.ap_large,
             r.latency_ms] for r in results]
    print()
    print(render_table(
        ["backbone", "AP", "AP50", "AP75", "APS", "APM", "APL", "latency ms"],
        rows, title="SSDLite detection transfer (simulated COCO surrogate)"))


if __name__ == "__main__":
    main()
