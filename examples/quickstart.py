#!/usr/bin/env python
"""Quickstart: one latency-constrained search, end to end, in ~30 seconds.

Runs the *full* LightNAS pipeline at toy scale on one CPU core:

1. build a (tiny) layer-wise search space,
2. run the one-time hardware-constrained search — real bi-level supernet
   training with single-path Gumbel sampling and a learned multiplier λ,
3. retrain the derived architecture from scratch on the proxy task,
4. report the achieved latency against the constraint.

For the paper-scale space (L=22, 7^21 candidates), see
``latency_constrained_imagenet.py``.
"""

import numpy as np

from repro import LightNAS, LightNASConfig
from repro.eval import train_standalone
from repro.hardware import LatencyModel

TARGET_MS = 2.3  # the tiny space spans roughly 2.15–2.45 ms


def main() -> None:
    config = LightNASConfig.tiny(latency_target_ms=TARGET_MS, seed=0,
                                 epochs=12, steps_per_epoch=4, warmup_epochs=3)
    space = config.space
    print(f"search space: {space.num_layers} searchable layers × "
          f"{space.num_operators} operators = {space.size:.0f} candidates")

    engine = LightNAS(config)
    print(f"\nsearching for an architecture with latency = {TARGET_MS} ms ...")
    result = engine.search(verbose=True)

    latency_model = LatencyModel(space)
    true_latency = latency_model.latency_ms(result.architecture)
    print(f"\nderived architecture : {space.describe(result.architecture)}")
    print(f"predicted latency    : {result.predicted_metric:.3f} ms")
    print(f"measured latency     : {true_latency:.3f} ms  (target {TARGET_MS} ms)")
    print(f"learned λ            : {result.final_lambda:+.4f}")

    print("\nretraining the derived architecture from scratch ...")
    report = train_standalone(space, result.architecture, engine.task,
                              epochs=10, batch_size=24, seed=0)
    print(f"stand-alone validation accuracy: {report.valid_accuracy:.1%} "
          f"(chance {1.0 / engine.task.num_classes:.1%})")


if __name__ == "__main__":
    main()
