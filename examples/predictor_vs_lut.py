#!/usr/bin/env python
"""Latency prediction shoot-out: MLP predictor vs lookup table (Figure 5).

Reproduces the §3.2 comparison:

* the MLP predictor, trained on a 10,000-architecture measurement campaign,
  approaches the measurement-noise floor;
* the additive LUT over-predicts by a consistent ~11 ms gap (isolated
  per-operator measurement pays synchronisation overhead that fused
  whole-network execution does not), and keeps a residual error even after
  the constant bias is removed (it cannot see cross-layer fusion).
"""

import numpy as np

from repro.experiments import full_context, render_table
from repro.hardware import LatencyLUT
from repro.predictor import kendall_tau, rmse

NUM_EVAL = 500


def main() -> None:
    ctx = full_context()
    rng = np.random.default_rng(123)
    archs = ctx.space.sample_many(NUM_EVAL, rng)
    measured = np.array([ctx.latency_model.latency_ms(a) for a in archs])

    mlp_pred = np.array([ctx.latency_predictor.predict_arch(a) for a in archs])

    print("building the latency LUT (isolated per-operator measurements) ...")
    lut = LatencyLUT(ctx.latency_model, rng, trials=5)
    lut_raw = lut.predict_many(archs)
    gap = lut.debias(archs, measured)
    lut_debiased = lut.predict_many(archs)

    rows = [
        ["MLP predictor (ours)", rmse(mlp_pred, measured),
         kendall_tau(mlp_pred, measured)],
        ["LUT (raw)", rmse(lut_raw, measured), kendall_tau(lut_raw, measured)],
        ["LUT (bias removed)", rmse(lut_debiased, measured),
         kendall_tau(lut_debiased, measured)],
    ]
    print()
    print(render_table(["method", "RMSE (ms)", "Kendall τ"], rows,
                       title=f"Latency prediction on {NUM_EVAL} architectures"))
    print(f"\nconsistent LUT gap absorbed by de-biasing: {gap:.2f} ms "
          "(paper reports ≈11.48 ms)")


if __name__ == "__main__":
    main()
