#!/usr/bin/env python
"""Hardware awareness across devices: same target policy, different silicon.

The whole point of direct/proxyless hardware-aware NAS is that the *device*
shapes the architecture: operators that are cheap on one accelerator are
expensive on another.  This example searches on two simulated devices — the
Xavier profile the paper uses and a weaker "edge-nano" profile with slower
memory and higher kernel-launch overheads — at a device-appropriate target
each, and contrasts the searched structures.

Also demonstrates the multi-constraint extension: a joint latency + MACs
budget on the Xavier profile.
"""

import numpy as np

from repro import LightNAS, LightNASConfig
from repro.core import Constraint, MultiConstraintConfig, MultiConstraintLightNAS
from repro.experiments import fit_latency_predictor, render_table
from repro.hardware import EDGE_NANO, XAVIER_MAXN, LatencyModel, count_macs
from repro.predictor import AnalyticCostPredictor
from repro.search_space import SearchSpace


def structure_summary(space, arch):
    kernels = [space.operators[k].kernel_size for k in arch.op_indices
               if not space.operators[k].is_skip]
    expansions = [space.operators[k].expansion for k in arch.op_indices
                  if not space.operators[k].is_skip]
    return (arch.depth(space.skip_index), float(np.mean(kernels)),
            float(np.mean(expansions)))


def main() -> None:
    space = SearchSpace()
    rows = []
    archs = {}
    for device, target in ((XAVIER_MAXN, 24.0), (EDGE_NANO, 60.0)):
        latency_model = LatencyModel(space, device)
        print(f"fitting predictor for {device.name} ...")
        predictor, rmse = fit_latency_predictor(space, latency_model)
        config = LightNASConfig.paper(target, space=space, seed=0)
        result = LightNAS(config, predictor=predictor).search()
        archs[device.name] = result.architecture
        depth, mean_k, mean_e = structure_summary(space, result.architecture)
        rows.append([device.name, f"{target:g}",
                     latency_model.latency_ms(result.architecture),
                     depth, mean_k, mean_e])

    print()
    print(render_table(
        ["device", "target ms", "measured ms", "depth", "mean kernel",
         "mean expansion"],
        rows, title="Per-device searches — the device shapes the network"))
    same = archs[XAVIER_MAXN.name] == archs[EDGE_NANO.name]
    print(f"\nidentical architectures across devices? {same} "
          "(hardware-aware search should say False)")

    # Joint latency + MACs budget via the multi-constraint extension.
    latency_model = LatencyModel(space, XAVIER_MAXN)
    predictor, _ = fit_latency_predictor(space, latency_model)
    config = MultiConstraintConfig(
        space=space,
        constraints=[
            Constraint("latency_ms", predictor, 26.0),
            Constraint("macs_m", AnalyticCostPredictor(space, "macs_m"), 420.0),
        ],
        seed=0)
    result, metrics = MultiConstraintLightNAS(config).search()
    print("\njoint-budget search (≤26 ms AND ≤420 M MACs):")
    print(f"  predicted latency : {metrics['latency_ms']:.2f} ms")
    print(f"  exact multi-adds  : {metrics['macs_m']:.1f} M")
    print(f"  measured latency  : "
          f"{latency_model.latency_ms(result.architecture):.2f} ms")


if __name__ == "__main__":
    main()
