#!/usr/bin/env python
"""Paper-scale scenario: LightNets under 20/24/28 ms on the simulated Xavier.

Reproduces the §4.2 workflow on the full search space (7^21 candidates):

1. measurement campaign → MLP latency predictor (cached across runs),
2. one search per latency target — *no λ tuning, one run each*,
3. Table-2-style evaluation rows (oracle top-1/top-5, measured latency,
   multi-adds), compared against the manual MobileNetV2 baseline.
"""

from repro import LightNAS, LightNASConfig
from repro.baselines import ScalingBaseline
from repro.eval import ImageNetEvaluator
from repro.experiments import full_context, render_table

TARGETS_MS = (20.0, 24.0, 28.0)


def main() -> None:
    print("loading experiment context (first run trains the predictor) ...")
    ctx = full_context()
    print(f"latency predictor RMSE: {ctx.latency_predictor_rmse:.3f} ms")

    evaluator = ImageNetEvaluator(ctx.space, ctx.latency_model, ctx.oracle)
    rows = []

    reference = ScalingBaseline(device=ctx.device).reference()
    rows.append(["MobileNetV2 (manual)", "-", reference.top1, reference.top5,
                 reference.latency_ms, "-"])

    for target in TARGETS_MS:
        config = LightNASConfig.paper(target, space=ctx.space, seed=1)
        result = LightNAS(config, predictor=ctx.latency_predictor).search()
        row = evaluator.evaluate(result.architecture,
                                 name=f"LightNet-{target:.0f}ms")
        rows.append([row.name, f"{target:.0f}", row.top1, row.top5,
                     ctx.latency_model.latency_ms(result.architecture),
                     f"{result.final_lambda:+.3f}"])
        print(f"  target {target} ms → measured "
              f"{ctx.latency_model.latency_ms(result.architecture):.2f} ms "
              f"(one search, no λ sweep)")

    print()
    print(render_table(
        ["architecture", "target", "top-1 %", "top-5 %", "latency ms", "final λ"],
        rows, title="LightNets vs the manual baseline (simulated Xavier)"))


if __name__ == "__main__":
    main()
