#!/usr/bin/env python
"""Record the golden float64 tiny-supernet trajectory.

Re-runs the exact seeded search that
``tests/core/test_engine_bit_parity.py`` replays and saves every recorded
array (trajectory series, derived architecture, final supernet state) to
``tests/data/golden_tiny_supernet.npz``.

Run this ONLY to (re-)establish the golden reference — i.e. from a tree
whose engine is known-good, or after a deliberate, documented numerical
change.  The parity test asserts bit-for-bit equality against this file.
"""

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests.core.test_engine_bit_parity import GOLDEN_PATH, run_golden_search


def main() -> None:
    arrays = run_golden_search()
    path = os.path.abspath(GOLDEN_PATH)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    np.savez(path, **arrays)
    print(f"wrote {path} ({len(arrays)} arrays)")
    for key in sorted(arrays):
        if key.startswith("traj_") or key.startswith("final_"):
            print(f"  {key}: {np.asarray(arrays[key]).tolist()}")


if __name__ == "__main__":
    main()
