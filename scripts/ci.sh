#!/usr/bin/env bash
# Tier-1 CI: the full test suite plus a smoke run of the perf benchmark.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

python -m pytest -x -q

# Tiny-N smoke of the hot-path benchmark: exercises the scalar/vectorized
# parity assertions and the BENCH_perf.json writer without the full N=10k
# timing run (speedup thresholds are only checked at full size).
python benchmarks/bench_perf_hotpaths.py --pop-n 200 --campaign-n 100 --predict-n 200
