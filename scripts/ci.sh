#!/usr/bin/env bash
# Tier-1 CI: the full test suite plus a smoke run of the perf benchmark.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

python -m pytest -x -q

# The bit-for-bit guarantees get a named run so a regression is unmissable
# in the CI log even when the full suite is green-but-skipping.
python -m pytest -x -q tests/core/test_resume_parity.py \
    tests/core/test_lightnas.py::TestTrajectoryValidLoss \
    tests/runtime/

# The conv fast-path contract: gradient checks for every specialized kernel
# plus the golden-trajectory test pinning the float64 engine bit-identical.
python -m pytest -x -q tests/nn/test_conv_fast_paths.py \
    tests/core/test_engine_bit_parity.py

# Tiny-N smoke of the hot-path benchmark: exercises the scalar/vectorized
# parity assertions and the BENCH_perf.json writer without the full N=10k
# timing run (speedup thresholds are only checked at full size).
python benchmarks/bench_perf_hotpaths.py --pop-n 200 --campaign-n 100 --predict-n 200

# Tiny-N smoke of the warm-archive benchmark: asserts the warm evolution
# rerun is bit-identical with a non-zero cache hit rate and writes
# BENCH_archive.json.
python benchmarks/bench_archive.py --cycles 12 --population 8 --check

# nn-engine benchmark with acceptance thresholds (>= 3x depthwise fwd+bwd,
# faster supernet epoch); BENCH_nn.json is kept as a CI artifact.
python benchmarks/bench_nn_engine.py --steps 8 --repeat 2 --check

# Step-compiler benchmark with acceptance thresholds (>= 2x replayed
# w-step at the overhead-bound default batch, >= 10x alloc drop, and
# >= 1.5x *fused* replayed w-step at the BLAS-bound batch 16); the JSON
# carries the fused-vs-unfused batch_scaling breakdown per step family
# and is uploaded as the bench-step CI artifact.
python benchmarks/bench_step_replay.py --check

# The run-fleet executor's contracts get a named run: the jobs=1 vs
# jobs=4 determinism parity suite and the SIGKILL/timeout fault-injection
# suite (a retried task must succeed with exactly one task_retry event).
python -m pytest -x -q tests/runtime/test_parallel.py::TestFleetParity \
    tests/runtime/test_parallel.py::TestFleetFaults

# Run-fleet benchmark at reduced size with a 2-worker floor: parity is
# asserted at every jobs level; the >= 2x speedup gate at 4 jobs applies
# on >= 4-core hosts (core-aware — single-core hosts assert a bounded
# fork/merge overhead instead); BENCH_parallel.json is a CI artifact.
python benchmarks/bench_parallel.py --targets 4 --epochs 30 --steps 20 \
    --campaign 2000 --check

# The fleet subsystem's guarantees get a named run: strict-monotone
# transfer maps (Hypothesis properties), fleet-name resolution everywhere,
# and the unknown-device 400s on the archive service.
python -m pytest -x -q tests/fleet/ \
    tests/archive/test_service.py::TestHTTPEndpoints::test_unknown_device_is_400_naming_known

# Fleet benchmark at reduced size: 12 generated devices, 40-pair
# calibration vs 2000-pair per-device MLP campaigns (the 50x-less-data /
# tau-within-0.05 acceptance gates hold at this size too); BENCH_fleet.json
# is kept as a CI artifact.
python benchmarks/bench_fleet.py --calibration 40 --mlp-samples 2000 \
    --mlp-devices 2 --eval 300 --archive-size 500 --check

# Serving benchmark at reduced size: asserts segment-vs-log-replay query
# parity, zero failed requests under mixed concurrent load, and the QPS
# floor / p99 ceiling (the >= 5x boot-speedup gate only applies at the
# full 50k-record size); BENCH_serve.json is kept as a CI artifact.
python benchmarks/bench_serve.py --records 4000 --requests 20 --clients 4 \
    --check

# End-to-end telemetry smoke: a traced tiny search whose journal is kept as
# a CI artifact (see .github/workflows/ci.yml).
mkdir -p artifacts
python -m repro search --tiny --target 2.3 --seed 0 --epochs 3 \
    --checkpoint-dir artifacts/ckpts --checkpoint-every 1 \
    --trace artifacts/ci_run.jsonl > /dev/null
python -m repro trace-summary artifacts/ci_run.jsonl

# Serve smoke: boot the JSON API on an ephemeral port (the analytic macs
# predictor needs no campaign, so startup is instant), POST a predict
# batch, confirm /stats saw it, and shut the server down cleanly.
python - <<'PY'
import json, re, subprocess, sys, urllib.request

proc = subprocess.Popen(
    [sys.executable, "-m", "repro", "serve", "--tiny", "--metric", "macs",
     "--port", "0"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
try:
    line = proc.stdout.readline().strip()
    match = re.search(r"http://[\d.]+:\d+", line)
    assert match, f"serve did not announce its address: {line!r}"
    base = match.group(0)

    def post(endpoint, payload):
        request = urllib.request.Request(
            base + endpoint, json.dumps(payload).encode(),
            {"Content-Type": "application/json"})
        return json.loads(urllib.request.urlopen(request, timeout=30).read())

    batch = [[1, 1, 1, 1], [2, 0, 3, 1], [0, 0, 0, 0]]
    body = post("/predict", {"archs": batch})
    assert body["count"] == 3 and len(body["predictions"]) == 3, body
    stats = json.loads(
        urllib.request.urlopen(base + "/stats", timeout=30).read())
    assert stats["predict_requests"] >= 1, stats
    assert stats["predict_batches"] >= 1, stats
    post("/shutdown", {})
    assert proc.wait(timeout=30) == 0, "serve exited non-zero"
    print(f"serve smoke OK: {base} answered a {body['count']}-arch batch")
finally:
    if proc.poll() is None:
        proc.kill()
PY
