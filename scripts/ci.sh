#!/usr/bin/env bash
# Tier-1 CI: the full test suite plus a smoke run of the perf benchmark.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH=src

python -m pytest -x -q

# The bit-for-bit guarantees get a named run so a regression is unmissable
# in the CI log even when the full suite is green-but-skipping.
python -m pytest -x -q tests/core/test_resume_parity.py \
    tests/core/test_lightnas.py::TestTrajectoryValidLoss \
    tests/runtime/

# Tiny-N smoke of the hot-path benchmark: exercises the scalar/vectorized
# parity assertions and the BENCH_perf.json writer without the full N=10k
# timing run (speedup thresholds are only checked at full size).
python benchmarks/bench_perf_hotpaths.py --pop-n 200 --campaign-n 100 --predict-n 200

# End-to-end telemetry smoke: a traced tiny search whose journal is kept as
# a CI artifact (see .github/workflows/ci.yml).
mkdir -p artifacts
python -m repro search --tiny --target 2.3 --seed 0 --epochs 3 \
    --checkpoint-dir artifacts/ckpts --checkpoint-every 1 \
    --trace artifacts/ci_run.jsonl > /dev/null
python -m repro trace-summary artifacts/ci_run.jsonl
