"""Tests of the temperature schedule and single-path Gumbel sampler."""

import numpy as np
import pytest

from repro import nn
from repro.core.gumbel import GumbelSampler, TemperatureSchedule
from repro.search_space.space import Architecture


class TestTemperatureSchedule:
    def test_starts_at_initial(self):
        sched = TemperatureSchedule(5.0, 0.1, 90)
        assert np.isclose(sched.at(0), 5.0)

    def test_ends_at_floor(self):
        sched = TemperatureSchedule(5.0, 0.1, 90)
        assert np.isclose(sched.at(89), 0.1)

    def test_monotone_decreasing(self):
        sched = TemperatureSchedule(5.0, 0.1, 50)
        taus = [sched.at(t) for t in range(50)]
        assert all(a >= b for a, b in zip(taus, taus[1:]))

    def test_clamps_beyond_end(self):
        sched = TemperatureSchedule(5.0, 0.1, 10)
        assert sched.at(500) == 0.1

    def test_negative_step_clamped(self):
        sched = TemperatureSchedule(5.0, 0.1, 10)
        assert sched.at(-3) == 5.0

    def test_single_step_schedule(self):
        assert TemperatureSchedule(5.0, 0.1, 1).at(0) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            TemperatureSchedule(0.0, 0.1, 10)
        with pytest.raises(ValueError):
            TemperatureSchedule(1.0, 2.0, 10)


class TestSampler:
    @pytest.fixture
    def sampler(self):
        return GumbelSampler(TemperatureSchedule(5.0, 0.1, 20),
                             np.random.default_rng(0))

    def test_probabilities_simplex(self, sampler):
        alpha = nn.Tensor(np.random.default_rng(1).normal(size=(4, 7)))
        probs = sampler.probabilities(alpha).data
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_hard_gates_one_hot(self, sampler):
        alpha = nn.Tensor(np.zeros((4, 7)))
        _, hard = sampler.sample_gates(alpha, step=0)
        assert np.allclose(hard.data.sum(axis=-1), 1.0)
        assert set(np.unique(hard.data)) <= {0.0, 1.0}

    def test_deterministic_mode_selects_argmax(self, sampler):
        alpha = np.zeros((3, 7))
        alpha[0, 2] = alpha[1, 5] = alpha[2, 0] = 3.0
        _, hard = sampler.sample_gates(nn.Tensor(alpha), step=19,
                                       deterministic=True)
        assert hard.data.argmax(axis=1).tolist() == [2, 5, 0]

    def test_samples_concentrate_when_alpha_concentrates(self, sampler):
        """Gumbel-max samples exactly from softmax(α): a strongly peaked α
        row (logit gap 6 ⇒ p ≈ 0.985) must dominate the samples — the
        property the log-probability fix of Eq. (7) restores."""
        alpha = np.zeros((5, 7))
        alpha[:, 3] = 6.0
        hits = 0
        for _ in range(50):
            _, hard = sampler.sample_gates(nn.Tensor(alpha), step=19)
            hits += (hard.data.argmax(axis=1) == 3).mean()
        assert hits / 50 > 0.93

    def test_samples_diverse_with_uniform_alpha(self, sampler):
        alpha = nn.Tensor(np.zeros((4, 7)))
        picks = set()
        for _ in range(40):
            _, hard = sampler.sample_gates(alpha, step=0)
            picks.update(hard.data.argmax(axis=1).tolist())
        assert len(picks) >= 5  # exploration over the 7 candidates

    def test_gradient_flows_to_alpha(self, sampler):
        alpha = nn.Parameter(np.zeros((3, 7)))
        _, hard = sampler.sample_gates(alpha, step=5)
        (hard * nn.Tensor(np.arange(21.0).reshape(3, 7))).sum().backward()
        assert alpha.grad is not None
        assert np.abs(alpha.grad).max() > 0

    def test_derive_architecture_is_argmax(self, sampler):
        alpha = np.zeros((3, 7))
        alpha[0, 6] = 1.0
        alpha[1, 1] = 2.0
        arch = sampler.derive_architecture(nn.Tensor(alpha))
        assert arch == Architecture((6, 1, 0))

    def test_sampling_frequencies_match_alpha(self, sampler):
        """Gumbel-max on log P is an exact categorical sampler: with τ large
        irrelevant (hard argmax unaffected by τ), frequencies follow
        softmax(α)."""
        alpha = nn.Tensor(np.log(np.array([[0.6, 0.3, 0.1]])))
        counts = np.zeros(3)
        n = 3000
        for _ in range(n):
            _, hard = sampler.sample_gates(alpha, step=0)
            counts[hard.data.argmax()] += 1
        assert np.allclose(counts / n, [0.6, 0.3, 0.1], atol=0.04)
