"""Tests of the gradient-ascent constraint multiplier λ (Eq. 11)."""

import numpy as np
import pytest

from repro import nn
from repro.core.lambda_opt import LagrangeMultiplier


def ascend_with_excess(lam: LagrangeMultiplier, excess: float) -> float:
    """Simulate one backward pass where ∂L/∂λ = excess, then ascend."""
    loss = nn.ops.reshape(lam.as_tensor(), ()) * excess
    loss.backward()
    return lam.ascend()


class TestLambdaDynamics:
    def test_initial_value(self):
        assert LagrangeMultiplier(lr=0.1).value == 0.0

    def test_custom_initial(self):
        assert LagrangeMultiplier(lr=0.1, initial=0.5).value == 0.5

    def test_increases_when_over_target(self):
        """LAT > T ⇒ excess > 0 ⇒ λ must grow (stronger penalty)."""
        lam = LagrangeMultiplier(lr=0.1)
        ascend_with_excess(lam, +0.5)
        assert lam.value > 0.0

    def test_decreases_when_under_target(self):
        """LAT < T ⇒ excess < 0 ⇒ λ must shrink — through zero, so the
        penalty can *reward* latency and pull LAT up to T."""
        lam = LagrangeMultiplier(lr=0.1)
        ascend_with_excess(lam, -0.5)
        assert lam.value < 0.0

    def test_update_magnitude_is_lr_times_excess(self):
        lam = LagrangeMultiplier(lr=0.2)
        ascend_with_excess(lam, 0.25)
        assert np.isclose(lam.value, 0.2 * 0.25)

    def test_sign_matches_excess_sign_property(self):
        for excess in (-1.0, -0.1, 0.1, 1.0):
            lam = LagrangeMultiplier(lr=0.05)
            ascend_with_excess(lam, excess)
            assert np.sign(lam.value) == np.sign(excess)

    def test_zero_excess_fixed_point(self):
        lam = LagrangeMultiplier(lr=0.1, initial=0.3)
        ascend_with_excess(lam, 0.0)
        assert np.isclose(lam.value, 0.3)

    def test_history_recorded(self):
        lam = LagrangeMultiplier(lr=0.1)
        for excess in (0.5, 0.5, -0.2):
            ascend_with_excess(lam, excess)
        assert len(lam.history) == 3
        assert lam.history[-1] == lam.value

    def test_clamp_min(self):
        lam = LagrangeMultiplier(lr=1.0, clamp_min=0.0)
        ascend_with_excess(lam, -5.0)
        assert lam.value == 0.0

    def test_grad_cleared_after_ascend(self):
        lam = LagrangeMultiplier(lr=0.1)
        ascend_with_excess(lam, 1.0)
        assert lam.param.grad is None

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            LagrangeMultiplier(lr=0.0)
