"""Whole-epoch compiled schedules: assembly, hits, drift, staleness.

An epoch plan chains one compiled :class:`~repro.nn.plan.StepPlan` replay
per step with pre-bound in-place optimizer updates (see
``core.lightnas._EpochPlan``).  These tests drive the engine's phase
methods directly with a *concentrated* α (one path dominates every Gumbel
draw) so the per-step plans repeat and the epoch chain actually assembles
— the default near-uniform α rarely repeats a path inside a tiny run.

Pinned contracts:

* a w-epoch assembles its chain once every step replays, hits on the next
  identical selection sequence, and stays bitwise identical to the eager
  (``use_plans=False``) twin engine;
* an α-epoch chain is optimistic — a drifted sampled path invalidates it
  gracefully (counted, per-step fallback, no exception) and the chain
  reassembles once the new path replays end to end;
* a chained step plan evicted from the LRU poisons the epoch plan
  (``stale()``) — it is invalidated, never replayed;
* rebinding a BN parameter's storage mid-training raises ``PlanError``
  from the epoch-level replay, exactly as it does from per-step replay.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.gumbel import GumbelSampler, TemperatureSchedule
from repro.core.lambda_opt import LagrangeMultiplier
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.nn.plan import PlanError
from repro.predictor.analytic import AnalyticCostPredictor

SEED = 5


def make_engine(use_plans: bool = True) -> LightNAS:
    cfg = LightNASConfig.tiny(latency_target_ms=2.0, seed=SEED,
                              mode="supernet", metric_name="macs_m")
    cfg.use_plans = use_plans
    predictor = AnalyticCostPredictor(cfg.space, "macs_m")
    engine = LightNAS(cfg, predictor=predictor)
    engine.programs.compile_threshold = 1
    return engine


def make_driver(engine: LightNAS, alpha_lr: float = 1e-12):
    """The pieces ``search()`` would build, with α concentrated on path 0.

    A +50 logit margin dwarfs every Gumbel draw, so each step samples the
    same path and the epoch's selection sequence repeats across epochs —
    the precondition for epoch-plan assembly.  ``alpha_lr`` defaults to a
    vanishing value so α-epochs keep their baked selections too.
    """
    cfg = engine.config
    alpha = nn.Parameter(engine.space.uniform_alpha(), name="alpha")
    alpha.data[:, 0] += 50.0
    alpha_opt = nn.Adam([alpha], lr=alpha_lr,
                        weight_decay=cfg.alpha_weight_decay)
    lam = LagrangeMultiplier(lr=cfg.lambda_lr, initial=cfg.lambda_initial)
    schedule = TemperatureSchedule(cfg.tau_initial, cfg.tau_floor, cfg.epochs)
    sampler = GumbelSampler(schedule, engine.rng)
    w_opt = nn.SGD(engine.supernet.parameters(), lr=cfg.w_lr,
                   momentum=cfg.w_momentum,
                   weight_decay=cfg.w_weight_decay)
    return alpha, alpha_opt, lam, sampler, w_opt


class TestWEpochPlan:
    def test_assembles_then_hits_bit_identical_to_eager(self):
        plan_eng = make_engine(use_plans=True)
        eager_eng = make_engine(use_plans=False)
        p_alpha, _, _, p_sampler, p_wopt = make_driver(plan_eng)
        e_alpha, _, _, e_sampler, e_wopt = make_driver(eager_eng)
        assert np.array_equal(p_alpha.data, e_alpha.data)

        stats_after = []
        for epoch in range(3):
            plan_eng._train_weights_epoch(p_sampler, p_alpha, p_wopt, epoch)
            eager_eng._train_weights_epoch(e_sampler, e_alpha, e_wopt, epoch)
            stats_after.append(plan_eng.programs.stats())

        # epoch 0: the first step *compiles* its plan, so the chain is
        # short by one and nothing is stored; epoch 1: every step replays
        # → the epoch plan assembles; epoch 2: whole-epoch hit
        assert stats_after[0]["epoch_plans_compiled"] == 0
        assert stats_after[1]["epoch_plans_compiled"] == 1
        assert stats_after[1]["epoch_plan_hits"] == 0
        assert stats_after[2]["epoch_plan_hits"] == 1

        plan_state = plan_eng.supernet.state_dict()
        eager_state = eager_eng.supernet.state_dict()
        for key in eager_state:
            assert np.array_equal(eager_state[key], plan_state[key]), key
        p_opt_state = p_wopt.state_arrays()
        e_opt_state = e_wopt.state_arrays()
        for key in e_opt_state:
            assert np.array_equal(e_opt_state[key], p_opt_state[key]), key

    def test_evicted_step_plan_poisons_epoch_plan(self):
        engine = make_engine()
        alpha, _, _, sampler, w_opt = make_driver(engine)
        for epoch in range(3):
            engine._train_weights_epoch(sampler, alpha, w_opt, epoch)
        assert engine.programs.stats()["epoch_plan_hits"] == 1
        (ep,) = engine.programs._epoch_plans.values()

        # simulate an LRU eviction of a chained step plan: drop it from
        # the plan cache and return its buffers to the arena
        victim = ep.step_plans[0]
        for key, plan in list(engine.programs._plans.items()):
            if plan is victim:
                engine.programs._plans.pop(key)
        victim.release()
        assert ep.stale()

        before = engine.programs.stats()["epoch_plan_invalidations"]
        engine._train_weights_epoch(sampler, alpha, w_opt, 3)
        stats = engine.programs.stats()
        assert stats["epoch_plan_invalidations"] == before + 1
        # the released plan was never replayed; the epoch fell back to
        # per-step execution (recompiling the evicted step), then the
        # chain reassembles once every step replays again
        engine._train_weights_epoch(sampler, alpha, w_opt, 4)
        assert engine.programs.stats()["epoch_plans_compiled"] == 2

    def test_bn_param_rebind_raises_from_epoch_replay(self):
        engine = make_engine()
        alpha, _, _, sampler, w_opt = make_driver(engine)
        for epoch in range(3):
            engine._train_weights_epoch(sampler, alpha, w_opt, epoch)
        assert engine.programs.stats()["epoch_plan_hits"] == 1

        gamma = next(p for p in engine.supernet.parameters()
                     if "gamma" in (p.name or ""))
        gamma.data = gamma.data.copy()  # rebind storage, not in-place
        with pytest.raises(PlanError, match="rebound"):
            engine._train_weights_epoch(sampler, alpha, w_opt, 3)


class TestAlphaEpochPlan:
    def test_optimistic_chain_assembles_and_hits(self):
        engine = make_engine()
        alpha, alpha_opt, lam, sampler, _ = make_driver(engine)
        stats_after = []
        for epoch in range(3):
            steps, mean_loss = engine._update_alpha_epoch(
                sampler, alpha, alpha_opt, lam, epoch)
            assert steps == engine.config.steps_per_epoch
            assert np.isfinite(mean_loss)
            stats_after.append(engine.programs.stats())
        assert stats_after[0]["epoch_plans_compiled"] == 0
        assert stats_after[1]["epoch_plans_compiled"] == 1
        assert stats_after[2]["epoch_plan_hits"] == 1

    def test_path_drift_invalidates_gracefully_then_reassembles(self):
        engine = make_engine()
        alpha, alpha_opt, lam, sampler, _ = make_driver(engine)
        for epoch in range(3):
            engine._update_alpha_epoch(sampler, alpha, alpha_opt, lam, epoch)
        assert engine.programs.stats()["epoch_plan_hits"] == 1

        # in-place α shift: plans stay valid, but the sampled path drifts
        # away from the chain's baked selections
        alpha.data[:, 0] -= 100.0
        alpha.data[:, 1] += 100.0
        before = engine.programs.stats()
        steps, mean_loss = engine._update_alpha_epoch(
            sampler, alpha, alpha_opt, lam, 3)
        stats = engine.programs.stats()
        assert steps == engine.config.steps_per_epoch  # whole epoch ran
        assert np.isfinite(mean_loss)
        assert stats["epoch_plan_invalidations"] == \
            before["epoch_plan_invalidations"] + 1
        assert stats["epoch_plan_hits"] == before["epoch_plan_hits"]

        # the new path's first step compiled (chain short by one), the
        # next epoch replays end to end and the chain reassembles
        engine._update_alpha_epoch(sampler, alpha, alpha_opt, lam, 4)
        engine._update_alpha_epoch(sampler, alpha, alpha_opt, lam, 5)
        final = engine.programs.stats()
        assert final["epoch_plans_compiled"] == 2
        assert final["epoch_plan_hits"] == before["epoch_plan_hits"] + 1
