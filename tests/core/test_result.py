"""Tests of SearchResult / SearchTrajectory."""

import json

import pytest

from repro.core.result import SearchResult, SearchTrajectory
from repro.search_space.space import Architecture


def make_result(predicted=24.1, target=24.0):
    trajectory = SearchTrajectory()
    arch = Architecture((0, 1, 2))
    trajectory.record(0, 30.0, 0.0, 1.0, 5.0, arch)
    trajectory.record(1, predicted, 0.1, 0.9, 4.0, arch)
    return SearchResult(
        architecture=arch,
        predicted_metric=predicted,
        target=target,
        final_lambda=0.1,
        trajectory=trajectory,
        search_paths_per_step=3,
        num_search_steps=100,
    )


class TestTrajectory:
    def test_record_and_len(self):
        t = SearchTrajectory()
        assert len(t) == 0
        t.record(0, 1.0, 0.0, 0.5, 5.0, Architecture((0,)))
        assert len(t) == 1
        assert t.predicted_metric == [1.0]
        assert t.temperature == [5.0]


class TestSearchResult:
    def test_constraint_error(self):
        res = make_result(predicted=25.2, target=24.0)
        assert res.constraint_error == pytest.approx(1.2 / 24.0)

    def test_constraint_error_symmetric(self):
        assert (make_result(22.8, 24.0).constraint_error
                == pytest.approx(make_result(25.2, 24.0).constraint_error))

    def test_summary_fields(self):
        summary = make_result().summary()
        assert summary["architecture"] == [0, 1, 2]
        assert summary["target"] == 24.0
        assert summary["num_search_steps"] == 100
        assert summary["search_paths_per_step"] == 3

    def test_to_json_parses(self):
        payload = json.loads(make_result().to_json())
        assert payload["metric_name"] == "latency_ms"
