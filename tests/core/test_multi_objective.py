"""Tests of the multi-constraint search extension."""

import numpy as np
import pytest

from repro.core.multi_objective import (
    Constraint,
    MultiConstraintConfig,
    MultiConstraintLightNAS,
)
from repro.hardware.flops import count_macs
from repro.predictor.analytic import AnalyticCostPredictor


class TestConstraint:
    def test_rejects_nonpositive_target(self, tiny_predictor):
        with pytest.raises(ValueError):
            Constraint("latency_ms", tiny_predictor, 0.0)

    def test_rejects_unfitted(self, tiny_space):
        from repro.predictor.mlp import MLPPredictor

        with pytest.raises(ValueError):
            Constraint("latency_ms", MLPPredictor(tiny_space), 2.0)


class TestConfig:
    def test_needs_constraints(self, tiny_space):
        with pytest.raises(ValueError):
            MultiConstraintConfig(space=tiny_space, constraints=[])

    def test_unique_names(self, tiny_space, tiny_predictor):
        c = Constraint("m", tiny_predictor, 2.0)
        with pytest.raises(ValueError):
            MultiConstraintConfig(space=tiny_space, constraints=[c, c])


class TestSearch:
    @pytest.fixture(scope="class")
    def outcome(self, full_space, full_predictor):
        macs_predictor = AnalyticCostPredictor(full_space, "macs_m")
        config = MultiConstraintConfig(
            space=full_space,
            constraints=[
                Constraint("latency_ms", full_predictor, 26.0),
                Constraint("macs_m", macs_predictor, 420.0),
            ],
            epochs=45, steps_per_epoch=30, seed=0)
        return MultiConstraintLightNAS(config).search()

    def test_both_budgets_respected(self, outcome, full_space,
                                    full_latency_model):
        result, metrics = outcome
        true_latency = full_latency_model.latency_ms(result.architecture)
        true_macs = count_macs(full_space, result.architecture) / 1e6
        assert true_latency <= 26.0 * 1.04  # small predictor slack
        assert true_macs <= 420.0 * 1.04

    def test_at_least_one_budget_binding(self, outcome, full_space,
                                         full_latency_model):
        """The optimum uses its budgets: one ceiling is (nearly) saturated."""
        result, metrics = outcome
        slack_latency = 1.0 - metrics["latency_ms"] / 26.0
        slack_macs = 1.0 - metrics["macs_m"] / 420.0
        assert min(slack_latency, slack_macs) < 0.08

    def test_metrics_dict_complete(self, outcome):
        _, metrics = outcome
        assert set(metrics) == {"latency_ms", "macs_m"}

    def test_result_reports_first_constraint(self, outcome):
        result, metrics = outcome
        assert result.metric_name == "latency_ms"
        assert result.predicted_metric == pytest.approx(metrics["latency_ms"])

    def test_tight_second_budget_dominates(self, full_space, full_predictor):
        """A much tighter MACs budget must drive the solution even when the
        latency budget is loose."""
        macs_predictor = AnalyticCostPredictor(full_space, "macs_m")
        config = MultiConstraintConfig(
            space=full_space,
            constraints=[
                Constraint("latency_ms", full_predictor, 40.0),
                Constraint("macs_m", macs_predictor, 320.0),
            ],
            epochs=40, steps_per_epoch=25, seed=1)
        result, metrics = MultiConstraintLightNAS(config).search()
        assert metrics["macs_m"] <= 320.0 * 1.05
        assert metrics["latency_ms"] < 38.0  # latency ends well under its cap
