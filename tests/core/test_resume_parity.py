"""Fault-injection resume-parity tests.

"You only search once" makes a crashed run maximally expensive, so the
checkpoint/resume path must be *exact*: a search killed at an arbitrary
epoch and resumed from its latest checkpoint must produce the identical
:class:`SearchResult` — architecture, predicted metric, final λ, and the
full trajectory, bit for bit — as an uninterrupted run.

The kill is injected through the telemetry interface (a journal that
raises at a Hypothesis-chosen epoch), which aborts the loop exactly where
a real crash would: after the epoch's work, before its checkpoint.
"""

import glob
import os

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.lightnas import LightNAS, LightNASConfig
from repro.proxy.dataset import SyntheticTask
from repro.runtime.checkpoint import CheckpointError
from repro.runtime.telemetry import NullJournal

SURROGATE_EPOCHS = 8


class KillAtEpoch(NullJournal):
    """Journal that simulates a crash at a chosen epoch."""

    def __init__(self, kill_epoch: int) -> None:
        super().__init__()
        self.kill_epoch = kill_epoch

    def epoch(self, **fields) -> None:
        if fields["epoch"] == self.kill_epoch:
            raise KeyboardInterrupt(f"injected crash at epoch {self.kill_epoch}")


def _surrogate_engine(tiny_space, tiny_predictor, tiny_oracle) -> LightNAS:
    cfg = LightNASConfig(space=tiny_space, target=2.3, mode="surrogate",
                         epochs=SURROGATE_EPOCHS, steps_per_epoch=2,
                         batch_size=8, seed=3)
    return LightNAS(cfg, predictor=tiny_predictor, oracle=tiny_oracle)


def _supernet_engine(tiny_space, tiny_predictor) -> LightNAS:
    cfg = LightNASConfig.tiny(latency_target_ms=2.3, seed=0, epochs=6,
                              steps_per_epoch=2, warmup_epochs=2, batch_size=8)
    # fresh task per engine: its batch RNG is part of the checkpointed state
    macro = cfg.space.macro
    task = SyntheticTask(num_classes=macro.num_classes,
                         resolution=macro.input_resolution,
                         train_size=64, valid_size=32, seed=5)
    return LightNAS(cfg, predictor=tiny_predictor, task=task)


def _assert_identical(resumed, reference) -> None:
    assert resumed.summary() == reference.summary()
    assert resumed.architecture == reference.architecture
    assert resumed.predicted_metric == reference.predicted_metric
    assert resumed.final_lambda == reference.final_lambda
    traj_a, traj_b = resumed.trajectory, reference.trajectory
    assert traj_a.epochs == traj_b.epochs
    assert traj_a.predicted_metric == traj_b.predicted_metric
    assert traj_a.lambda_values == traj_b.lambda_values
    assert traj_a.valid_loss == traj_b.valid_loss
    assert traj_a.temperature == traj_b.temperature
    assert traj_a.architectures == traj_b.architectures


@pytest.fixture(scope="module")
def surrogate_reference(tiny_space, tiny_predictor, tiny_oracle):
    return _surrogate_engine(tiny_space, tiny_predictor, tiny_oracle).search()


@pytest.fixture(scope="module")
def supernet_reference(tiny_space, tiny_predictor):
    return _supernet_engine(tiny_space, tiny_predictor).search()


class TestSurrogateResumeParity:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(kill_epoch=st.integers(1, SURROGATE_EPOCHS - 1),
           every=st.integers(1, 3))
    def test_kill_anywhere_resume_is_bit_for_bit(
            self, tmp_path, tiny_space, tiny_predictor, tiny_oracle,
            surrogate_reference, kill_epoch, every):
        # a checkpoint must exist before the crash for resume to have a base
        assume(kill_epoch >= every)
        directory = str(tmp_path / f"kill{kill_epoch}_every{every}")
        engine = _surrogate_engine(tiny_space, tiny_predictor, tiny_oracle)
        with pytest.raises(KeyboardInterrupt):
            engine.search(checkpoint_dir=directory, checkpoint_every=every,
                          journal=KillAtEpoch(kill_epoch))
        resumed = _surrogate_engine(
            tiny_space, tiny_predictor, tiny_oracle
        ).search(resume_from=directory)
        _assert_identical(resumed, surrogate_reference)

    def test_resume_after_completion_reproduces_result(
            self, tmp_path, tiny_space, tiny_predictor, tiny_oracle,
            surrogate_reference):
        directory = str(tmp_path / "full")
        _surrogate_engine(tiny_space, tiny_predictor, tiny_oracle).search(
            checkpoint_dir=directory, checkpoint_every=1)
        resumed = _surrogate_engine(
            tiny_space, tiny_predictor, tiny_oracle
        ).search(resume_from=directory)
        _assert_identical(resumed, surrogate_reference)


class TestSupernetResumeParity:
    @pytest.mark.parametrize("kill_epoch", [2, 4])
    def test_kill_and_resume_is_bit_for_bit(
            self, tmp_path, tiny_space, tiny_predictor, supernet_reference,
            kill_epoch):
        directory = str(tmp_path / f"kill{kill_epoch}")
        engine = _supernet_engine(tiny_space, tiny_predictor)
        with pytest.raises(KeyboardInterrupt):
            engine.search(checkpoint_dir=directory, checkpoint_every=1,
                          journal=KillAtEpoch(kill_epoch))
        resumed = _supernet_engine(tiny_space, tiny_predictor).search(
            resume_from=directory)
        _assert_identical(resumed, supernet_reference)


class TestResumeFailureModes:
    def _checkpointed_dir(self, tmp_path, tiny_space, tiny_predictor,
                          tiny_oracle) -> str:
        directory = str(tmp_path / "ckpts")
        _surrogate_engine(tiny_space, tiny_predictor, tiny_oracle).search(
            checkpoint_dir=directory, checkpoint_every=2)
        return directory

    def test_truncated_checkpoint_fails_loud(self, tmp_path, tiny_space,
                                             tiny_predictor, tiny_oracle):
        directory = self._checkpointed_dir(tmp_path, tiny_space,
                                           tiny_predictor, tiny_oracle)
        latest = sorted(glob.glob(os.path.join(directory, "*.npz")))[-1]
        blob = open(latest, "rb").read()
        with open(latest, "wb") as handle:
            handle.write(blob[: len(blob) // 3])
        engine = _surrogate_engine(tiny_space, tiny_predictor, tiny_oracle)
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            engine.search(resume_from=directory)

    def test_config_mismatch_fails_loud(self, tmp_path, tiny_space,
                                        tiny_predictor, tiny_oracle):
        directory = self._checkpointed_dir(tmp_path, tiny_space,
                                           tiny_predictor, tiny_oracle)
        other = LightNASConfig(space=tiny_space, target=2.0, mode="surrogate",
                               epochs=SURROGATE_EPOCHS, steps_per_epoch=2,
                               batch_size=8, seed=3)
        engine = LightNAS(other, predictor=tiny_predictor, oracle=tiny_oracle)
        with pytest.raises(CheckpointError, match="different configuration"):
            engine.search(resume_from=directory)

    def test_wrong_engine_kind_fails_loud(self, tmp_path, tiny_space,
                                          tiny_predictor, tiny_oracle,
                                          tiny_latency_model):
        from repro.baselines.rl_search import RLSearch, RLSearchConfig

        directory = self._checkpointed_dir(tmp_path, tiny_space,
                                           tiny_predictor, tiny_oracle)
        cfg = RLSearchConfig(space=tiny_space, target=2.3, iterations=5,
                             batch_archs=2, seed=0)
        engine = RLSearch(cfg, tiny_latency_model, tiny_oracle)
        with pytest.raises(CheckpointError, match="belongs to engine"):
            engine.search(resume_from=directory)

    def test_empty_directory_fails_loud(self, tmp_path, tiny_space,
                                        tiny_predictor, tiny_oracle):
        engine = _surrogate_engine(tiny_space, tiny_predictor, tiny_oracle)
        with pytest.raises(CheckpointError, match="no checkpoint files"):
            engine.search(resume_from=str(tmp_path))
