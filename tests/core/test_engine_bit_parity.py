"""Golden bit-parity regression for the float64 supernet search trajectory.

The fast kernel layer in :mod:`repro.nn.ops` (depthwise / 1x1 conv paths,
vectorized col2im, tape-free eval) must be a pure performance change: in
float64 mode the seeded ``--tiny --supernet`` search has to follow *exactly*
the trajectory the generic engine produced.  ``tests/data/golden_tiny_supernet.npz``
was recorded from the pre-fast-path engine (see
``scripts/capture_golden_trajectory.py``); this test re-runs the identical
search and asserts every recorded array is bit-for-bit equal.

If a deliberate numerical change ever invalidates the golden file, re-record
it with the capture script and say so loudly in the commit message.
"""

import os

import numpy as np

from repro.core.lightnas import LightNAS, LightNASConfig
from repro.predictor.analytic import AnalyticCostPredictor

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "data", "golden_tiny_supernet.npz"
)

#: configuration of the recorded run — keep in sync with the capture script
GOLDEN_SEED = 7
GOLDEN_TARGET = 2.0
GOLDEN_EPOCHS = 6


def run_golden_search():
    """Run the seeded tiny supernet search the golden file was recorded from.

    Uses the analytic MACs predictor so the run needs no measurement
    campaign and the recorded metrics are closed-form (any drift therefore
    comes from the nn engine, not from predictor training).
    """
    config = LightNASConfig.tiny(
        latency_target_ms=GOLDEN_TARGET,
        seed=GOLDEN_SEED,
        mode="supernet",
        metric_name="macs_m",
        epochs=GOLDEN_EPOCHS,
    )
    predictor = AnalyticCostPredictor(config.space, "macs_m")
    engine = LightNAS(config, predictor=predictor)
    result = engine.search()
    arrays = dict(result.trajectory.as_arrays())
    arrays["final_architecture"] = np.array(result.architecture.op_indices,
                                            dtype=np.int64)
    arrays["final_predicted_metric"] = np.array([result.predicted_metric])
    arrays["final_lambda"] = np.array([result.final_lambda])
    for key, value in engine.supernet.state_dict().items():
        arrays[f"net.{key}"] = value
    return arrays


def test_trajectory_bit_identical_to_golden():
    golden = np.load(GOLDEN_PATH)
    arrays = run_golden_search()
    assert set(arrays) == set(golden.files)
    for key in golden.files:
        assert arrays[key].dtype == golden[key].dtype, key
        assert np.array_equal(arrays[key], golden[key]), (
            f"{key!r} diverged from the pre-fast-path engine: the nn fast "
            f"paths are no longer bit-identical in float64"
        )
