"""Tests of the constrained objective (Eq. 10)."""

import numpy as np
import pytest

from repro import nn
from repro.core.objective import ConstrainedObjective
from repro.predictor.mlp import MLPPredictor


@pytest.fixture
def objective(tiny_space, tiny_predictor):
    return ConstrainedObjective(tiny_predictor, target=2.0)


def gates_for(space, arch):
    return nn.Tensor(arch.one_hot(space.num_operators), requires_grad=True)


class TestConstruction:
    def test_rejects_unfitted_predictor(self, tiny_space):
        with pytest.raises(ValueError):
            ConstrainedObjective(MLPPredictor(tiny_space), target=2.0)

    def test_rejects_nonpositive_target(self, tiny_predictor):
        with pytest.raises(ValueError):
            ConstrainedObjective(tiny_predictor, target=0.0)

    def test_rejects_negative_mu(self, tiny_predictor):
        with pytest.raises(ValueError):
            ConstrainedObjective(tiny_predictor, target=1.0, mu=-1.0)


class TestLoss:
    def test_predicted_metric_matches_fast_path(self, tiny_space, tiny_predictor,
                                                objective, rng):
        arch = tiny_space.sample(rng)
        gates = gates_for(tiny_space, arch)
        metric = objective.predicted_metric(gates)
        assert np.isclose(float(metric.data), tiny_predictor.predict_arch(arch))

    def test_lambda_zero_reduces_to_valid_loss(self, tiny_space, objective, rng):
        arch = tiny_space.sample(rng)
        valid = nn.Tensor(1.5, requires_grad=True)
        lam = nn.Parameter([0.0])
        loss, _ = objective.loss(valid, gates_for(tiny_space, arch), lam)
        assert np.isclose(float(loss.data), 1.5)

    def test_penalty_sign(self, tiny_space, tiny_predictor, rng):
        arch = tiny_space.sample(rng)
        metric = tiny_predictor.predict_arch(arch)
        valid = nn.Tensor(1.0)
        lam = nn.Parameter([1.0])
        over = ConstrainedObjective(tiny_predictor, target=metric * 0.5)
        under = ConstrainedObjective(tiny_predictor, target=metric * 2.0)
        loss_over, _ = over.loss(valid, gates_for(tiny_space, arch), lam)
        loss_under, _ = under.loss(valid, gates_for(tiny_space, arch), lam)
        assert float(loss_over.data) > 1.0   # over budget: positive penalty
        assert float(loss_under.data) < 1.0  # under budget: negative penalty

    def test_lambda_gradient_is_excess(self, tiny_space, tiny_predictor, rng):
        """∂L/∂λ must equal LAT/T − 1 exactly (Eq. 11)."""
        arch = tiny_space.sample(rng)
        target = 2.0
        objective = ConstrainedObjective(tiny_predictor, target)
        lam = nn.Parameter([0.7])
        valid = nn.Tensor(1.0)
        loss, metric = objective.loss(valid, gates_for(tiny_space, arch), lam)
        loss.backward()
        assert np.isclose(lam.grad[0], metric / target - 1.0)

    def test_alpha_gradient_scales_with_lambda(self, tiny_space, tiny_predictor,
                                               rng):
        arch = tiny_space.sample(rng)
        objective = ConstrainedObjective(tiny_predictor, target=2.0)

        def gate_grad(lam_value):
            gates = gates_for(tiny_space, arch)
            lam = nn.Parameter([lam_value])
            loss, _ = objective.loss(nn.Tensor(0.0), gates, lam)
            loss.backward()
            return gates.grad.copy()

        g1 = gate_grad(1.0)
        g2 = gate_grad(2.0)
        assert np.allclose(g2, 2.0 * g1, rtol=1e-6)

    def test_mu_term_value(self, tiny_space, tiny_predictor, rng):
        arch = tiny_space.sample(rng)
        plain = ConstrainedObjective(tiny_predictor, target=2.0, mu=0.0)
        damped = ConstrainedObjective(tiny_predictor, target=2.0, mu=4.0)
        lam = nn.Parameter([0.0])
        l0, metric = plain.loss(nn.Tensor(0.0), gates_for(tiny_space, arch), lam)
        l1, _ = damped.loss(nn.Tensor(0.0), gates_for(tiny_space, arch), lam)
        excess = metric / 2.0 - 1.0
        assert np.isclose(float(l1.data) - float(l0.data), 2.0 * excess ** 2)

    def test_mu_does_not_change_lambda_gradient(self, tiny_space, tiny_predictor,
                                                rng):
        arch = tiny_space.sample(rng)
        damped = ConstrainedObjective(tiny_predictor, target=2.0, mu=4.0)
        lam = nn.Parameter([0.3])
        loss, metric = damped.loss(nn.Tensor(0.0), gates_for(tiny_space, arch), lam)
        loss.backward()
        assert np.isclose(lam.grad[0], metric / 2.0 - 1.0)

    def test_gradient_reaches_gates(self, tiny_space, tiny_predictor, objective,
                                    rng):
        arch = tiny_space.sample(rng)
        gates = gates_for(tiny_space, arch)
        lam = nn.Parameter([0.5])
        loss, _ = objective.loss(nn.Tensor(0.0), gates, lam)
        loss.backward()
        assert gates.grad is not None
        assert np.abs(gates.grad).max() > 0
