"""Search-level parity for compiled step plans (plans ON vs eager OFF).

``tests/core/test_engine_bit_parity.py`` pins the plans-ON engine to the
recorded golden trajectory; this suite additionally runs the two engines
side by side so a failure localises to the step compiler, and it forces
``compile_threshold=1`` so the run actually exercises replays (the default
threshold keeps rarely-repeating Gumbel paths on the eager path).
"""

import numpy as np

from repro.core.lightnas import LightNAS, LightNASConfig
from repro.predictor.analytic import AnalyticCostPredictor

SEED = 11
EPOCHS = 6


def _run(use_plans: bool, compile_threshold: int = 1):
    config = LightNASConfig.tiny(
        latency_target_ms=2.0, seed=SEED, mode="supernet",
        metric_name="macs_m", epochs=EPOCHS, use_plans=use_plans,
    )
    predictor = AnalyticCostPredictor(config.space, "macs_m")
    engine = LightNAS(config, predictor=predictor)
    engine.programs.compile_threshold = compile_threshold
    result = engine.search()
    return engine, result


def test_search_bit_identical_and_replays_exercised():
    eager_engine, eager = _run(use_plans=False)
    plan_engine, planned = _run(use_plans=True)

    stats = plan_engine.programs.stats()
    assert stats["plans_compiled"] > 0
    assert stats["replays"] > 0, (
        "parity run never replayed a plan — increase epochs or drop the "
        "compile threshold so the test actually covers replay execution"
    )

    assert planned.architecture.op_indices == eager.architecture.op_indices
    assert planned.predicted_metric == eager.predicted_metric
    assert planned.final_lambda == eager.final_lambda
    eager_traj = eager.trajectory.as_arrays()
    plan_traj = planned.trajectory.as_arrays()
    assert set(eager_traj) == set(plan_traj)
    for key in eager_traj:
        assert np.array_equal(eager_traj[key], plan_traj[key]), key
    eager_state = eager_engine.supernet.state_dict()
    plan_state = plan_engine.supernet.state_dict()
    for key in eager_state:
        assert np.array_equal(eager_state[key], plan_state[key]), key
