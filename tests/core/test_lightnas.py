"""Tests of the LightNAS engine: config validation and search behaviour."""

import numpy as np
import pytest

from repro.core.lightnas import LightNAS, LightNASConfig
from repro.hardware.latency import LatencyModel
from repro.search_space.macro import MacroConfig
from repro.search_space.space import SearchSpace


class TestConfig:
    def test_defaults_follow_paper(self):
        cfg = LightNASConfig()
        assert cfg.epochs == 90
        assert cfg.warmup_epochs == 10
        assert cfg.alpha_lr == 1e-3
        assert cfg.alpha_weight_decay == 1e-3
        assert cfg.w_lr == 0.1
        assert cfg.w_momentum == 0.9
        assert cfg.w_weight_decay == 3e-5
        assert cfg.lambda_initial == 0.0
        assert cfg.tau_initial == 5.0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            LightNASConfig(mode="bogus")

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            LightNASConfig(target=-1.0)

    def test_supernet_needs_epochs_beyond_warmup(self):
        with pytest.raises(ValueError):
            LightNASConfig(mode="supernet", epochs=5, warmup_epochs=10)

    def test_paper_factory(self):
        cfg = LightNASConfig.paper(26.0)
        assert cfg.target == 26.0
        assert cfg.space.num_layers == 21
        assert cfg.mode == "surrogate"

    def test_tiny_factory(self):
        cfg = LightNASConfig.tiny(1.5)
        assert cfg.mode == "supernet"
        assert cfg.space.num_layers == 4

    def test_overrides_pass_through(self):
        cfg = LightNASConfig.paper(24.0, epochs=7, steps_per_epoch=3)
        assert cfg.epochs == 7 and cfg.steps_per_epoch == 3

    @pytest.mark.parametrize("alias, canonical", [
        ("latency", "latency_ms"),
        ("energy", "energy_mj"),
        ("macs", "macs_m"),
        ("latency_ms", "latency_ms"),
    ])
    def test_metric_aliases_canonicalized(self, alias, canonical):
        assert LightNASConfig(metric_name=alias).metric_name == canonical

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            LightNASConfig(metric_name="flops")


class TestSurrogateSearch:
    @pytest.fixture(scope="class")
    def result(self, full_space, full_predictor):
        cfg = LightNASConfig.paper(24.0, space=full_space, seed=0,
                                   epochs=40, steps_per_epoch=25)
        return LightNAS(cfg, predictor=full_predictor).search()

    def test_returns_valid_architecture(self, full_space, result):
        full_space.validate(result.architecture)

    def test_hits_latency_target(self, full_space, full_latency_model, result):
        true = full_latency_model.latency_ms(result.architecture)
        assert abs(true - 24.0) < 1.5

    def test_trajectory_converges_to_target(self, result):
        tail = result.trajectory.predicted_metric[-5:]
        assert all(abs(m - 24.0) < 2.5 for m in tail)

    def test_single_path_complexity(self, full_space, result):
        assert result.search_paths_per_step == full_space.num_layers

    def test_step_count(self, result):
        assert result.num_search_steps == 40 * 25

    def test_trajectory_length(self, result):
        assert len(result.trajectory) == 40

    def test_lambda_history_moves(self, result):
        lams = result.trajectory.lambda_values
        assert max(abs(l) for l in lams) > 1e-4


class TestTrajectoryValidLoss:
    """Regression: trajectory.valid_loss was a stale constant 0.0."""

    def test_records_epoch_mean_of_actual_losses(self, tiny_space,
                                                 tiny_predictor, tiny_oracle):
        cfg = LightNASConfig(space=tiny_space, target=2.3, mode="surrogate",
                             epochs=6, steps_per_epoch=3, seed=0)
        engine = LightNAS(cfg, predictor=tiny_predictor, oracle=tiny_oracle)
        seen = []
        original = engine._validation_loss

        def spy(gates):
            out = original(gates)
            seen.append(float(out.data))
            return out

        engine._validation_loss = spy
        traj = engine.search().trajectory
        steps = cfg.steps_per_epoch
        means = [sum(seen[e * steps:(e + 1) * steps]) / steps
                 for e in range(cfg.epochs)]
        assert traj.valid_loss == pytest.approx(means)
        assert len(set(traj.valid_loss)) > 1  # not a stale constant

    def test_supernet_mode_records_nonzero_losses(self, tiny_latency_model):
        cfg = LightNASConfig.tiny(latency_target_ms=2.3, seed=4,
                                  epochs=4, steps_per_epoch=2, warmup_epochs=2)
        traj = LightNAS(cfg).search().trajectory
        # every epoch — warmup included — reports a real validation loss
        assert len(traj.valid_loss) == 4
        assert all(v > 0.0 for v in traj.valid_loss)
        assert len(set(traj.valid_loss)) > 1


class TestTargetSweep:
    def test_one_search_per_target_tracks_targets(self, full_space,
                                                  full_predictor,
                                                  full_latency_model):
        """The headline claim: different targets, one run each, no λ tuning,
        and the resulting latencies are ordered and near their targets."""
        latencies = []
        for target in (18.0, 24.0, 30.0):
            cfg = LightNASConfig.paper(target, space=full_space, seed=1,
                                       epochs=45, steps_per_epoch=25)
            res = LightNAS(cfg, predictor=full_predictor).search()
            latencies.append(full_latency_model.latency_ms(res.architecture))
        assert latencies[0] < latencies[1] < latencies[2]
        for lat, target in zip(latencies, (18.0, 24.0, 30.0)):
            assert abs(lat - target) < 2.5

    def test_larger_budget_buys_accuracy(self, full_space, full_predictor,
                                         full_oracle):
        tops = []
        for target in (18.0, 30.0):
            cfg = LightNASConfig.paper(target, space=full_space, seed=2,
                                       epochs=30, steps_per_epoch=25)
            res = LightNAS(cfg, predictor=full_predictor).search()
            tops.append(full_oracle.evaluate(res.architecture).top1)
        assert tops[1] > tops[0]


class TestSupernetSearch:
    def test_tiny_bilevel_run(self, tiny_latency_model):
        cfg = LightNASConfig.tiny(latency_target_ms=2.25, seed=0,
                                  epochs=8, steps_per_epoch=3, warmup_epochs=2)
        engine = LightNAS(cfg)
        result = engine.search()
        cfg.space.validate(result.architecture)
        # the tiny space spans ~2.15–2.45 ms; the target must be approached
        true = LatencyModel(cfg.space).latency_ms(result.architecture)
        assert abs(true - 2.25) < 0.2

    def test_warmup_freezes_alpha(self):
        cfg = LightNASConfig.tiny(latency_target_ms=2.3, seed=1,
                                  epochs=4, steps_per_epoch=2, warmup_epochs=3)
        engine = LightNAS(cfg)
        result = engine.search()
        # only (epochs - warmup) epochs contribute α steps
        assert result.num_search_steps == (4 - 3) * 2

    def test_default_predictor_built_when_missing(self):
        cfg = LightNASConfig.tiny(latency_target_ms=2.3, seed=2,
                                  epochs=3, steps_per_epoch=2, warmup_epochs=1)
        engine = LightNAS(cfg)
        assert engine.predictor.fitted
