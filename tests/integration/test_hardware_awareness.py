"""Hardware awareness: different devices yield different architectures.

The core promise of proxyless hardware-aware NAS (and the reason FLOPs
proxies fail, Figure 2) is that the target device shapes the result.  We
search on two device profiles at matched *relative* budgets and verify the
searched structures differ in the direction the device economics predict.
"""

import numpy as np
import pytest

from repro.core.lightnas import LightNAS, LightNASConfig
from repro.hardware.device import EDGE_NANO, XAVIER_MAXN
from repro.hardware.latency import LatencyModel
from repro.predictor.dataset import collect_latency_dataset
from repro.predictor.mlp import MLPPredictor


def quick_predictor(space, latency_model, seed):
    rng = np.random.default_rng(seed)
    data = collect_latency_dataset(latency_model, 4000, rng)
    train, _ = data.split(0.8, rng)
    predictor = MLPPredictor(space, seed=seed)
    predictor.fit(train, epochs=250, batch_size=256, lr=3e-3, weight_decay=0.0)
    return predictor


@pytest.fixture(scope="module")
def per_device_results(full_space):
    """Search each device at ~the median random-arch latency of that device."""
    results = {}
    for device in (XAVIER_MAXN, EDGE_NANO):
        latency_model = LatencyModel(full_space, device)
        rng = np.random.default_rng(0)
        median = float(np.median(
            [latency_model.latency_ms(full_space.sample(rng))
             for _ in range(60)]))
        predictor = quick_predictor(full_space, latency_model, seed=7)
        config = LightNASConfig.paper(median, space=full_space, seed=0,
                                      epochs=70, steps_per_epoch=35)
        result = LightNAS(config, predictor=predictor).search()
        results[device.name] = (device, median, result,
                                latency_model.latency_ms(result.architecture))
    return results


class TestHardwareAwareness:
    def test_both_devices_hit_their_targets(self, per_device_results):
        for name, (device, target, result, latency) in \
                per_device_results.items():
            # the engine pins the *predicted* latency to the target; the
            # measured value additionally carries the predictor's
            # (search-exploited) error, so its band is wider
            assert abs(result.predicted_metric - target) / target < 0.04, name
            assert abs(latency - target) / target < 0.10, name

    def test_architectures_differ_across_devices(self, per_device_results):
        archs = [r[2].architecture for r in per_device_results.values()]
        assert archs[0] != archs[1]

    def test_cross_device_latency_differs(self, full_space, per_device_results):
        """An architecture tuned for one device does not meet the other's
        budget — the reason per-device search matters."""
        (dev_a, target_a, res_a, _), (dev_b, target_b, res_b, _) = \
            per_device_results.values()
        lat_model_b = LatencyModel(full_space, dev_b)
        transplanted = lat_model_b.latency_ms(res_a.architecture)
        native = lat_model_b.latency_ms(res_b.architecture)
        # the native search uses device B's budget more accurately
        assert abs(native - target_b) <= abs(transplanted - target_b)
