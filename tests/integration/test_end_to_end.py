"""End-to-end integration tests across the full pipeline."""

import numpy as np
import pytest

from repro.baselines.evolution import EvolutionConfig, EvolutionSearch
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.eval.imagenet import ImageNetEvaluator
from repro.eval.trainer import train_standalone
from repro.hardware.energy import EnergyModel
from repro.predictor.dataset import collect_energy_dataset
from repro.predictor.mlp import MLPPredictor


class TestFullPipelineLatency:
    """Measurement campaign → predictor → search → evaluation, full space."""

    @pytest.fixture(scope="class")
    def search_result(self, full_space, full_predictor):
        cfg = LightNASConfig.paper(24.0, space=full_space, seed=3,
                                   epochs=40, steps_per_epoch=25)
        return LightNAS(cfg, predictor=full_predictor).search()

    def test_constraint_met(self, search_result, full_latency_model):
        lat = full_latency_model.latency_ms(search_result.architecture)
        assert abs(lat - 24.0) < 1.5

    def test_beats_random_search_accuracy(self, search_result, full_space,
                                          full_predictor, full_oracle):
        rs = RandomSearch(
            RandomSearchConfig(space=full_space, target=24.0, num_samples=300,
                               seed=0),
            full_predictor, full_oracle)
        random_best = full_oracle.evaluate(rs.search().architecture).top1
        ours = full_oracle.evaluate(search_result.architecture).top1
        assert ours > random_best

    def test_competitive_with_evolution_at_tiny_budget(
            self, search_result, full_space, full_predictor, full_oracle):
        evo = EvolutionSearch(
            EvolutionConfig(space=full_space, target=24.0, cycles=150, seed=0),
            full_predictor, full_oracle)
        evo_top1 = full_oracle.evaluate(evo.search().architecture).top1
        ours = full_oracle.evaluate(search_result.architecture).top1
        assert ours > evo_top1 - 0.5  # at least competitive

    def test_evaluation_row(self, search_result, full_space, full_latency_model,
                            full_oracle):
        evaluator = ImageNetEvaluator(full_space, full_latency_model,
                                      full_oracle)
        row = evaluator.evaluate(search_result.architecture, name="LightNet-24ms")
        assert 73.0 < row.top1 < 78.0
        assert row.macs_m < 600  # the paper's mobile setting


class TestEnergyConstrainedSearch:
    """Figure 8: swap the latency predictor for an energy predictor."""

    def test_energy_target_hit(self, full_space, full_latency_model,
                               full_energy_model):
        rng = np.random.default_rng(0)
        data = collect_energy_dataset(full_energy_model, 2000, rng)
        train, valid = data.split(0.8, rng)
        predictor = MLPPredictor(full_space, seed=0)
        predictor.fit(train, epochs=120, batch_size=256, lr=3e-3,
                      weight_decay=0.0)
        cfg = LightNASConfig.paper(500.0, space=full_space, seed=0,
                                   epochs=40, steps_per_epoch=25,
                                   metric_name="energy_mj")
        result = LightNAS(cfg, predictor=predictor).search()
        true_energy = full_energy_model.energy_mj(result.architecture)
        # predicted energy pins the target; the model value additionally
        # carries the (drift-limited, search-exploited) predictor error
        assert abs(result.predicted_metric - 500.0) / 500.0 < 0.05
        assert abs(true_energy - 500.0) / 500.0 < 0.12

    def test_energy_predictor_noisier_than_latency(self, full_space,
                                                   full_latency_model,
                                                   full_energy_model):
        rng = np.random.default_rng(1)
        from repro.predictor.dataset import collect_latency_dataset

        lat_data = collect_latency_dataset(full_latency_model, 1500, rng)
        en_data = collect_energy_dataset(full_energy_model, 1500, rng)
        lt, lv = lat_data.split(0.8, rng)
        et, ev = en_data.split(0.8, rng)
        lat_pred = MLPPredictor(full_space, seed=0)
        lat_pred.fit(lt, epochs=100, batch_size=256, lr=3e-3, weight_decay=0.0)
        en_pred = MLPPredictor(full_space, seed=0)
        en_pred.fit(et, epochs=100, batch_size=256, lr=3e-3, weight_decay=0.0)
        # compare *relative* errors: energy fit is worse (temperature drift)
        lat_rel = lat_pred.rmse(lv) / lv.targets.mean()
        en_rel = en_pred.rmse(ev) / ev.targets.mean()
        assert en_rel > lat_rel


class TestSearchTrainEvaluate:
    """Tiny-space supernet search, then retrain the result from scratch."""

    def test_searched_arch_trains_above_chance(self, tiny_space, tiny_task,
                                               tiny_predictor):
        cfg = LightNASConfig.tiny(latency_target_ms=2.3, seed=4, epochs=6,
                                  steps_per_epoch=3, warmup_epochs=2)
        result = LightNAS(cfg, predictor=tiny_predictor, task=tiny_task).search()
        report = train_standalone(tiny_space, result.architecture, tiny_task,
                                  epochs=8, batch_size=24, seed=0)
        assert report.valid_accuracy > 1.5 / tiny_task.num_classes
