"""The equality principle (§3.3, FairNAS): supernet path ≡ stand-alone net.

LightNAS's single-path execution means the supernet trains each architecture
exactly as the stand-alone network would be trained.  These tests verify
structural equality between a supernet path and the materialised network.
"""

import numpy as np
import pytest

from repro import nn
from repro.proxy.supernet import SuperNet, build_standalone
from repro.search_space.space import Architecture


class TestEqualityPrinciple:
    def test_path_matches_standalone_with_copied_weights(self, tiny_space):
        """Copying the supernet's path weights into a stand-alone network
        must reproduce the supernet's single-path output exactly."""
        rng = np.random.default_rng(0)
        supernet = SuperNet(tiny_space, rng)
        arch = tiny_space.sample(np.random.default_rng(1))

        standalone = build_standalone(tiny_space, arch,
                                      np.random.default_rng(2), dropout=0.0)
        # copy backbone weights
        standalone.backbone.load_state_dict(supernet.backbone.state_dict())
        # copy the chosen operator of each layer
        for i, k in enumerate(arch.op_indices):
            source = supernet.choice_blocks[i][k]
            standalone.blocks[i].load_state_dict(source.state_dict())

        r = tiny_space.macro.input_resolution
        x = nn.Tensor(np.random.default_rng(3).normal(size=(2, 3, r, r)))
        supernet.eval()
        standalone.eval()
        path_out = supernet.forward_arch(x, arch)
        alone_out = standalone(x)
        assert np.allclose(path_out.data, alone_out.data)

    def test_parameter_counts_match(self, tiny_space):
        rng = np.random.default_rng(4)
        supernet = SuperNet(tiny_space, rng)
        arch = tiny_space.sample(np.random.default_rng(5))
        path_params = sum(p.size for p in supernet.path_parameters(arch))
        standalone = build_standalone(tiny_space, arch,
                                      np.random.default_rng(6), dropout=0.0)
        assert path_params == sum(p.size for p in standalone.parameters())

    def test_single_path_memory_is_k_times_smaller(self, tiny_space):
        """The §3.3 memory claim, quantified on executed operator instances."""
        rng = np.random.default_rng(7)
        supernet = SuperNet(tiny_space, rng)
        arch = tiny_space.sample(np.random.default_rng(8))
        r = tiny_space.macro.input_resolution
        x = nn.Tensor(np.zeros((1, 3, r, r)))

        supernet.forward_single_path(
            x, nn.Tensor(arch.one_hot(tiny_space.num_operators)))
        single = supernet.last_active_paths

        uniform = nn.Tensor(np.full(
            (tiny_space.num_layers, tiny_space.num_operators),
            1.0 / tiny_space.num_operators))
        supernet.forward_weighted(x, uniform)
        multi = supernet.last_active_paths

        assert multi == tiny_space.num_operators * single
