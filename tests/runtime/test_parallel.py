"""Tests of the run-fleet executor: determinism, faults, journal merge."""

import os
import signal
import time

import numpy as np
import pytest

from repro.baselines import multi_seed_campaign, stability_summary
from repro.core.lightnas import LightNAS, LightNASConfig
from repro.fleet import ProxyTransfer, generate_fleet
from repro.predictor.dataset import (
    campaign_shards,
    collect_energy_dataset_sharded,
    collect_latency_dataset_sharded,
)
from repro.runtime.parallel import (
    FleetTask,
    RunFleet,
    TaskFailure,
)
from repro.runtime.telemetry import (
    RunJournal,
    read_journal,
    summarize_fleet,
    summarize_runs,
)

needs_fork = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="needs os.fork")

#: Journal fields that legitimately differ between jobs levels (timing,
#: process identity, pool geometry) — everything else must match exactly.
VOLATILE = {"elapsed_s", "wall_time_s", "cpu_time_s", "unix_time",
            "worker", "jobs", "fleet_stats", "phase_timers"}


def normalized_events(path):
    return [{key: value for key, value in event.items()
             if key not in VOLATILE}
            for event in read_journal(path)]


def search_tasks(space, predictor, targets, seeds=(0,)):
    """One tiny surrogate search per (target, seed) — the sweep shape."""
    tasks = []
    for target in targets:
        for seed in seeds:
            config = LightNASConfig.paper(target, space=space, seed=seed,
                                          epochs=12, steps_per_epoch=8)

            def fn(ctx, config=config):
                result = LightNAS(config, predictor=predictor).search(
                    journal=ctx.journal)
                return {
                    "arch": list(result.architecture.op_indices),
                    "predicted": float(result.predicted_metric),
                    "trajectory": list(result.trajectory.predicted_metric),
                }

            tasks.append(FleetTask(
                name=f"target_{target:g}_seed_{seed}", fn=fn,
                header={"target": target, "seed": seed}))
    return tasks


class TestFleetBasics:
    def test_values_in_task_order(self):
        fleet = RunFleet(jobs=1, seed=0)
        tasks = [FleetTask(name=f"t{i}", fn=lambda ctx, i=i: i * i)
                 for i in range(5)]
        assert fleet.run(tasks).values() == [0, 1, 4, 9, 16]

    def test_task_rng_is_spawned_per_index(self):
        fleet = RunFleet(jobs=1, seed=42)
        tasks = [FleetTask(name=f"t{i}",
                           fn=lambda ctx: float(ctx.rng.random()))
                 for i in range(3)]
        values = fleet.run(tasks).values()
        expected = [float(np.random.default_rng([42, i]).random())
                    for i in range(3)]
        assert values == expected

    def test_rejects_duplicate_task_names(self):
        fleet = RunFleet(jobs=1)
        with pytest.raises(ValueError, match="unique"):
            fleet.run([FleetTask(name="same", fn=lambda ctx: 1),
                       FleetTask(name="same", fn=lambda ctx: 2)])

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            RunFleet(jobs=0)

    def test_deterministic_error_is_not_retried(self):
        def boom(ctx):
            raise ValueError("deterministic bug")

        fleet = RunFleet(jobs=1, seed=0)
        report = fleet.run([FleetTask(name="boom", fn=boom),
                            FleetTask(name="fine", fn=lambda ctx: "ok")])
        bad, good = report.results
        assert bad.status == "failed"
        assert bad.retries == 0
        assert "deterministic bug" in bad.error
        assert good.ok and good.value == "ok"
        assert report.failures() == [bad]
        with pytest.raises(TaskFailure, match="boom"):
            report.values()

    def test_stats_shape(self):
        fleet = RunFleet(jobs=1, seed=0)
        report = fleet.run([FleetTask(name="t", fn=lambda ctx: None)])
        for key in ("jobs", "tasks", "completed", "failed", "cancelled",
                    "retries", "workers_spawned", "wall_s", "task_wall_s",
                    "task_cpu_s", "utilization", "parallel_speedup"):
            assert key in report.stats
        assert report.stats["completed"] == 1

    @needs_fork
    def test_forked_values_match_inline(self):
        tasks = lambda: [  # noqa: E731 - tiny local factory
            FleetTask(name=f"t{i}",
                      fn=lambda ctx, i=i: (i, float(ctx.rng.random())))
            for i in range(6)]
        inline = RunFleet(jobs=1, seed=7).run(tasks()).values()
        forked = RunFleet(jobs=3, seed=7).run(tasks()).values()
        assert inline == forked


@needs_fork
class TestFleetParity:
    """jobs=1 vs jobs=4 bit-identity on the shipped workloads."""

    def test_sweep_parity(self, tiny_space, tiny_predictor):
        targets = (2.0, 2.4, 2.8)
        sequential = RunFleet(jobs=1, seed=0).run(
            search_tasks(tiny_space, tiny_predictor, targets)).values()
        fanned = RunFleet(jobs=4, seed=0).run(
            search_tasks(tiny_space, tiny_predictor, targets)).values()
        assert sequential == fanned  # archs, metrics AND trajectories

    def test_stability_parity_and_journals(self, tiny_space, tiny_predictor,
                                           tmp_path):
        targets, seeds = (2.0, 2.5), (0, 1)

        def run_with(jobs, name):
            journal = RunJournal(str(tmp_path / name))
            fleet = RunFleet(jobs=jobs, seed=0, journal=journal)
            values = fleet.run(search_tasks(tiny_space, tiny_predictor,
                                            targets, seeds)).values()
            journal.close()
            return values, journal.path

        seq_values, seq_journal = run_with(1, "seq.jsonl")
        par_values, par_journal = run_with(4, "par.jsonl")
        assert seq_values == par_values
        # merged journals agree event-for-event once timing/process
        # identity fields are dropped — same order, same payloads
        assert normalized_events(seq_journal) == normalized_events(
            par_journal)

    def test_journal_attribution_and_fleet_summary(self, tiny_space,
                                                   tiny_predictor, tmp_path):
        journal = RunJournal(str(tmp_path / "fleet.jsonl"))
        fleet = RunFleet(jobs=2, seed=0, journal=journal)
        report = fleet.run(search_tasks(tiny_space, tiny_predictor,
                                        (2.0, 2.5)))
        journal.close()
        events = read_journal(journal.path)
        assert events[0]["event"] == "fleet_header"

        runs = summarize_runs(events)
        assert [run["task"]["name"] for run in runs] == [
            "target_2_seed_0", "target_2.5_seed_0"]
        assert [run["task"]["target"] for run in runs] == [2.0, 2.5]
        assert all(run["epochs_recorded"] == 12 for run in runs)

        digest = summarize_fleet(events)
        assert digest["jobs"] == 2
        assert digest["declared_tasks"] == 2
        assert digest["stats"] == report.stats
        assert digest["phase_timers"]  # aggregated across both tasks

    def test_multi_seed_campaign_parity(self, tiny_space, tiny_predictor):
        def factory(seed):
            config = LightNASConfig.paper(2.2, space=tiny_space, seed=seed,
                                          epochs=12, steps_per_epoch=8)
            return LightNAS(config, predictor=tiny_predictor)

        seeds = (0, 1, 2)
        sequential = multi_seed_campaign(factory, seeds)
        fanned = multi_seed_campaign(factory, seeds,
                                     fleet=RunFleet(jobs=3, seed=0))
        assert [r.architecture for r in sequential] == \
            [r.architecture for r in fanned]
        assert [float(r.predicted_metric) for r in sequential] == \
            [float(r.predicted_metric) for r in fanned]
        summary = stability_summary(fanned, 2.2)
        assert summary["seeds"] == 3
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_sharded_campaign_parity(self, tiny_latency_model,
                                     tiny_energy_model):
        sequential = collect_latency_dataset_sharded(
            tiny_latency_model, 600, 5, shard_size=100)
        fanned = collect_latency_dataset_sharded(
            tiny_latency_model, 600, 5, shard_size=100,
            fleet=RunFleet(jobs=4, seed=0))
        assert np.array_equal(sequential.features, fanned.features)
        assert np.array_equal(sequential.targets, fanned.targets)

        seq_energy = collect_energy_dataset_sharded(
            tiny_energy_model, 300, 5, shard_size=80)
        par_energy = collect_energy_dataset_sharded(
            tiny_energy_model, 300, 5, shard_size=80,
            fleet=RunFleet(jobs=3, seed=0))
        assert np.array_equal(seq_energy.targets, par_energy.targets)

    def test_calibrate_parity(self, tiny_space, tiny_latency_model,
                              tiny_predictor):
        devices = generate_fleet("phone", 2) + generate_fleet("mcu", 2)
        sequential = ProxyTransfer.calibrate(
            tiny_predictor, tiny_space, devices, num_samples=40, seed=0)
        fanned = ProxyTransfer.calibrate(
            tiny_predictor, tiny_space, devices, num_samples=40, seed=0,
            fleet=RunFleet(jobs=4, seed=0))
        assert sequential.to_payload() == fanned.to_payload()


class TestShardLayout:
    def test_campaign_shards_cover_exactly(self):
        assert campaign_shards(10, 4) == [(0, 4), (1, 4), (2, 2)]
        assert campaign_shards(3, 100) == [(0, 3)]
        assert sum(c for _, c in campaign_shards(4001, 250)) == 4001

    def test_campaign_shards_validate(self):
        with pytest.raises(ValueError):
            campaign_shards(0, 10)
        with pytest.raises(ValueError):
            campaign_shards(10, 0)

    def test_shard_layout_is_jobs_invariant(self, tiny_latency_model):
        # the dataset depends on shard_size (part of the layout), never on
        # who executes the shards
        a = collect_latency_dataset_sharded(tiny_latency_model, 200, 9,
                                            shard_size=50)
        b = collect_latency_dataset_sharded(tiny_latency_model, 200, 9,
                                            shard_size=50,
                                            fleet=RunFleet(jobs=1))
        assert np.array_equal(a.targets, b.targets)

    def test_campaign_rejects_duplicate_or_empty_seeds(self):
        with pytest.raises(ValueError):
            multi_seed_campaign(lambda seed: None, [])
        with pytest.raises(ValueError):
            multi_seed_campaign(lambda seed: None, [1, 1])


@needs_fork
class TestFleetFaults:
    def test_sigkill_mid_task_retried_once(self, tmp_path):
        journal = RunJournal(str(tmp_path / "faults.jsonl"))
        fleet = RunFleet(jobs=2, seed=0, journal=journal)

        def victim(ctx):
            if ctx.attempt == 0 and ctx.in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            return "survived"

        tasks = [FleetTask(name="victim", fn=victim)] + [
            FleetTask(name=f"ok{i}", fn=lambda ctx, i=i: i)
            for i in range(3)]
        report = fleet.run(tasks)
        journal.close()

        assert report.values() == ["survived", 0, 1, 2]
        assert report.results[0].retries == 1
        assert report.stats["retries"] == 1
        # attempt 0 ran on worker 0 (initial assignment is in task order)
        # and worker 0 was killed, so the retry must land on a different,
        # live worker: either a fresh replacement (3 spawns) or the other
        # initial worker if it had already drained its queue (2 spawns) —
        # which one wins is a scheduling race.
        assert report.results[0].worker != 0
        assert report.stats["workers_spawned"] in (2, 3)

        events = read_journal(journal.path)
        retries = [e for e in events if e["event"] == "task_retry"]
        assert len(retries) == 1
        assert retries[0]["name"] == "victim"

    def test_repeated_crash_becomes_structured_failure(self):
        def always_dies(ctx):
            if ctx.in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            return "unreachable"

        fleet = RunFleet(jobs=2, seed=0)
        report = fleet.run([
            FleetTask(name="doomed", fn=always_dies),
            FleetTask(name="fine", fn=lambda ctx: "ok"),
        ])
        doomed, fine = report.results
        assert doomed.status == "failed"
        assert doomed.retries == 1  # one retry, then reported
        assert "worker died" in doomed.error
        assert fine.ok and fine.value == "ok"
        with pytest.raises(TaskFailure, match="doomed"):
            report.values()

    def test_hung_task_times_out_and_retries(self):
        def hangs_once(ctx):
            if ctx.attempt == 0:
                time.sleep(30)
            return "recovered"

        fleet = RunFleet(jobs=2, seed=0, task_timeout=1.0)
        report = fleet.run([FleetTask(name="hang", fn=hangs_once)])
        assert report.values() == ["recovered"]
        assert report.results[0].retries == 1
